"""Execution policies for delegated tasks (Chapter 6 future work, implemented).

The same readers/writers monitor runs under three task-selection policies —
safe (throughput-first), fairness (submission order), priority (writers
first) — without changing a line of the monitor's logic.  The paper's
Fig. 6.1 proposes exactly this: pick the preference discipline with an
annotation, not a rewrite.

Run:  python examples/priority_readers_writers.py
"""

import threading
import time

from repro import ActiveMonitor, Policy, asynchronous, synchronous


class Journal(ActiveMonitor):
    """An append-only journal with delegated reads and writes."""

    def __init__(self, policy: Policy):
        super().__init__(policy=policy)
        self.entries: list[str] = []
        self.log: list[str] = []      # execution order witness
        self.open = False

    @asynchronous(pre=lambda self, entry: self.open, priority=9)
    def write(self, entry: str) -> None:
        self.entries.append(entry)
        self.log.append(f"W:{entry}")

    @asynchronous(pre=lambda self, _n: self.open, priority=1)
    def read(self, n: int) -> None:
        self.log.append(f"R:{n}")

    @synchronous()
    def open_for_business(self) -> None:
        self.open = True


def run(policy: Policy) -> list[str]:
    journal = Journal(policy)
    try:
        # submit interleaved reads and writes from distinct workers while
        # the journal is closed, so every task parks on its precondition
        def submit(fn, arg):
            t = threading.Thread(target=lambda: fn(arg))
            t.start()
            t.join()

        for i in range(3):
            submit(journal.read, i)
            submit(journal.write, f"entry-{i}")
        time.sleep(0.05)
        journal.open_for_business()   # all six tasks become executable at once
        journal.flush()
        return list(journal.log)
    finally:
        journal.shutdown()


def main() -> None:
    for policy in (Policy.SAFE, Policy.FAIRNESS, Policy.PRIORITY):
        order = run(policy)
        print(f"{policy.value:>8}: {' '.join(order)}")
    print("\nfairness preserves submission order; priority runs writers first")


if __name__ == "__main__":
    main()
