"""Parallel shortest paths with an asynchronous monitor (Ch. 3).

Dijkstra's algorithm parallelized over a shared blocking priority queue.
The only change versus a lock-based queue: ``put`` is declared
``@asynchronous``, so workers delegate insertions to the monitor's server
thread and immediately return to edge relaxation — the paper's Fig. 3.3
experiment.

Run:  python examples/parallel_sssp.py
"""

import time

from repro.problems.graphs import rmat, road_network, sequential_dijkstra
from repro.problems.psssp import parallel_sssp


def main() -> None:
    graphs = {
        "road-grid 24x24": road_network(24, seed=1),
        "R-MAT 256v/4096e": rmat(256, 4096, seed=3),
    }
    for name, graph in graphs.items():
        reference = sequential_dijkstra(graph, 0)
        print(f"\n{name}: {len(graph)} vertices")
        for variant, label in (
            ("lk", "explicit lock queue     "),
            ("ams", "ActiveMonitor (delegate)"),
            ("am", "ActiveMonitor (async)   "),
        ):
            start = time.perf_counter()
            dist, _ = parallel_sssp(graph, 0, variant, n_threads=4)
            elapsed = time.perf_counter() - start
            correct = all(abs(a - b) < 1e-9 for a, b in zip(reference, dist))
            reached = sum(1 for d in dist if d < float("inf"))
            print(f"  {label}  {elapsed:.3f}s  reached={reached}  "
                  f"correct={correct}")
        assert correct


if __name__ == "__main__":
    main()
