"""The preprocessor: write waits as plain Python, get tagged predicates.

The paper's framework includes a source preprocessor (Fig. 1.8) that turns
``waituntil(count < items.length)`` keyword syntax into runtime-library
calls.  Here the same component is an AST transformer: decorate the class
with @monitor_compile and write conditions naturally — `self.` reads become
shared variables the condition manager can hash/heap-index, and/or/not
become predicate structure, and everything else is frozen in by closure.

Run:  python examples/compiled_monitor.py
"""

import threading

from repro import Monitor, monitor_compile, waituntil


@monitor_compile
class Warehouse(Monitor):
    def __init__(self):
        super().__init__()
        self.crates = 0
        self.trucks = 0
        self.manifest = []

    def deliver_crates(self, n):
        self.crates += n

    def truck_arrives(self):
        self.trucks += 1

    def dispatch(self, crates_needed):
        # natural Python — rewritten to a tagged DSL predicate:
        waituntil(self.crates >= crates_needed and self.trucks > 0)
        self.crates -= crates_needed
        self.trucks -= 1
        self.manifest.append(crates_needed)
        return crates_needed


def main() -> None:
    warehouse = Warehouse()
    shipped = []

    def dispatcher(n):
        shipped.append(warehouse.dispatch(n))

    dispatchers = [threading.Thread(target=dispatcher, args=(n,)) for n in (5, 3, 8)]
    for t in dispatchers:
        t.start()

    for _ in range(4):
        warehouse.deliver_crates(4)
        warehouse.truck_arrives()

    for t in dispatchers:
        t.join(10)

    print(f"dispatched loads: {sorted(shipped)} (total {sum(shipped)} crates)")
    stats = warehouse.metrics.snapshot()
    print(f"signals: {stats['signals']}, broadcasts: {stats['broadcasts']}, "
          f"tag probes: {stats['tag_checks']}")
    print("conditions written as plain Python, indexed as threshold tags")


if __name__ == "__main__":
    main()
