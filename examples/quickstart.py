"""Quickstart: an automatic-signal bounded queue in ~20 lines.

No condition variables, no signal/notify calls — declare the class a
Monitor, state *what* each method waits for with ``wait_until``, and the
framework signals exactly the right thread at the right time.

Run:  python examples/quickstart.py
"""

import threading

from repro import Monitor, S


class BoundedQueue(Monitor):
    """The paper's flagship example (Fig. 1.2)."""

    def __init__(self, capacity: int):
        super().__init__()
        self.items: list[object] = []
        self.capacity = capacity
        self.count = 0

    def put(self, item) -> None:
        self.wait_until(S.count < S.capacity)   # waituntil(count < capacity)
        self.items.append(item)
        self.count += 1

    def take(self):
        self.wait_until(S.count > 0)            # waituntil(count > 0)
        self.count -= 1
        return self.items.pop(0)


def main() -> None:
    queue = BoundedQueue(capacity=4)
    received: list[int] = []

    def producer():
        for i in range(200):
            queue.put(i)

    def consumer():
        for _ in range(100):
            received.append(queue.take())

    threads = [threading.Thread(target=producer)] + [
        threading.Thread(target=consumer) for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert sorted(received) == list(range(200))
    print(f"transferred {len(received)} items through a capacity-4 queue")

    stats = queue.metrics.snapshot()
    print(f"signals sent:      {stats['signals']}  (single-thread wakeups)")
    print(f"broadcasts sent:   {stats['broadcasts']}  (never — relay invariance)")
    print(f"threads that blocked: {stats['waits']}")
    print(f"futile wakeups:    {stats['futile_wakeups']}")


if __name__ == "__main__":
    main()
