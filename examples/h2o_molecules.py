"""The H2O synchronization barrier with live event tracing.

Hydrogen and oxygen threads rendezvous to form water molecules (the paper's
Fig. A.1): each H waits for a partner H and an O; each O waits for two Hs.
The example also attaches the event Tracer to show exactly which waits and
single-thread signals the relay rule produced — note the absence of
broadcasts.

Run:  python examples/h2o_molecules.py
"""

import threading

from repro import Monitor, S
from repro.runtime.tracing import Tracer


class H2OBarrier(Monitor):
    def __init__(self):
        super().__init__()
        self.available_o = 0
        self.available_h = 0
        self.waiting_o = 0
        self.waiting_h = 0
        self.molecules = 0

    def o_ready(self):
        self.waiting_o += 1
        self.wait_until((S.available_o > 0) | (S.waiting_h >= 2))
        if self.available_o == 0:
            self.waiting_h -= 2
            self.available_h += 2
            self.waiting_o -= 1
            self.molecules += 1
        else:
            self.available_o -= 1

    def h_ready(self):
        self.waiting_h += 1
        self.wait_until(
            (S.available_h > 0) | ((S.waiting_o >= 1) & (S.waiting_h >= 2))
        )
        if self.available_h == 0:
            self.waiting_h -= 2
            self.available_h += 1
            self.waiting_o -= 1
            self.available_o += 1
            self.molecules += 1
        else:
            self.available_h -= 1


def main() -> None:
    barrier = H2OBarrier()
    molecules = 40
    tracer = Tracer(capacity=4096)
    tracer.attach(barrier)

    tickets = [2 * molecules]
    ticket_lock = threading.Lock()

    def claim():
        with ticket_lock:
            if tickets[0] == 0:
                return False
            tickets[0] -= 1
            return True

    def hydrogen():
        while claim():
            barrier.h_ready()

    def oxygen():
        for _ in range(molecules):
            barrier.o_ready()

    threads = [threading.Thread(target=oxygen)] + [
        threading.Thread(target=hydrogen) for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    tracer.detach_all()

    print(f"formed {barrier.molecules} water molecules")
    print(f"event counts: {tracer.counts()}")
    print("last few events:")
    for event in tracer.events()[-5:]:
        print("  ", event)
    assert tracer.counts().get("broadcast", 0) == 0
    print("no broadcasts: the relay rule signalled exactly one thread each time")


if __name__ == "__main__":
    main()
