"""Distributed discrete-event simulation with global conditions (Ch. 4).

A simulation process may only execute an event once every neighbour's
event queue is non-empty — otherwise a straggler could later deliver an
earlier timestamp.  That readiness condition spans all the queue monitors;
``multisynch`` + a global conjunction express it directly, with no global
lock and no polling (the paper's Fig. 4.5).

Run:  python examples/event_simulation.py
"""

import random
import threading

from repro import Monitor, S, local, multisynch


class EventQueue(Monitor):
    """One neighbour's timestamped event stream (arrives in order)."""

    def __init__(self, name: str):
        super().__init__()
        self.name = name
        self.events: list[float] = []
        self.count = 0

    def push(self, ts: float) -> None:
        self.events.append(ts)
        self.count += 1

    def head(self) -> float:
        return self.events[0]

    def pop(self) -> float:
        self.count -= 1
        return self.events.pop(0)


def main() -> None:
    rng = random.Random(7)
    neighbors = [EventQueue(f"n{i}") for i in range(4)]
    events_per_neighbor = 30
    total = len(neighbors) * events_per_neighbor

    def feeder(queue: EventQueue, seed: int) -> None:
        ts, r = 0.0, random.Random(seed)
        for _ in range(events_per_neighbor):
            ts += r.random()
            queue.push(ts)

    executed: list[float] = []
    remaining = {q.name: events_per_neighbor for q in neighbors}

    def process() -> None:
        for _ in range(total):
            live = [q for q in neighbors if remaining[q.name] > 0]
            condition = None
            for q in live:
                atom = local(q, S.count > 0)
                condition = atom if condition is None else condition & atom
            with multisynch(neighbors, strategy="CC") as ms:
                if condition is not None:
                    ms.wait_until(condition)
                best = min(
                    (q for q in neighbors if q.count > 0), key=lambda q: q.head()
                )
                executed.append(best.pop())
                remaining[best.name] -= 1

    threads = [
        threading.Thread(target=feeder, args=(q, i)) for i, q in enumerate(neighbors)
    ] + [threading.Thread(target=process)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    in_order = all(executed[i] <= executed[i + 1] for i in range(len(executed) - 1))
    print(f"executed {len(executed)} events, globally timestamp-ordered: {in_order}")
    assert in_order and len(executed) == total
    print("the process waited on a condition spanning all four queue monitors")
    print("without a coarse lock — the critical-clause strategy woke it only")
    print("when one of its per-queue clauses flipped")


if __name__ == "__main__":
    main()
