"""A multicast request server using composition operators (Ch. 5).

One server thread drains requests from N client queues with ``select_one``
— "take a message from whichever queue has one" — the paper's Fig. 5.1.
Without composition this needs either busy-polling or a global lock; here
each queue stays an independent monitor and the server blocks on the
disjunction of their guards.

Run:  python examples/multicast_server.py
"""

import threading
import time

from repro import ActiveMonitor, bind, select_one, synchronous


class ChannelQueue(ActiveMonitor):
    """A client's request channel (guarded monitor methods)."""

    def __init__(self, client: str, capacity: int = 16):
        super().__init__(mode="sync")
        self.client = client
        self.requests: list[str] = []
        self.capacity = capacity
        self.count = 0

    @synchronous(pre=lambda self, req: self.count < self.capacity)
    def submit(self, req: str) -> None:
        self.requests.append(req)
        self.count += 1

    @synchronous(pre=lambda self: self.count > 0)
    def next_request(self) -> str:
        self.count -= 1
        return f"{self.client}:{self.requests.pop(0)}"


def main() -> None:
    clients = ["alice", "bob", "carol", "dave"]
    channels = [ChannelQueue(c) for c in clients]
    requests_per_client = 25
    total = len(clients) * requests_per_client
    handled: list[str] = []

    def client(channel: ChannelQueue) -> None:
        for i in range(requests_per_client):
            channel.submit(f"req-{i}")
            time.sleep(0)        # let others interleave

    def server() -> None:
        operands = [bind(ch.next_request) for ch in channels]
        for _ in range(total):
            _idx, request = select_one(operands)
            handled.append(request)

    threads = [threading.Thread(target=client, args=(ch,)) for ch in channels]
    srv = threading.Thread(target=server)
    start = time.perf_counter()
    srv.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    srv.join()
    elapsed = time.perf_counter() - start

    per_client = {c: sum(1 for h in handled if h.startswith(c)) for c in clients}
    print(f"served {len(handled)} requests in {elapsed:.3f}s  {per_client}")
    # per-client FIFO despite the server picking any non-empty queue:
    for c in clients:
        mine = [h for h in handled if h.startswith(c)]
        assert mine == sorted(mine, key=lambda s: int(s.rsplit("-", 1)[1]))
    print("per-client request order preserved")


if __name__ == "__main__":
    main()
