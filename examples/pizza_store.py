"""The pizza store: global conditions spanning multiple monitors (Ch. 4).

Each ingredient is its own monitor object.  A cook atomically waits until
*all* the ingredients of its recipe are stocked — a conjunction spanning
three monitors — without any coarse-grained lock: ``multisynch`` picks the
lock order, and the critical-clause strategy wakes the cook only when a
locally-observable part of its condition flips.

Run:  python examples/pizza_store.py
"""

import threading
import time

from repro import Monitor, S, local, multisynch


class Ingredient(Monitor):
    def __init__(self, name: str):
        super().__init__()
        self.name = name
        self.quantity = 0

    def consume(self, n: int) -> None:
        self.quantity -= n

    def produce(self, n: int) -> None:
        self.quantity += n


RECIPES = {
    "margherita": {"cheese": 6, "tomato": 3},
    "pepperoni-feast": {"cheese": 4, "tomato": 2, "pepperoni": 5},
    "veggie": {"tomato": 4, "pepper": 3, "onion": 2},
}


def main() -> None:
    pantry = {
        name: Ingredient(name)
        for name in ("cheese", "tomato", "pepperoni", "pepper", "onion")
    }
    made: list[str] = []
    made_lock = threading.Lock()
    closing = threading.Event()

    def cook(pizza: str, rounds: int) -> None:
        recipe = RECIPES[pizza]
        for _ in range(rounds):
            objs = [pantry[i] for i in recipe]
            # the paper's Fig. 1.6, verbatim in the Python API:
            condition = None
            for ingredient, amount in recipe.items():
                atom = local(pantry[ingredient], S.quantity >= amount)
                condition = atom if condition is None else condition & atom
            with multisynch(objs, strategy="CC") as ms:
                ms.wait_until(condition)
                for ingredient, amount in recipe.items():
                    pantry[ingredient].consume(amount)
            with made_lock:
                made.append(pizza)

    def supplier() -> None:
        i = 0
        names = list(pantry)
        while not closing.is_set():
            pantry[names[i % len(names)]].produce(8)
            i += 1
        for name in names:          # leave the pantry stocked on exit
            pantry[name].produce(20)

    cooks = [
        threading.Thread(target=cook, args=(pizza, 10)) for pizza in RECIPES
    ]
    sup = threading.Thread(target=supplier)
    start = time.perf_counter()
    sup.start()
    for t in cooks:
        t.start()
    for t in cooks:
        t.join()
    closing.set()
    sup.join()
    elapsed = time.perf_counter() - start

    counts = {pizza: made.count(pizza) for pizza in RECIPES}
    print(f"made {len(made)} pizzas in {elapsed:.3f}s: {counts}")
    print("no coarse lock: cooks with disjoint ingredients ran concurrently")


if __name__ == "__main__":
    main()
