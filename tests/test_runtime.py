"""Unit tests for the runtime substrate: ids, config, errors, common drivers."""

import threading
import time

import pytest

from repro.problems.common import RunResult, StopFlag, run_threads, spin_delay
from repro.runtime import (
    Config,
    MonitorError,
    NestedMultisynchError,
    NotOwnerError,
    PredicateError,
    ReproError,
    TaskError,
    get_config,
    next_monitor_id,
)


class TestIds:
    def test_monotonically_increasing(self):
        a, b, c = next_monitor_id(), next_monitor_id(), next_monitor_id()
        assert a < b < c

    def test_concurrent_uniqueness(self):
        ids = []
        lock = threading.Lock()

        def grab():
            mine = [next_monitor_id() for _ in range(500)]
            with lock:
                ids.extend(mine)

        threads = [threading.Thread(target=grab, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len(ids) == len(set(ids)) == 2000


class TestConfig:
    def test_global_singleton(self):
        assert get_config() is get_config()

    def test_explicit_server_cap(self):
        cfg = Config(max_server_threads=3)
        assert cfg.effective_server_cap() == 3

    def test_zero_cap_allowed(self):
        assert Config(max_server_threads=0).effective_server_cap() == 0

    def test_derived_cap_has_floor(self):
        assert Config().effective_server_cap() >= 8


class TestErrors:
    def test_hierarchy(self):
        for exc in (MonitorError, NotOwnerError, PredicateError,
                    NestedMultisynchError, TaskError):
            assert issubclass(exc, ReproError)
        assert issubclass(NotOwnerError, MonitorError)

    def test_task_error_carries_cause(self):
        cause = ValueError("x")
        err = TaskError("failed", cause)
        assert err.cause is cause


class TestRunThreads:
    def test_returns_elapsed(self):
        elapsed = run_threads([lambda: time.sleep(0.02)] * 3)
        assert elapsed >= 0.015

    def test_propagates_worker_errors(self):
        def boom():
            raise RuntimeError("worker died")

        with pytest.raises(RuntimeError):
            run_threads([boom])

    def test_timeout_raises(self):
        forever = threading.Event()
        with pytest.raises(TimeoutError):
            run_threads([forever.wait], timeout=0.2)
        forever.set()

    def test_spin_delay_spins(self):
        start = time.perf_counter()
        spin_delay(0.01)
        assert time.perf_counter() - start >= 0.009

    def test_spin_delay_zero_noop(self):
        spin_delay(0)
        spin_delay(-1)


class TestStopFlag:
    def test_truthiness(self):
        flag = StopFlag()
        assert flag
        flag.stop()
        assert not flag

    def test_run_for(self):
        flag = StopFlag()
        flag.run_for(0.05)
        assert flag
        time.sleep(0.12)
        assert not flag


class TestRunResult:
    def test_throughput(self):
        assert RunResult(2.0, 100).throughput == 50.0

    def test_zero_elapsed_guard(self):
        assert RunResult(0.0, 100).throughput == 0.0
