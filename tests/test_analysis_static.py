"""Tests for the monlint static analyzer (repro.analysis)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.analysis.findings import Severity, Suppressions
from repro.analysis.lockgraph import LockOrderGraph

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

FIXTURE_CODES = {
    "w001_side_effect.py": "W001",
    "w002_stale_closure.py": "W002",
    "w003_unsynchronized_write.py": "W003",
    "w004_lock_order.py": "W004",
    "w005_tag_advisor.py": "W005",
    "w006_blocking_get.py": "W006",
    "w007_untracked_write.py": "W007",
    "w010_unsatisfiable.py": "W010",
    "w010_opaque_reads.py": "W010",
    "w011_wrong_direction.py": "W011",
    "w012_obligation_leak.py": "W012",
    "w013_opaque_direct_signal.py": "W013",
    "w014_gil_atomic_counter.py": "W014",
    "w015_async_blocking.py": "W015",
}


# ---------------------------------------------------------------- fixtures
@pytest.mark.parametrize("filename,code", sorted(FIXTURE_CODES.items()))
def test_fixture_triggers_exactly_its_rule(filename, code):
    findings = lint_paths([FIXTURES / filename])
    assert findings, f"{filename} produced no findings"
    assert {f.code for f in findings} == {code}


def test_clean_fixture_is_clean():
    assert lint_paths([FIXTURES / "clean.py"]) == []


def test_monitor_set_routed_acquisition_is_clean():
    """monitor_set(...).synch() and stored multisynch handles route through
    the globally-ordered acquisition path — W004 must not flag them."""
    findings = lint_paths([FIXTURES / "clean_monitor_set.py"])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_severities():
    by_code = {}
    for filename in FIXTURE_CODES:
        for finding in lint_paths([FIXTURES / filename]):
            by_code[finding.code] = finding.severity
    assert by_code["W001"] == Severity.ERROR
    assert by_code["W002"] == Severity.WARNING
    assert by_code["W003"] == Severity.ERROR
    assert by_code["W004"] == Severity.ERROR
    assert by_code["W005"] == Severity.HINT
    assert by_code["W006"] == Severity.WARNING
    assert by_code["W007"] == Severity.WARNING
    assert by_code["W011"] == Severity.WARNING
    assert by_code["W012"] == Severity.WARNING
    assert by_code["W013"] == Severity.HINT
    assert by_code["W015"] == Severity.WARNING


def test_w010_dual_severity():
    """W010 is an ERROR when the read set is known and never written, but
    only a HINT when it merely asks for a ``reads=`` annotation."""
    hard = lint_paths([FIXTURES / "w010_unsatisfiable.py"])
    assert {f.severity for f in hard} == {Severity.ERROR}
    soft = lint_paths([FIXTURES / "w010_opaque_reads.py"])
    assert {f.severity for f in soft} == {Severity.HINT}
    assert all("reads=" in f.message for f in soft)


def test_w006_counts_and_suppression():
    """Exactly the four unbounded sites fire; bounded and suppressed
    lines stay clean."""
    findings = lint_paths([FIXTURES / "w006_blocking_get.py"])
    assert {f.code for f in findings} == {"W006"}
    assert len(findings) == 4
    source = (FIXTURES / "w006_blocking_get.py").read_text().splitlines()
    for finding in findings:
        assert "W006:" in source[finding.line - 1]


def test_w015_counts_and_suppression():
    """Exactly the five blocking coroutine sites fire; awaited calls,
    executor-bound nested defs, and suppressed lines stay clean."""
    findings = lint_paths([FIXTURES / "w015_async_blocking.py"])
    assert {f.code for f in findings} == {"W015"}
    assert len(findings) == 5
    source = (FIXTURES / "w015_async_blocking.py").read_text().splitlines()
    for finding in findings:
        assert "W015:" in source[finding.line - 1]


# ------------------------------------------------- the repo itself is clean
def test_problems_and_examples_lint_clean():
    findings = lint_paths([
        REPO / "src" / "repro" / "problems",
        REPO / "examples",
    ])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_full_src_tree_lints_clean():
    findings = lint_paths([REPO / "src", REPO / "examples"])
    assert findings == [], "\n".join(f.format() for f in findings)


# ------------------------------------------------------------ suppressions
BAD_PREDICATE = """
from repro.core import Monitor
from repro.preprocess import waituntil

class Q(Monitor):
    def take(self):
        waituntil(self.items.pop() is not None){comment}
"""


def test_line_suppression():
    dirty = lint_source(BAD_PREDICATE.format(comment=""))
    assert {f.code for f in dirty} == {"W001"}
    clean = lint_source(
        BAD_PREDICATE.format(comment="  # monlint: disable=W001")
    )
    assert clean == []


def test_line_suppression_wrong_code_keeps_finding():
    findings = lint_source(
        BAD_PREDICATE.format(comment="  # monlint: disable=W004")
    )
    assert {f.code for f in findings} == {"W001"}


def test_bare_disable_suppresses_all_codes():
    findings = lint_source(
        BAD_PREDICATE.format(comment="  # monlint: disable")
    )
    assert findings == []


def test_file_level_suppression():
    source = "# monlint: disable-file=W001\n" + BAD_PREDICATE.format(comment="")
    assert lint_source(source) == []


def test_suppression_parser():
    supp = Suppressions.parse(
        "x = 1  # monlint: disable=W001,W002\n"
        "# monlint: disable-file=W005\n"
        "y = 2  # monlint: disable\n"
    )
    assert supp.by_line[1] == {"W001", "W002"}
    assert supp.by_line[3] is None  # bare disable: all codes
    assert supp.file_codes == {"W005"}
    assert not supp.all_file


# ------------------------------------------------------------ select/disable
def test_select_and_disable():
    fixture = FIXTURES / "w001_side_effect.py"
    assert lint_paths([fixture], select={"W004"}) == []
    assert lint_paths([fixture], disable={"W001"}) == []
    assert {f.code for f in lint_paths([fixture], select={"W001"})} == {"W001"}


# ------------------------------------------------------------- lock graph
def test_lockgraph_cycle_detection():
    graph = LockOrderGraph()
    graph.add_edge("A", "B", "f.py", 1)
    graph.add_edge("B", "C", "f.py", 2)
    graph.add_edge("C", "A", "f.py", 3)
    graph.add_edge("D", "A", "f.py", 4)  # feeds the cycle, not in it
    cycles = graph.cycles()
    assert cycles == [["A", "B", "C"]]
    anchor = graph.anchor_for(cycles[0])
    assert anchor.lineno == 1


def test_lockgraph_self_loop_and_acyclic():
    graph = LockOrderGraph()
    graph.add_edge("A", "B", "f.py", 1)
    assert graph.cycles() == []
    graph.add_edge("B", "B", "f.py", 2)
    assert graph.cycles() == [["B"]]


def test_lockgraph_diamond_is_acyclic():
    """A diamond (A→B, A→C, B→D, C→D) shares a sink but has no cycle —
    the SCC condensation must not merge converging paths."""
    graph = LockOrderGraph()
    graph.add_edge("A", "B", "f.py", 1)
    graph.add_edge("A", "C", "f.py", 2)
    graph.add_edge("B", "D", "f.py", 3)
    graph.add_edge("C", "D", "f.py", 4)
    assert graph.cycles() == []
    assert graph.nodes() == ["A", "B", "C", "D"]


def test_lockgraph_two_disjoint_cycles_reported_separately():
    graph = LockOrderGraph()
    graph.add_edge("A", "B", "f.py", 1)
    graph.add_edge("B", "A", "f.py", 2)
    graph.add_edge("X", "Y", "g.py", 1)
    graph.add_edge("Y", "X", "g.py", 2)
    assert graph.cycles() == [["A", "B"], ["X", "Y"]]
    # each anchor stays inside its own component
    assert graph.anchor_for(["A", "B"]).path == "f.py"
    assert graph.anchor_for(["X", "Y"]).path == "g.py"


NESTED_PAIR = """
from repro.core import Monitor

class A(Monitor):
    def poke(self, other: "B"):
        other.poke(self){comment}

class B(Monitor):
    def poke(self, other: "A"):
        other.poke(self)
"""


def test_lockgraph_suppressed_anchor_silences_cycle():
    """The whole-program cycle finding is anchored at its smallest
    path/line edge; a line suppression there silences it, same as any
    per-site finding."""
    dirty = lint_source(NESTED_PAIR.format(comment=""))
    assert "W004" in {f.code for f in dirty}
    cycle = [f for f in dirty if f.code == "W004" and "cycle" in f.message]
    assert len(cycle) == 1
    # the anchor is the first (smallest-line) edge — A.poke's call site
    assert cycle[0].line == 6
    clean = lint_source(
        NESTED_PAIR.format(comment="  # monlint: disable=W004")
    )
    assert "W004" not in {f.code for f in clean}


def test_syntax_error_becomes_finding():
    findings = lint_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].code == "E999"
    assert findings[0].severity == Severity.ERROR


# ------------------------------------------------------------------- CLI
def test_cli_exit_codes(capsys):
    assert main([str(FIXTURES / "clean.py")]) == EXIT_CLEAN
    assert main([str(FIXTURES / "w001_side_effect.py")]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "W001" in out and "finding(s)" in out


def test_cli_json_format(capsys):
    """--format json emits one finding per line (JSON-lines), so stream
    consumers can process findings without buffering the whole run."""
    code = main(["--format", "json", str(FIXTURES / "w005_tag_advisor.py")])
    assert code == EXIT_FINDINGS
    lines = capsys.readouterr().out.strip().splitlines()
    payload = [json.loads(line) for line in lines]
    assert len(payload) >= 1
    assert {entry["code"] for entry in payload} == {"W005"}
    assert all(entry["severity"] == "hint" for entry in payload)
    # every line is a complete, self-describing record
    for entry in payload:
        assert {"code", "severity", "message", "path", "line", "col", "rule"} \
            <= set(entry)


def test_cli_usage_errors(capsys):
    assert main([]) == EXIT_USAGE
    assert main(["--select", "W999", str(FIXTURES / "clean.py")]) == EXIT_USAGE
    assert main([str(FIXTURES / "no_such_file.py")]) == EXIT_USAGE


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for code in (
        "W001", "W002", "W003", "W004", "W005", "W006", "W007",
        "W010", "W011", "W012", "W013", "W015",
    ):
        assert code in out


def test_module_entrypoint():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(FIXTURES / "clean.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == EXIT_CLEAN, proc.stderr
