"""Unit + property tests for the single-consumer optimal bounded queue."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active.scqueue import AtomicInteger, SingleConsumerBoundedQueue


class TestAtomicInteger:
    def test_get_and_increment(self):
        a = AtomicInteger(5)
        assert a.get_and_increment() == 5
        assert a.get() == 6

    def test_get_and_add(self):
        a = AtomicInteger(10)
        assert a.get_and_add(-3) == 10
        assert a.get() == 7

    def test_compare_and_set(self):
        a = AtomicInteger(1)
        assert a.compare_and_set(1, 9)
        assert not a.compare_and_set(1, 5)
        assert a.get() == 9

    def test_concurrent_increments(self):
        a = AtomicInteger()

        def inc():
            for _ in range(2000):
                a.get_and_increment()

        threads = [threading.Thread(target=inc, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert a.get() == 8000


class TestQueueBasics:
    def test_fifo_single_threaded(self):
        q = SingleConsumerBoundedQueue(8)
        for i in range(5):
            q.put(i)
        assert [q.take() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_take_returns_none(self):
        q = SingleConsumerBoundedQueue(4)
        assert q.take() is None

    def test_try_put_when_full(self):
        q = SingleConsumerBoundedQueue(2)
        assert q.try_put(1) and q.try_put(2)
        assert not q.try_put(3)

    def test_len_tracks_count(self):
        q = SingleConsumerBoundedQueue(4)
        q.put("a")
        q.put("b")
        assert len(q) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SingleConsumerBoundedQueue(0)

    def test_take_count_stealing_batches(self):
        q = SingleConsumerBoundedQueue(16)
        for i in range(6):
            q.put(i)
        # first take steals the whole count; the counter only moves once
        assert q.take() == 0
        assert q._take_count == 5
        for want in range(1, 6):
            assert q.take() == want


class TestQueueConcurrency:
    def test_blocking_put_unblocks_on_take(self):
        q = SingleConsumerBoundedQueue(2)
        q.put(1)
        q.put(2)
        done = threading.Event()

        def producer():
            q.put(3)       # blocks until the consumer frees a slot
            done.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        assert not done.wait(0.1)
        taken = []
        while len(taken) < 3:
            item = q.take()
            if item is not None:
                taken.append(item)
        assert done.wait(5)
        assert taken == [1, 2, 3]

    def test_mpsc_no_loss_no_dup(self):
        q = SingleConsumerBoundedQueue(32)
        n_producers, per = 4, 500

        def producer(base):
            for i in range(per):
                q.put(base + i)

        threads = [
            threading.Thread(target=producer, args=(p * 10_000,), daemon=True)
            for p in range(n_producers)
        ]
        for t in threads:
            t.start()
        seen = []
        while len(seen) < n_producers * per:
            item = q.take()
            if item is not None:
                seen.append(item)
        for t in threads:
            t.join(10)
        assert len(seen) == len(set(seen)) == n_producers * per
        # per-producer FIFO (Rule 2's substrate guarantee)
        for p in range(n_producers):
            mine = [x for x in seen if x // 10_000 == p]
            assert mine == sorted(mine)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.one_of(st.just("take"), st.integers(0, 100)), max_size=60))
def test_sequential_queue_matches_model(ops):
    """Single-threaded put/take sequences: FIFO with batch-claim capacity.

    The count-stealing design (paper Fig. 3.2) decrements the shared count
    by the whole stolen batch up front, so producers may admit up to
    ``capacity`` further items while the consumer drains its claimed batch —
    transient occupancy is bounded by ``2 × capacity``, and ``try_put``
    fails exactly when the *unclaimed* count reaches capacity.
    """
    from collections import deque

    capacity = 8
    q = SingleConsumerBoundedQueue(capacity)
    model: deque = deque()       # every item currently inside the structure
    for op in ops:
        if op == "take":
            got = q.take()
            want = model.popleft() if model else None
            assert got == want
        else:
            accepted = q.try_put(op)
            # acceptance is governed by the unclaimed count, visible via len()
            if accepted:
                model.append(op)
                assert len(q) <= capacity
            else:
                assert len(q) == capacity
            # batch-claim bound: never more than 2×capacity items inside
            assert len(model) <= 2 * capacity
    while model:
        assert q.take() == model.popleft()
    assert q.take() is None
