"""Unit + property + stress tests for the single-consumer bounded queue.

The queue is the GIL-atomic ticket/deque MPSC design (see scqueue.py):
producers reserve slots with an atomic ticket, the consumer steals whole
batches with one counter touch, and blocking goes through a parking lot
entered only under contention.  The suite pins:

* FIFO + batch-steal accounting (one ``_taken`` touch per batch);
* ``try_put`` void-ticket compensation;
* blocking ``put`` parking/wakeup (no lost wakeups);
* multi-producer linearizability at 8+ threads — no lost or duplicated
  items, per-producer FIFO, and the documented ``2 × capacity`` transient
  occupancy bound;
* a hypothesis-randomized operation schedule against a deque model.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active.scqueue import AtomicInteger, SingleConsumerBoundedQueue


class TestAtomicInteger:
    def test_get_and_increment(self):
        a = AtomicInteger(5)
        assert a.get_and_increment() == 5
        assert a.get() == 6

    def test_get_and_add(self):
        a = AtomicInteger(10)
        assert a.get_and_add(-3) == 10
        assert a.get() == 7

    def test_compare_and_set(self):
        a = AtomicInteger(1)
        assert a.compare_and_set(1, 9)
        assert not a.compare_and_set(1, 5)
        assert a.get() == 9

    def test_concurrent_increments(self):
        a = AtomicInteger()

        def inc():
            for _ in range(2000):
                a.get_and_increment()

        threads = [threading.Thread(target=inc, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert a.get() == 8000


class TestQueueBasics:
    def test_fifo_single_threaded(self):
        q = SingleConsumerBoundedQueue(8)
        for i in range(5):
            q.put(i)
        assert [q.take() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_take_returns_none(self):
        q = SingleConsumerBoundedQueue(4)
        assert q.take() is None

    def test_try_put_when_full(self):
        q = SingleConsumerBoundedQueue(2)
        assert q.try_put(1) and q.try_put(2)
        assert not q.try_put(3)

    def test_len_tracks_enqueued_items(self):
        q = SingleConsumerBoundedQueue(4)
        q.put("a")
        q.put("b")
        assert len(q) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SingleConsumerBoundedQueue(0)

    def test_batch_steal_touches_counter_once(self):
        q = SingleConsumerBoundedQueue(16)
        for i in range(6):
            q.put(i)
        # first take steals the whole visible batch in one counter touch
        assert q.take() == 0
        assert q._claimed == 5
        assert q._taken == 6
        assert q.steal_batches == 1
        assert q.steal_items == 6
        for want in range(1, 6):
            assert q.take() == want
        assert q.steal_batches == 1   # no further counter traffic

    def test_drain_to_moves_visible_batch(self):
        q = SingleConsumerBoundedQueue(16)
        for i in range(7):
            q.put(i)
        out = []
        assert q.drain_to(out) == 7
        assert out == list(range(7))
        assert q.take() is None

    def test_drain_to_respects_limit(self):
        q = SingleConsumerBoundedQueue(16)
        for i in range(6):
            q.put(i)
        out = []
        assert q.drain_to(out, limit=4) == 4
        assert out == [0, 1, 2, 3]
        assert q.drain_to(out) == 2
        assert out == list(range(6))

    def test_try_put_void_compensation(self):
        """Failed try_put reservations are folded back at the next steal,
        so they never permanently shrink the capacity."""
        q = SingleConsumerBoundedQueue(2)
        assert q.try_put("a") and q.try_put("b")
        for _ in range(3):
            assert not q.try_put("x")      # three abandoned tickets
        assert q.take() == "a"             # steal folds the voids
        assert q.take() == "b"
        assert q.take() is None
        # full capacity is available again — nothing was leaked
        assert q.try_put("c") and q.try_put("d")
        assert not q.try_put("e")
        assert [q.take(), q.take()] == ["c", "d"]

    def test_capacity_frees_at_steal_not_pop(self):
        """The paper's take-count semantics: admission capacity frees when
        the batch is *stolen*, so transient occupancy can reach 2×cap."""
        q = SingleConsumerBoundedQueue(2)
        q.put(1)
        q.put(2)
        assert q.take() == 1           # batch of 2 stolen; 1 still unpopped
        assert q.try_put(3)            # two fresh slots despite the leftover
        assert q.try_put(4)
        assert not q.try_put(5)
        assert len(q) == 3             # physical occupancy: 1 claimed + 2 new
        assert [q.take() for _ in range(3)] == [2, 3, 4]


class TestQueueConcurrency:
    def test_blocking_put_unblocks_on_take(self):
        q = SingleConsumerBoundedQueue(2)
        q.put(1)
        q.put(2)
        done = threading.Event()

        def producer():
            q.put(3)       # blocks until the consumer frees a slot
            done.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        assert not done.wait(0.1)
        taken = []
        while len(taken) < 3:
            item = q.take()
            if item is not None:
                taken.append(item)
        assert done.wait(5)
        assert taken == [1, 2, 3]

    def test_all_parked_producers_wake(self):
        """A steal wakes every parked producer (notify_all), not a chain."""
        q = SingleConsumerBoundedQueue(1)
        q.put("seed")
        started = threading.Barrier(4)
        done = []

        def producer(tag):
            started.wait()
            q.put(tag)     # all three park: the queue is full
            done.append(tag)

        threads = [threading.Thread(target=producer, args=(i,), daemon=True)
                   for i in range(3)]
        for t in threads:
            t.start()
        started.wait()
        taken = []
        while len(taken) < 4:
            item = q.take()
            if item is not None:
                taken.append(item)
        for t in threads:
            t.join(10)
        assert not any(t.is_alive() for t in threads)
        assert sorted(done) == [0, 1, 2]

    def test_mpsc_stress_8_producers_no_loss_no_dup_bounded(self):
        """8-producer linearizability sweep: every item arrives exactly
        once, per-producer FIFO holds, and sampled physical occupancy never
        exceeds the documented 2×capacity transient bound."""
        capacity = 16
        q = SingleConsumerBoundedQueue(capacity)
        n_producers, per = 8, 2_000
        barrier = threading.Barrier(n_producers + 1)

        def producer(base):
            barrier.wait()
            for i in range(per):
                q.put(base + i)

        threads = [
            threading.Thread(target=producer, args=(p * 1_000_000,), daemon=True)
            for p in range(n_producers)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        seen = []
        max_occupancy = 0
        while len(seen) < n_producers * per:
            max_occupancy = max(max_occupancy, len(q._items))
            item = q.take()
            if item is not None:
                seen.append(item)
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)
        assert len(seen) == len(set(seen)) == n_producers * per
        assert max_occupancy <= 2 * capacity
        # per-producer FIFO (Rule 2's substrate guarantee)
        for p in range(n_producers):
            mine = [x for x in seen if x // 1_000_000 == p]
            assert mine == sorted(mine)
        # batch stealing actually batched (far fewer steals than items)
        assert q.steal_batches < q.steal_items

    def test_mixed_put_tryput_stress(self):
        """Blocking and non-blocking producers interleaved: accepted items
        are conserved; rejected try_puts never corrupt the accounting."""
        capacity = 8
        q = SingleConsumerBoundedQueue(capacity)
        accepted_counts = [0] * 4
        stop = threading.Event()

        def blocking_producer(p):
            for i in range(1_000):
                q.put((p, i))
            accepted_counts[p] = 1_000

        def try_producer(p):
            sent = 0
            i = 0
            while sent < 500:
                if q.try_put((p, i)):
                    sent += 1
                    i += 1
            accepted_counts[p] = sent

        threads = [
            threading.Thread(target=blocking_producer, args=(0,), daemon=True),
            threading.Thread(target=blocking_producer, args=(1,), daemon=True),
            threading.Thread(target=try_producer, args=(2,), daemon=True),
            threading.Thread(target=try_producer, args=(3,), daemon=True),
        ]
        for t in threads:
            t.start()
        seen = []
        while len(seen) < 3_000:
            item = q.take()
            if item is not None:
                seen.append(item)
        for t in threads:
            t.join(30)
        stop.set()
        assert not any(t.is_alive() for t in threads)
        assert len(seen) == len(set(seen)) == 3_000
        assert accepted_counts == [1_000, 1_000, 500, 500]
        for p in range(4):
            mine = [i for (pp, i) in seen if pp == p]
            assert mine == sorted(mine)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(
    st.one_of(
        st.just("take"),
        st.just("drain"),
        st.tuples(st.just("try"), st.integers(0, 100)),
    ),
    max_size=80,
))
def test_randomized_schedule_matches_model(ops):
    """Hypothesis-randomized single-threaded schedules against a deque
    model: FIFO order, conservation, the 2×capacity bound, and the
    fails-when-full / succeeds-after-drain acceptance pattern."""
    from collections import deque

    capacity = 4
    q = SingleConsumerBoundedQueue(capacity)
    model: deque = deque()     # every accepted item not yet dequeued
    for op in ops:
        if op == "take":
            got = q.take()
            want = model.popleft() if model else None
            assert got == want
        elif op == "drain":
            out = []
            q.drain_to(out)
            assert out == [model.popleft() for _ in range(len(out))]
        else:
            _, value = op
            if q.try_put(value):
                model.append(value)
            else:
                # rejected ⇒ the unclaimed window really was full
                assert len(model) >= capacity or len(q._items) >= capacity
        assert len(q._items) <= 2 * capacity
    # total drain: everything accepted comes out, in order, exactly once
    while model:
        assert q.take() == model.popleft()
    assert q.take() is None
    # and the voids folded: full capacity is available again
    for i in range(capacity):
        assert q.try_put(i)
