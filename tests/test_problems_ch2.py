"""Integration tests: chapter-2 workloads complete and satisfy their oracles."""

import pytest

from repro.problems.bounded_buffer import (
    AutoBoundedQueue,
    ExplicitBoundedQueue,
    make_queue,
    run_bounded_buffer,
)
from repro.problems.dining import run_dining_monitor
from repro.problems.h2o import H2OBarrier, run_h2o
from repro.problems.param_bounded_buffer import run_param_bounded_buffer
from repro.problems.readers_writers import TicketReadersWriters, run_readers_writers
from repro.problems.round_robin import RoundRobinMonitor, run_round_robin
from repro.problems.sleeping_barber import run_sleeping_barber

MECHS = ["explicit", "baseline", "autosynch_t", "autosynch"]


class TestBoundedBuffer:
    @pytest.mark.parametrize("mech", MECHS)
    def test_completes_and_counts(self, mech):
        result = run_bounded_buffer(mech, 2, 2, 100, capacity=8)
        assert result.operations == 400
        assert result.elapsed > 0

    def test_queue_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_queue("nope", 4)

    def test_fifo_content_preserved(self):
        q = AutoBoundedQueue(4)
        for i in range(4):
            q.put(i)
        assert [q.take() for _ in range(4)] == [0, 1, 2, 3]

    def test_explicit_queue_fifo(self):
        q = ExplicitBoundedQueue(4)
        for i in range(3):
            q.put(i)
        assert [q.take() for _ in range(3)] == [0, 1, 2]

    def test_autosynch_avoids_broadcasts(self):
        result = run_bounded_buffer("autosynch", 2, 2, 150, capacity=4)
        assert result.metrics["broadcasts"] == 0

    def test_baseline_uses_broadcasts(self):
        result = run_bounded_buffer("baseline", 2, 2, 150, capacity=4)
        assert result.metrics["broadcasts"] > 0


class TestParamBoundedBuffer:
    @pytest.mark.parametrize("mech", ["explicit", "autosynch"])
    def test_completes(self, mech):
        result = run_param_bounded_buffer(mech, 4, 20)
        assert result.operations > 0

    def test_wakeup_metric_present(self):
        result = run_param_bounded_buffer("autosynch", 3, 15)
        assert "wakeups" in result.metrics


class TestH2O:
    @pytest.mark.parametrize("mech", MECHS)
    def test_molecules_form(self, mech):
        result = run_h2o(mech, 4, 60)
        assert result.operations == 180      # 3 arrivals per molecule

    def test_barrier_state_conserved(self):
        barrier = H2OBarrier()
        import threading

        threads = [threading.Thread(target=barrier.h_ready, daemon=True) for _ in range(2)]
        for t in threads:
            t.start()
        barrier.o_ready()
        for t in threads:
            t.join(10)
        assert barrier.waiting_h == 0
        assert barrier.waiting_o == 0
        assert barrier.available_h == 0
        assert barrier.available_o == 0


class TestRoundRobin:
    @pytest.mark.parametrize("mech", MECHS)
    def test_strict_rotation(self, mech):
        result = run_round_robin(mech, 6, 30)
        assert result.operations == 180

    def test_monitor_order_invariant(self):
        m = RoundRobinMonitor(3)
        import threading

        seen = []

        def worker(i):
            for _ in range(5):
                m.access(i)
                seen.append(i)

        threads = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        # accesses happen in strict 0,1,2,0,1,2,... order
        assert seen == [i % 3 for i in range(15)]


class TestReadersWriters:
    @pytest.mark.parametrize("mech", ["explicit", "autosynch", "autosynch_t"])
    def test_completes(self, mech):
        result = run_readers_writers(mech, 2, 6, 20)
        assert result.operations == 160

    def test_writer_exclusion_invariant(self):
        """Readers never observe a writer mid-section."""
        import threading

        m = TicketReadersWriters()
        in_write = []
        violations = []

        def writer():
            for _ in range(30):
                m.start_write()
                in_write.append(1)
                in_write.pop()
                m.end_write()

        def reader():
            for _ in range(30):
                m.start_read()
                if in_write:
                    violations.append(1)
                m.end_read()

        threads = [threading.Thread(target=writer, daemon=True)] + [
            threading.Thread(target=reader, daemon=True) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not violations


class TestDiningMonitor:
    @pytest.mark.parametrize("mech", ["explicit", "autosynch", "autosynch_t"])
    def test_all_eat(self, mech):
        result = run_dining_monitor(mech, 5, 40)
        assert result.operations == 200


class TestSleepingBarber:
    def test_customers_served(self):
        result = run_sleeping_barber(4, 8, seats=3)
        assert 0 < result.operations <= 32
