"""AOT signal placement: static plans, direct signaling, and the
differential property suite.

Covers the subsystem described in docs/performance.md ("Ahead-of-time
signal placement"): per-method write-set closure computed at decoration
time, the direct-signal exit that skips the relay's bucket search, the
dirty-subset soundness guard, and — the load-bearing part — a hypothesis
differential test checking that direct signaling wakes exactly the waiters
the dependency-tracked relay (and the exhaustive scan) would, over
randomized schedules mixing parks, writes, plan-mismatched bulk writes,
abandonment, and poisoned (raising) predicates.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aot import MethodSignalPlan
from repro.core.expressions import S
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import Waiter
from repro.preprocess import monitor_compile
from repro.runtime.config import get_config

NV = 4  #: shared variables v0..v3 in the differential board


@pytest.fixture(autouse=True)
def _restore_config():
    cfg = get_config()
    prior_track = cfg.track_dependencies
    prior_aot = cfg.aot_signal
    yield
    cfg.track_dependencies = prior_track
    cfg.aot_signal = prior_aot


@monitor_compile
class DirectBoard(Monitor):
    """One public writer per shared variable, so each method's AOT plan has
    a singleton write set; ``peek`` is a pure reader with an empty plan."""

    def __init__(self):
        super().__init__()
        self.v0 = 0
        self.v1 = 0
        self.v2 = 0
        self.v3 = 0

    def w0(self, val):
        self.v0 = val

    def w1(self, val):
        self.v1 = val

    def w2(self, val):
        self.v2 = val

    def w3(self, val):
        self.v3 = val

    def peek(self):
        return self.v0


PLANS = DirectBoard._repro_aot_plans


# ------------------------------------------------------------------- plans


def test_plans_cover_every_public_method():
    assert set(PLANS) >= {"w0", "w1", "w2", "w3", "peek"}
    for i in range(NV):
        assert PLANS[f"w{i}"].write_set == frozenset({f"v{i}"})
    assert PLANS["peek"].write_set == frozenset()


def test_public_methods_are_direct_wrapped():
    for i in range(NV):
        method = getattr(DirectBoard, f"w{i}")
        assert getattr(method, "_repro_aot_plan", None) is PLANS[f"w{i}"]


# ------------------------------------------------------- direct-signal unit


def _park(mgr, lock, pred):
    w = Waiter(pred, lock)
    mgr._register(w)
    return w


def _fresh_board():
    """Construct a board and flush the ``__init__`` writes so metric deltas
    measured afterwards reflect only the schedule under test."""
    b = DirectBoard()
    with b._lock:
        b._cond_mgr.relay_signal()
    return b


def test_direct_signal_skips_the_bucket_scan():
    get_config().track_dependencies = True
    get_config().aot_signal = True
    b = _fresh_board()
    mgr = b._cond_mgr
    with b._lock:
        w = _park(mgr, b._lock, Predicate(S.v0 != 0))
        mgr.direct_signal(PLANS["peek"])   # fresh park evaluated (false)
        scanned = mgr.metrics.relay_buckets_scanned
        skipped = mgr.metrics.relay_skipped_aot
        b.v0 = 1
        assert mgr.direct_signal(PLANS["w0"]) is w
        assert mgr.metrics.relay_buckets_scanned == scanned
        assert mgr.metrics.relay_skipped_aot > skipped
        assert mgr.metrics.relay_aot_fallbacks == 0
        mgr._deregister(w)


def test_mismatched_dirty_set_falls_back_to_relay():
    """Writes outside the plan (monkeypatching, dynamic attributes) trip
    the subset guard: the exit degrades to a generic relay and still wakes
    the right waiter."""
    get_config().track_dependencies = True
    get_config().aot_signal = True
    b = _fresh_board()
    mgr = b._cond_mgr
    with b._lock:
        w = _park(mgr, b._lock, Predicate(S.v1 != 0))
        mgr.direct_signal(PLANS["peek"])
        b.v0 = 1
        b.v1 = 1   # dirty = {v0, v1} is not a subset of w0's plan
        fallbacks = mgr.metrics.relay_aot_fallbacks
        assert mgr.direct_signal(PLANS["w0"]) is w
        assert mgr.metrics.relay_aot_fallbacks == fallbacks + 1
        mgr._deregister(w)


def test_aot_signal_config_off_uses_relay():
    get_config().track_dependencies = True
    get_config().aot_signal = False
    b = _fresh_board()
    mgr = b._cond_mgr
    with b._lock:
        w = _park(mgr, b._lock, Predicate(S.v0 != 0))
        mgr.direct_signal(PLANS["peek"])
        b.v0 = 1
        assert mgr.direct_signal(PLANS["w0"]) is w
        assert mgr.metrics.relay_skipped_aot == 0
        mgr._deregister(w)


def test_direct_signal_still_advances_generations():
    """Direct exits must keep ``var_gens`` moving: stamp memos and the
    obligation tracker depend on generations, not on which search ran."""
    get_config().track_dependencies = True
    get_config().aot_signal = True
    b = _fresh_board()
    mgr = b._cond_mgr
    with b._lock:
        g0 = mgr.var_gens.get("v0", 0)
        b.v0 = 5
        mgr.direct_signal(PLANS["w0"])
        assert mgr.var_gens["v0"] == g0 + 1
        assert not b._dirty


# ------------------------------------------------ differential (hypothesis)


def _build_pred(spec) -> Predicate:
    kind = spec[0]
    if kind == "ne":
        return Predicate(getattr(S, f"v{spec[1]}") != 0)
    if kind == "diff":
        return Predicate(getattr(S, f"v{spec[1]}") > getattr(S, f"v{spec[2]}"))
    if kind == "eq":
        return Predicate(getattr(S, f"v{spec[1]}") == spec[2])
    if kind == "annot":
        i = spec[1]
        expr = S(lambda m, i=i: getattr(m, f"v{i}"), f"annot_v{i}",
                 reads=(f"v{i}",))
        return Predicate(expr != spec[2])
    if kind == "opaque":
        i, k = spec[1], spec[2]
        return Predicate(lambda m: getattr(m, f"v{i}") >= k + 1)
    assert kind == "poison"
    i = spec[1]
    # raises ZeroDivisionError while v_i == 0: the signaler must poison the
    # waiter and route the signal to it (it owns the failure)
    return Predicate(lambda m: 1 // getattr(m, f"v{i}") >= 0)


def _oracle_true(waiter, monitor) -> bool:
    try:
        return bool(waiter.eval_fn(monitor))
    except BaseException:
        return True  # a raising predicate absorbs the signal (poison path)


def _drive(ops, lane: str) -> list[frozenset]:
    """Apply one randomized schedule through one signaling lane; return the
    set of waiters woken after each step.

    Lanes: ``direct`` exits through ``direct_signal`` with the writing
    method's AOT plan (the bulk-write op deliberately presents a mismatched
    plan to exercise the fallback guard); ``tracked`` and ``exhaustive``
    exit through the runtime relay with filtering on/off.  After every
    drain the exhaustive oracle checks no live waiter holds a true
    predicate.
    """
    cfg = get_config()
    cfg.track_dependencies = lane != "exhaustive"
    cfg.aot_signal = lane == "direct"
    m = DirectBoard()
    mgr = m._cond_mgr

    def drain_step(plan):
        if lane == "direct":
            return mgr.direct_signal(plan)
        return mgr.relay_signal()

    live: dict[int, Waiter] = {}
    log: list[frozenset] = []
    next_wid = 0
    with m._lock:
        mgr.relay_signal()   # flush construction writes
        for op in ops:
            plan = PLANS["peek"]
            if op[0] == "park":
                live[next_wid] = _park(mgr, m._lock, _build_pred(op[1]))
                next_wid += 1
            elif op[0] == "write":
                setattr(m, f"v{op[1]}", op[2])
                plan = PLANS[f"w{op[1]}"]
            elif op[0] == "write2":
                # two variables dirtied, one plan: the direct lane must
                # detect the mismatch and fall back without losing a wake
                setattr(m, f"v{op[1]}", op[3])
                setattr(m, f"v{op[2]}", op[3])
                plan = PLANS[f"w{op[1]}"]
            elif op[0] == "abandon" and live:
                # timeout/cancel shape: deregister, then re-signal (the
                # drain below) so an absorbed baton is handed on
                wid = sorted(live)[op[1] % len(live)]
                mgr._deregister(live.pop(wid))
            woken = set()
            for _ in range(len(live) + len(ops) + 2):
                w = drain_step(plan)
                if w is None:
                    break
                wid = next(k for k, v in live.items() if v is w)
                woken.add(wid)
                mgr._deregister(live.pop(wid))
                plan = PLANS["peek"]   # baton re-relay wrote nothing new
            else:  # pragma: no cover - signal livelock
                raise AssertionError("signaling never quiesced")
            for wid, w in live.items():
                assert not _oracle_true(w, m), (
                    f"waiter {wid} satisfied but not signaled "
                    f"(lane={lane}, step {op})"
                )
            log.append(frozenset(woken))
    return log


_pred_spec = st.one_of(
    st.tuples(st.just("ne"), st.integers(0, NV - 1)),
    st.tuples(st.just("diff"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
    st.tuples(st.just("eq"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("annot"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("opaque"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("poison"), st.integers(0, NV - 1)),
)

_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("write2"), st.integers(0, NV - 1),
              st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("park"), _pred_spec),
    st.tuples(st.just("abandon"), st.integers(0, 7)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, min_size=1, max_size=30))
def test_direct_signal_matches_relay_search(ops):
    """Direct AOT exits wake exactly the waiters the dependency-tracked
    relay and the exhaustive scan wake, step for step."""
    direct = _drive(ops, "direct")
    assert direct == _drive(ops, "tracked")
    assert direct == _drive(ops, "exhaustive")


def test_direct_lane_actually_skips_relays():
    """Sanity for the differential harness itself: the direct lane takes
    the skip path (not a permanent fallback)."""
    cfg = get_config()
    cfg.track_dependencies = True
    cfg.aot_signal = True
    b = _fresh_board()
    mgr = b._cond_mgr
    with b._lock:
        w = _park(mgr, b._lock, Predicate(S.v2 != 0))
        mgr.direct_signal(PLANS["peek"])
        b.v2 = 1
        assert mgr.direct_signal(PLANS["w2"]) is w
        mgr._deregister(w)
    assert mgr.metrics.relay_skipped_aot >= 2


# ------------------------------------------------------------ real threads


def test_threaded_direct_wakes_match_expected():
    get_config().track_dependencies = True
    get_config().aot_signal = True

    @monitor_compile
    class Flags(Monitor):
        def __init__(self):
            super().__init__()
            self.flag0 = 0
            self.flag1 = 0

        def raise0(self):
            self.flag0 = 1

        def raise1(self):
            self.flag1 = 1

        def await_flag(self, i):
            self.wait_until(getattr(S, f"flag{i}") != 0)

    f = Flags()
    done = []
    threads = [
        threading.Thread(
            target=lambda i=i: (f.await_flag(i % 2), done.append(i)))
        for i in range(6)
    ]
    for t in threads:
        t.start()
    deadline_join = 10.0
    f.raise0()
    f.raise1()
    for t in threads:
        t.join(timeout=deadline_join)
    assert sorted(done) == list(range(6))
    assert f.metrics.relay_skipped_aot > 0


def test_plan_is_frozen_and_hashable():
    plan = MethodSignalPlan(method="m", write_set=frozenset({"a"}))
    assert plan == MethodSignalPlan(method="m", write_set=frozenset({"a"}))
    with pytest.raises(AttributeError):
        plan.write_set = frozenset()
