"""Focused tests for the condition manager's relay search and expr keys."""

import threading
import time

import pytest

from repro.core import Monitor, S
from repro.core.expressions import SharedExpr


class Board(Monitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.x = 0
        self.y = 0
        self.items = []

    def set_xy(self, x, y):
        self.x = x
        self.y = y

    def push(self, v):
        self.items.append(v)

    def wait_eq(self, k):
        self.wait_until(S.x == k)

    def wait_linear(self, k):
        # x + y >= k : a linear combination threshold
        self.wait_until(S.x + S.y >= k)

    def wait_len(self, k):
        # computed shared expression via S(...)
        self.wait_until(S(lambda m: len(m.items), "n_items") >= k)

    def wait_until_callable(self):
        self.wait_until(lambda m: m.x >= 50)


def _spawn(fn, *args):
    t = threading.Thread(target=fn, args=args, daemon=True)
    t.start()
    return t


class TestRelaySelection:
    def test_equivalence_selection_prefers_exact_key(self):
        b = Board()
        woken = []

        def waiter(k):
            b.wait_eq(k)
            woken.append(k)

        threads = [_spawn(waiter, k) for k in (3, 5, 9)]
        time.sleep(0.05)
        b.set_xy(5, 0)
        time.sleep(0.2)
        assert woken == [5]
        b.set_xy(3, 0)
        time.sleep(0.2)
        b.set_xy(9, 0)
        for t in threads:
            t.join(5)
        assert sorted(woken) == [3, 5, 9]

    def test_linear_combination_threshold(self):
        b = Board()
        done = threading.Event()
        _spawn(lambda: (b.wait_linear(10), done.set()))
        time.sleep(0.05)
        b.set_xy(4, 3)
        assert not done.wait(0.15)
        b.set_xy(6, 5)
        assert done.wait(5)

    def test_computed_shared_expression(self):
        b = Board()
        done = threading.Event()
        _spawn(lambda: (b.wait_len(3), done.set()))
        time.sleep(0.05)
        b.push(1)
        b.push(2)
        assert not done.wait(0.15)
        b.push(3)
        assert done.wait(5)

    def test_mixed_tag_kinds_coexist(self):
        b = Board()
        hits = []
        _spawn(lambda: (b.wait_eq(2), hits.append("eq")))
        _spawn(lambda: (b.wait_linear(100), hits.append("th")))
        _spawn(lambda: (b.wait_until_callable(), hits.append("fn")))
        time.sleep(0.05)
        b.set_xy(2, 0)
        time.sleep(0.3)
        assert hits == ["eq"]
        b.set_xy(60, 41)    # satisfies x+y>=100, and the callable below
        time.sleep(0.5)
        assert sorted(hits) == ["eq", "fn", "th"]


class TestFutileWakeups:
    def test_futile_wakeup_counted_on_steal(self):
        """A thread that gets signaled but loses the race re-waits."""
        b = Board()
        woken = threading.Event()

        def waiter():
            b.wait_linear(1)
            woken.set()

        _spawn(waiter)
        time.sleep(0.05)
        b.set_xy(1, 0)
        assert woken.wait(5)
        snap = b.metrics.snapshot()
        assert snap["signals"] >= 1


class TestHousekeeping:
    def test_waiter_pool_recycles(self):
        b = Board()
        done = threading.Event()

        def waiter():
            b.wait_eq(1)
            done.set()

        for round_no in range(3):
            done.clear()
            t = _spawn(waiter)
            time.sleep(0.05)
            b.set_xy(1, 0)
            assert done.wait(5)
            t.join(5)
            b.set_xy(0, 0)
        # after three churn rounds, at most a handful of pooled waiters
        # (each carrying its recycled condition variable) exist
        assert 1 <= len(b._cond_mgr._waiter_pool) <= 4
        # the recycled waiters are fully retired: no predicate references
        assert all(w.predicate is None for w in b._cond_mgr._waiter_pool)
        # and the expression caches were drained with the last waiter
        assert b._cond_mgr._expr_cache == {}
        assert b._cond_mgr._expr_evalers == {}

    def test_dump_waiters_describes_predicates(self):
        b = Board()
        t = _spawn(lambda: b.wait_eq(42))
        time.sleep(0.05)
        dump = b.dump_waiters()
        assert len(dump) == 1
        assert "42" in dump[0]
        b.set_xy(42, 0)
        t.join(5)
        assert b.dump_waiters() == []
