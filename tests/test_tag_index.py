"""Unit + property tests for the tag indexes (hash tables and heaps)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import S
from repro.core.predicates import Predicate
from repro.core.tag_index import TagIndex, ThresholdHeap, TagRecord
from repro.core.tags import Tag, TagKind, tag_predicate
from repro.core.waiter import Waiter

import threading


def _waiter(condition):
    return Waiter(Predicate(condition), threading.RLock())


def _index_with(*conditions):
    index = TagIndex()
    waiters = []
    for condition in conditions:
        w = _waiter(condition)
        for tag in tag_predicate(w.predicate.conjunctions):
            w.records.append(index.add(tag, w))
        waiters.append(w)
    return index, waiters


class FakeMonitor:
    def __init__(self, **kw):
        self.__dict__.update(kw)


def _search(index, monitor):
    return index.search(
        lambda key: _eval_key(key, monitor),
        lambda w: w.predicate.evaluate(monitor),
    )


def _eval_key(expr_key, monitor):
    total = 0.0
    for term_key, coeff in expr_key:
        kind, name = term_key
        total += coeff * getattr(monitor, name)
    if len(expr_key) == 1 and expr_key[0][1] == 1.0:
        return getattr(monitor, expr_key[0][0][1])
    return total


class TestEquivalenceTable:
    def test_hash_probe_finds_waiter(self):
        index, (w1, w2) = _index_with(S.x == 3, S.x == 7)
        found = _search(index, FakeMonitor(x=7))
        assert found is w2

    def test_no_match_returns_none(self):
        index, _ = _index_with(S.x == 3, S.x == 7)
        assert _search(index, FakeMonitor(x=5)) is None

    def test_remove_clears_table(self):
        index, (w1,) = _index_with(S.x == 3)
        index.remove(w1.records[0], w1)
        assert _search(index, FakeMonitor(x=3)) is None
        assert not index.eq_tables

    def test_shared_tag_record(self):
        index, (w1, w2) = _index_with((S.x == 5) & (S.y > 0), (S.x == 5) & (S.y < 0))
        rec1, rec2 = w1.records[0], w2.records[0]
        assert rec1 is rec2
        assert len(rec1.waiters) == 2


class TestThresholdHeap:
    def test_root_first_order(self):
        heap = ThresholdHeap(ascending=True)
        recs = [heap.record_for(Tag(TagKind.THRESHOLD, "k", v, ">")) for v in (5, 2, 9)]
        for rec in recs:
            rec.waiters.append(object())
        got = [r.tag.key for r in heap.candidates(10)]
        assert got == [2, 5, 9]

    def test_candidates_stop_at_false_root(self):
        heap = ThresholdHeap(ascending=True)
        for v in (2, 5, 9):
            heap.record_for(Tag(TagKind.THRESHOLD, "k", v, ">")).waiters.append(object())
        got = [r.tag.key for r in heap.candidates(6)]
        assert got == [2, 5]

    def test_backup_reinserted(self):
        heap = ThresholdHeap(ascending=True)
        for v in (2, 5):
            heap.record_for(Tag(TagKind.THRESHOLD, "k", v, ">")).waiters.append(object())
        list(heap.candidates(10))
        # a second walk sees the same roots
        assert [r.tag.key for r in heap.candidates(10)] == [2, 5]

    def test_inclusive_ranks_before_strict(self):
        heap = ThresholdHeap(ascending=True)
        heap.record_for(Tag(TagKind.THRESHOLD, "k", 3, ">")).waiters.append(object())
        heap.record_for(Tag(TagKind.THRESHOLD, "k", 3, ">=")).waiters.append(object())
        got = [(r.tag.key, r.tag.op) for r in heap.candidates(3)]
        assert got == [(3, ">=")]        # value 3 satisfies >= 3 but not > 3

    def test_descending_family(self):
        heap = ThresholdHeap(ascending=False)
        for v in (2, 5, 9):
            heap.record_for(Tag(TagKind.THRESHOLD, "k", v, "<")).waiters.append(object())
        got = [r.tag.key for r in heap.candidates(4)]
        assert got == [9, 5]


class TestSearchOrdering:
    def test_equivalence_checked_before_threshold(self):
        index, (weq, wth) = _index_with(S.x == 4, S.x >= 0)
        found = _search(index, FakeMonitor(x=4))
        assert found is weq

    def test_none_tags_scanned_last(self):
        calls = []

        def truthy():
            calls.append(1)
            return True

        index, (wfn, weq) = _index_with(truthy, S.x == 4)
        found = _search(index, FakeMonitor(x=4))
        assert found is weq
        assert not calls   # equivalence matched first, opaque never evaluated

    def test_threshold_search_finds_satisfiable(self):
        index, (w1, w2, w3) = _index_with(S.x >= 10, S.x >= 3, S.x >= 7)
        found = _search(index, FakeMonitor(x=5))
        assert found is w2

    def test_none_tag_recycled(self):
        index, (w1,) = _index_with(lambda: True)
        index.remove(w1.records[0], w1)
        index2_waiter = _waiter(lambda: True)
        rec = index.add(Tag(TagKind.NONE), index2_waiter)
        assert rec is w1.records[0]     # in-place reuse
        assert len(index.none_records) == 1


@settings(max_examples=60, deadline=None)
@given(
    consts=st.lists(st.integers(-10, 10), min_size=1, max_size=12),
    value=st.integers(-12, 12),
    op=st.sampled_from([">", ">=", "<", "<="]),
)
def test_heap_candidates_equal_bruteforce(consts, value, op):
    """The heap walk yields exactly the satisfied tags, best-first."""
    ascending = op in (">", ">=")
    heap = ThresholdHeap(ascending=ascending)
    for c in consts:
        heap.record_for(Tag(TagKind.THRESHOLD, "k", c, op)).waiters.append(object())
    sat = {
        ">": lambda v, k: v > k,
        ">=": lambda v, k: v >= k,
        "<": lambda v, k: v < k,
        "<=": lambda v, k: v <= k,
    }[op]
    got = sorted(r.tag.key for r in heap.candidates(value))
    want = sorted(set(c for c in consts if sat(value, c)))
    assert got == want
