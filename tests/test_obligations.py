"""Tests for the runtime signal-obligation checker (ObligationTracker).

Deterministic via ``poll_once()``: the first poll baselines each parked
waiter's (monitor generation, per-variable write generations); later
polls escalate only when the monitor's generation advanced by at least
``generation_budget`` while every variable the waiter reads stayed at
its baseline generation — progress everywhere except where it matters.
"""

import threading
import time

import pytest

from repro.core import Monitor, S
from repro.preprocess import monitor_compile
from repro.resilience import ObligationReport, ObligationTracker


@monitor_compile
class Cell(Monitor):
    """ready is only ever written by release(); tick() is busy-work."""

    def __init__(self):
        super().__init__()
        self.ready = False
        self.count = 0

    def tick(self):
        self.count += 1

    def release(self):
        self.ready = True

    def consume(self):
        self.wait_until(S.ready == True)  # noqa: E712 — DSL comparison


def park_consumer(cell, timeout=5.0):
    t = threading.Thread(target=cell.consume, daemon=True)
    t.start()
    deadline = time.monotonic() + timeout
    while cell.waiting_count() == 0:
        assert time.monotonic() < deadline, "consumer never parked"
        time.sleep(0.005)
    return t


def drain(cell, thread):
    cell.release()
    thread.join(5.0)
    assert not thread.is_alive()


class TestStaticSummary:
    def test_monitor_compile_exports_write_sites(self):
        sites = Cell._repro_write_sites
        assert sites["ready"] == ["release"]
        assert sites["count"] == ["tick"]


class TestTracker:
    def test_starved_waiter_produces_named_report(self):
        cell = Cell()
        t = park_consumer(cell)
        try:
            reports = []
            tracker = ObligationTracker(
                [cell], generation_budget=5, on_report=reports.append
            )
            assert tracker.poll_once() is None  # baseline only
            for _ in range(10):
                cell.tick()  # progress, but never on `ready`
            report = tracker.poll_once()
            assert isinstance(report, ObligationReport)
            assert reports == [report]
            (ob,) = report.obligations
            assert ob.monitor_class == "Cell"
            assert ob.unwritten_vars == ["ready"]
            assert ob.var_deltas == {"ready": 0}
            assert ob.generations_outlived >= 5
            assert "ready" in ob.predicate  # compiled predicate source
            assert ob.candidate_sites == {"ready": ["Cell.release()"]}
            assert "Cell.release()" in report.describe()
        finally:
            drain(cell, t)

    def test_waiter_reported_once(self):
        cell = Cell()
        t = park_consumer(cell)
        try:
            tracker = ObligationTracker([cell], generation_budget=2)
            tracker.poll_once()
            for _ in range(5):
                cell.tick()
            assert tracker.poll_once() is not None
            for _ in range(5):
                cell.tick()
            assert tracker.poll_once() is None  # no duplicate report
        finally:
            drain(cell, t)

    def test_write_to_read_variable_debits_obligation(self):
        """Any write generation movement on a read variable resets the
        claim — even if the predicate is still false afterwards."""

        @monitor_compile
        class Counter(Monitor):
            def __init__(self):
                super().__init__()
                self.n = 0

            def bump(self):
                self.n += 1

            def wait_ten(self):
                self.wait_until(S.n >= 10)

        c = Counter()
        t = threading.Thread(target=c.wait_ten, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while c.waiting_count() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        tracker = ObligationTracker([c], generation_budget=3)
        tracker.poll_once()
        for _ in range(5):
            c.bump()  # n: 0 → 5, predicate still false, but debited
        assert tracker.poll_once() is None
        for _ in range(5):
            c.bump()
        t.join(5.0)
        assert not t.is_alive()

    def test_departed_waiter_state_cleaned_up(self):
        cell = Cell()
        t = park_consumer(cell)
        tracker = ObligationTracker([cell], generation_budget=5)
        tracker.poll_once()
        assert len(tracker._first_seen) == 1
        drain(cell, t)
        assert tracker.poll_once() is None
        assert tracker._first_seen == {}

    def test_idle_monitor_never_escalates(self):
        """No section exits → no generation movement → no report; the
        quiet case belongs to the StallWatchdog, not the tracker."""
        cell = Cell()
        t = park_consumer(cell)
        try:
            tracker = ObligationTracker([cell], generation_budget=1)
            tracker.poll_once()
            assert tracker.poll_once() is None
            assert tracker.poll_once() is None
        finally:
            drain(cell, t)

    def test_background_thread_mode(self):
        cell = Cell()
        t = park_consumer(cell)
        try:
            got = threading.Event()
            tracker = ObligationTracker(
                [cell], generation_budget=3, poll_interval=0.01,
                on_report=lambda r: got.set(),
            )
            with tracker:
                deadline = time.monotonic() + 5.0
                while not got.is_set():
                    cell.tick()
                    assert time.monotonic() < deadline, "no report"
                    time.sleep(0.005)
            assert tracker.last_report is not None
        finally:
            drain(cell, t)

    def test_static_sites_parameter_merges(self):
        cell = Cell()
        t = park_consumer(cell)
        try:
            tracker = ObligationTracker(
                [cell], generation_budget=2,
                on_report=lambda r: None,
                static_sites={"Cell": {"ready": ["coordinator.release_all()"]}},
            )
            tracker.poll_once()
            for _ in range(5):
                cell.tick()
            report = tracker.poll_once()
            (ob,) = report.obligations
            assert ob.candidate_sites["ready"] == [
                "Cell.release()", "coordinator.release_all()",
            ]
        finally:
            drain(cell, t)

    def test_watch_unwatch(self):
        cell = Cell()
        tracker = ObligationTracker()
        tracker.watch(cell)
        tracker.watch(cell)  # idempotent
        assert len(tracker._monitors) == 1
        tracker.unwatch(cell)
        assert tracker._monitors == []

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            ObligationTracker(generation_budget=0)

    def test_report_names_the_signal_path(self):
        """Cell is compiled with literal write sites, so its waiters are
        served by AOT direct signaling — the report must say so, so a
        starvation is triaged against the right wake path."""
        cell = Cell()
        t = park_consumer(cell)
        try:
            tracker = ObligationTracker(
                [cell], generation_budget=2, on_report=lambda r: None
            )
            tracker.poll_once()
            for _ in range(5):
                cell.tick()
            (ob,) = tracker.poll_once().obligations
            assert ob.signal_path == "direct"
            assert "(path=direct)" in ob.describe()
        finally:
            drain(cell, t)

    def test_signal_path_defaults_to_relay(self):
        from repro.resilience.obligations import WaiterObligation

        ob = WaiterObligation(
            monitor_id=7, monitor_class="Bare", predicate="<opaque>",
            read_set=None, generations_outlived=9,
        )
        assert ob.signal_path == "relay"
        assert "(path=relay)" in ob.describe()

    def test_disabled_tracker_installs_no_hooks(self):
        """Creating (and even starting) a tracker must not touch the
        monitor: no attributes added, no wrappers installed — the hot
        path is byte-for-byte the un-tracked one."""
        cell = Cell()
        before = set(vars(cell))
        enter = type(cell)._monitor_enter
        tracker = ObligationTracker([cell], generation_budget=5)
        tracker.poll_once()
        assert set(vars(cell)) == before
        assert type(cell)._monitor_enter is enter
