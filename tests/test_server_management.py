"""Unit tests for monitor-server lifecycle and the hardware-cap registry."""

import time

from repro.active import ActiveMonitor, asynchronous
from repro.active.management import ServerRegistry
from repro.active.server import MonitorServer
from repro.runtime import get_config


class Tick(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.count = 0

    @asynchronous()
    def tick(self):
        self.count += 1


class TestRegistry:
    def test_cap_enforced(self):
        cfg = get_config()
        saved = cfg.max_server_threads
        cfg.max_server_threads = 2
        try:
            monitors = [Tick() for _ in range(5)]
            active = [m for m in monitors if m.is_active]
            assert len(active) == 2
            # denied monitors still work synchronously
            denied = next(m for m in monitors if not m.is_active)
            denied.tick()
            assert denied.count == 1
            for m in monitors:
                m.shutdown()
        finally:
            cfg.max_server_threads = saved

    def test_slot_freed_on_shutdown(self):
        cfg = get_config()
        saved = cfg.max_server_threads
        cfg.max_server_threads = 1
        try:
            a = Tick()
            assert a.is_active
            b = Tick()
            assert not b.is_active
            a.shutdown()
            c = Tick()
            assert c.is_active
            c.shutdown()
            b.shutdown()
        finally:
            cfg.max_server_threads = saved

    def test_registry_live_count(self):
        registry = ServerRegistry()
        assert registry.live_count() == 0


class TestServerLifecycle:
    def test_stop_is_idempotent(self):
        m = Tick()
        m.shutdown()
        m.shutdown()
        assert not m.is_active

    def test_kick_on_empty_is_noop(self):
        m = Tick()
        try:
            m.server.kick()
        finally:
            m.shutdown()

    def test_tasks_drain_before_shutdown(self):
        m = Tick()
        for _ in range(20):
            m.tick()
        m.flush()
        m.shutdown()
        assert m.count == 20

    def test_combining_metric_plausible(self):
        m = Tick()
        try:
            for _ in range(50):
                m.tick()
            m.flush()
            snap = m.metrics.snapshot()
            assert snap["tasks_submitted"] >= 50
        finally:
            m.shutdown()
