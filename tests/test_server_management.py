"""Unit tests for monitor-server lifecycle and the hardware-cap registry."""

import threading
import time

import pytest

from repro.active import ActiveMonitor, asynchronous
from repro.active.management import ServerRegistry
from repro.active.server import MonitorServer
from repro.active.tasks import MonitorTask
from repro.runtime import get_config
from repro.runtime.errors import TaskError


class Tick(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.count = 0

    @asynchronous()
    def tick(self):
        self.count += 1


class TestRegistry:
    def test_cap_enforced(self):
        cfg = get_config()
        saved = cfg.max_server_threads
        cfg.max_server_threads = 2
        try:
            monitors = [Tick() for _ in range(5)]
            active = [m for m in monitors if m.is_active]
            assert len(active) == 2
            # denied monitors still work synchronously
            denied = next(m for m in monitors if not m.is_active)
            denied.tick()
            assert denied.count == 1
            for m in monitors:
                m.shutdown()
        finally:
            cfg.max_server_threads = saved

    def test_slot_freed_on_shutdown(self):
        cfg = get_config()
        saved = cfg.max_server_threads
        cfg.max_server_threads = 1
        try:
            a = Tick()
            assert a.is_active
            b = Tick()
            assert not b.is_active
            a.shutdown()
            c = Tick()
            assert c.is_active
            c.shutdown()
            b.shutdown()
        finally:
            cfg.max_server_threads = saved

    def test_registry_live_count(self):
        registry = ServerRegistry()
        assert registry.live_count() == 0


class TestServerLifecycle:
    def test_stop_is_idempotent(self):
        m = Tick()
        m.shutdown()
        m.shutdown()
        assert not m.is_active

    def test_kick_on_empty_is_noop(self):
        m = Tick()
        try:
            m.server.kick()
        finally:
            m.shutdown()

    def test_tasks_drain_before_shutdown(self):
        m = Tick()
        for _ in range(20):
            m.tick()
        m.flush()
        m.shutdown()
        assert m.count == 20

    def test_combining_metric_plausible(self):
        m = Tick()
        try:
            for _ in range(50):
                m.tick()
            m.flush()
            snap = m.metrics.snapshot()
            assert snap["tasks_submitted"] >= 50
        finally:
            m.shutdown()

    def test_steal_metrics_recorded(self):
        """The executor counts batch steals from the delegation queue."""
        m = Tick()
        try:
            for _ in range(50):
                m.tick()
            m.flush()
            snap = m.metrics.snapshot()
            assert snap["steal_items"] >= 50
            assert 1 <= snap["steal_batches"] <= snap["steal_items"]
        finally:
            m.shutdown()


class TestShutdownRace:
    """Regression tests for the stop()/_try_combine race: a combiner must
    never execute a task after the server has declared the queue drained."""

    def test_combiner_refuses_after_stop_flag(self):
        m = Tick()
        server = m.server
        server._stop = True
        executed = []
        task = MonitorTask.acquire(lambda: executed.append(1), (), {})
        future = task.future
        server.queue.put(task)
        # the combiner path must bail rather than execute behind shutdown
        assert server._try_combine() is False
        assert executed == []
        server.drain()
        with pytest.raises(TaskError) as exc_info:
            future.get(timeout=1)
        assert "stopped" in str(exc_info.value.__cause__)
        m.shutdown()

    def test_submit_after_stop_fails_future_not_hangs(self):
        m = Tick()
        server = m.server
        m.shutdown()
        task = MonitorTask.acquire(lambda: None, (), {})
        future = task.future
        server.submit(task)   # must self-drain, not leave the future pending
        with pytest.raises(TaskError) as exc_info:
            future.get(timeout=1)
        assert "stopped" in str(exc_info.value.__cause__)

    def test_stop_submit_race_futures_never_hang(self):
        """Hammer submissions racing shutdown: every delegated future must
        resolve (value or server-stopped error) — none may hang."""
        for _ in range(15):
            m = Tick()
            futures = []
            go = threading.Event()

            def worker():
                go.wait()
                for _ in range(60):
                    try:
                        futures.append(m.tick())
                    except RuntimeError:
                        return

            t = threading.Thread(target=worker, daemon=True)
            t.start()
            go.set()
            time.sleep(0.001)
            m.shutdown()
            t.join(10)
            assert not t.is_alive()
            for future in futures:
                try:
                    future.get(timeout=5)   # TimeoutError here = regression
                except TaskError:
                    pass
