"""Integration tests for multisynch and global-condition waiting."""

import random
import threading
import time

import pytest

from repro.core import Monitor, S
from repro.multi import (
    complex_pred,
    current_multisynch,
    local,
    monitor_set,
    multisynch,
)
from repro.runtime.errors import (
    MonitorError,
    NestedMultisynchError,
    PredicateError,
)


class Account(Monitor):
    def __init__(self, balance=0):
        super().__init__()
        self.balance = balance

    def deposit(self, n):
        self.balance += n

    def withdraw(self, n):
        self.balance -= n


class TestOrderedLocking:
    def test_basic_block(self):
        a, b = Account(10), Account(0)
        with multisynch(a, b):
            a.withdraw(5)
            b.deposit(5)
        assert (a.balance, b.balance) == (5, 5)

    def test_lock_order_independent_of_argument_order(self):
        a, b = Account(), Account()
        with multisynch(b, a) as ms:
            ids = [m.monitor_id for m in ms.monitors]
        assert ids == sorted(ids)

    def test_accepts_nested_sequences(self):
        accounts = [Account() for _ in range(3)]
        with multisynch(accounts) as ms:
            assert len(ms.monitors) == 3

    def test_duplicates_deduped(self):
        a = Account()
        with multisynch(a, a, [a]) as ms:
            assert len(ms.monitors) == 1

    def test_deeply_nested_sequences_with_duplicate_aliases(self):
        a, b, c = Account(), Account(), Account()
        alias = a
        with multisynch([a, (b, [c, alias])], b) as ms:
            ids = [m.monitor_id for m in ms.monitors]
        assert len(ids) == 3
        assert ids == sorted(ids)

    def test_distinct_monitors_sharing_an_id_rejected(self):
        a, b = Account(), Account()
        b._monitor_id = a.monitor_id  # simulate an id collision
        with pytest.raises(MonitorError, match="share id"):
            multisynch(a, b)

    def test_nested_blocks_rejected(self):
        a, b = Account(), Account()
        with multisynch(a):
            with pytest.raises(NestedMultisynchError):
                with multisynch(b):
                    pass

    def test_current_multisynch_tracking(self):
        a = Account()
        assert current_multisynch() is None
        with multisynch(a) as ms:
            assert current_multisynch() is ms
        assert current_multisynch() is None

    def test_non_monitor_rejected(self):
        with pytest.raises(TypeError):
            multisynch(object())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multisynch()

    def test_bad_strategy_rejected(self):
        a = Account()
        with pytest.raises(ValueError):
            multisynch(a, strategy="??")

    def test_no_deadlock_under_random_acquisition_order(self):
        """The paper's §4.1 claim: arbitrary argument orders never deadlock."""
        accounts = [Account(100) for _ in range(6)]
        rng = random.Random(1)
        plans = [
            [tuple(rng.sample(range(6), 3)) for _ in range(30)] for _ in range(4)
        ]

        def worker(plan):
            for i, j, k in plan:
                with multisynch(accounts[i], accounts[j], accounts[k]):
                    accounts[i].withdraw(1)
                    accounts[j].deposit(1)
                    accounts[k].deposit(0)

        threads = [threading.Thread(target=worker, args=(p,), daemon=True) for p in plans]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads)
        assert sum(a.balance for a in accounts) == 600


class TestGlobalWaiting:
    @pytest.mark.parametrize("strategy", ["AS", "AV", "CC"])
    def test_or_condition(self, strategy):
        a, b = Account(0), Account(0)

        def feeder():
            time.sleep(0.05)
            b.deposit(3)

        t = threading.Thread(target=feeder, daemon=True)
        t.start()
        with multisynch(a, b, strategy=strategy) as ms:
            ms.wait_until(local(a, S.balance > 0) | local(b, S.balance > 0))
            assert a.balance > 0 or b.balance > 0
        t.join(5)

    @pytest.mark.parametrize("strategy", ["AS", "AV", "CC"])
    def test_and_condition(self, strategy):
        a, b = Account(0), Account(0)

        def feeder():
            time.sleep(0.03)
            a.deposit(1)
            time.sleep(0.03)
            b.deposit(1)

        t = threading.Thread(target=feeder, daemon=True)
        t.start()
        with multisynch(a, b, strategy=strategy) as ms:
            ms.wait_until(local(a, S.balance > 0) & local(b, S.balance > 0))
            assert a.balance > 0 and b.balance > 0
        t.join(5)

    @pytest.mark.parametrize("strategy", ["AS", "AV", "CC"])
    def test_complex_predicate(self, strategy):
        a, b = Account(0), Account(5)

        def feeder():
            time.sleep(0.05)
            a.deposit(10)

        t = threading.Thread(target=feeder, daemon=True)
        t.start()
        with multisynch(a, b, strategy=strategy) as ms:
            ms.wait_until(complex_pred([a, b], lambda: a.balance > b.balance))
            assert a.balance > b.balance
        t.join(5)

    def test_already_true_returns_immediately(self):
        a = Account(1)
        with multisynch(a) as ms:
            ms.wait_until(local(a, S.balance > 0))

    def test_predicate_must_be_covered(self):
        a, b = Account(), Account()
        with multisynch(a) as ms:
            with pytest.raises(PredicateError):
                ms.wait_until(local(b, S.balance > 0))

    def test_wait_outside_block_rejected(self):
        a = Account()
        ms = multisynch(a)
        with pytest.raises(PredicateError):
            ms.wait_until(local(a, S.balance > 0))

    def test_non_global_condition_rejected(self):
        a = Account()
        with multisynch(a) as ms:
            with pytest.raises(PredicateError):
                ms.wait_until(lambda: True)

    @pytest.mark.parametrize("strategy", ["AS", "AV", "CC"])
    def test_no_missed_signal_stress(self, strategy):
        """Many waiters on global conditions; every one must eventually wake
        (Props. 3 & 5)."""
        cells = [Account(0) for _ in range(4)]
        n_waiters = 6
        done = []

        def waiter(k):
            i, j = k % 4, (k + 1) % 4
            with multisynch(cells[i], cells[j], strategy=strategy) as ms:
                ms.wait_until(
                    local(cells[i], S.balance >= 1) & local(cells[j], S.balance >= 1)
                )
                done.append(k)

        threads = [threading.Thread(target=waiter, args=(k,), daemon=True) for k in range(n_waiters)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        for c in cells:
            c.deposit(1)
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)
        assert sorted(done) == list(range(n_waiters))

    def test_waiting_thread_holds_no_locks(self):
        """While blocked on a global condition, other threads can use the
        involved monitors freely."""
        a, b = Account(0), Account(0)
        entered = threading.Event()
        release = threading.Event()

        def waiter():
            with multisynch(a, b) as ms:
                entered.set()
                ms.wait_until(local(a, S.balance >= 99))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        entered.wait(5)
        time.sleep(0.05)
        # both monitors must be immediately usable
        a.deposit(1)
        b.deposit(1)
        a.deposit(98)
        t.join(10)
        assert not t.is_alive()


class TestMonitorSetFastPath:
    """MonitorSet / flatten-cache / generation-skip fast paths (perf PR)."""

    def test_monitor_set_flattens_and_orders(self):
        a, b = Account(), Account()
        ms = monitor_set(b, [a, b], a)        # nested + duplicates collapse
        assert len(ms) == 2
        assert [m.monitor_id for m in ms] == sorted(
            m.monitor_id for m in (a, b)
        )

    def test_monitor_set_synch_acquires(self):
        a, b = Account(1), Account(2)
        ms = monitor_set(a, b)
        with ms.synch() as block:
            assert current_multisynch() is block
            a.balance += 1
        assert current_multisynch() is None
        assert a.balance == 2

    def test_multisynch_accepts_monitor_set(self):
        a, b = Account(), Account()
        ms = monitor_set(a, b)
        with multisynch(ms) as block:
            # the precomputed tuple is used directly — no re-flatten
            assert block.monitors is ms.monitors

    def test_monitor_set_needs_monitors(self):
        with pytest.raises(ValueError):
            monitor_set()

    def test_flatten_cache_reuses_tuple(self):
        a, b = Account(), Account()
        first = multisynch(a, b)
        second = multisynch(a, b)
        assert first.monitors is second.monitors   # served from the cache

    def test_flatten_cache_disabled_still_correct(self):
        from repro.multi import multisync as msmod

        a, b = Account(), Account()
        msmod._cache_enabled = False
        try:
            first = multisynch(a, b)
            second = multisynch(b, a)
            assert first.monitors == second.monitors
        finally:
            msmod._cache_enabled = True


class TestGenerationSkip:
    """Generation-stamped predicate memoization in multisynch.wait_until."""

    def test_generation_bumps_on_monitor_exit(self):
        a = Account()
        before = a._generation
        a.deposit(1)                      # enter + exit one monitor section
        assert a._generation > before

    def test_evaluator_skips_unchanged_atoms(self):
        from repro.multi import GenerationEvaluator

        counts = {"a": 0, "b": 0}
        a, b = Account(5), Account(5)

        def pa(m):
            counts["a"] += 1
            return m.balance > 0

        def pb(m):
            counts["b"] += 1
            return m.balance > 0

        cond = local(a, pa) & local(b, pb)
        evaluator = GenerationEvaluator(cond)
        assert evaluator.evaluate()
        assert counts == {"a": 1, "b": 1}
        # nothing moved: whole evaluation served from the memo
        assert evaluator.evaluate()
        assert counts == {"a": 1, "b": 1}
        # touch only a: its atom re-evaluates, b's stays memoized
        a.deposit(0)
        assert evaluator.evaluate()
        assert counts == {"a": 2, "b": 1}

    def test_evaluator_counts_skips_in_metrics(self):
        from repro.multi import GenerationEvaluator, global_condition_metrics

        a = Account(5)
        cond = local(a, S.balance > 0) & local(a, S.balance < 100)
        evaluator = GenerationEvaluator(cond, global_condition_metrics)
        before = global_condition_metrics.gen_skips
        assert evaluator.evaluate()
        assert evaluator.evaluate()
        assert global_condition_metrics.gen_skips >= before + 2

    def test_wait_until_skips_untouched_monitor(self):
        """A waiter woken by mutations of one monitor must not re-evaluate
        atoms local to monitors whose generation did not move."""
        counts = {"b": 0}
        a, b = Account(0), Account(5)

        def pb(m):
            counts["b"] += 1
            return m.balance > 0

        started = threading.Event()
        done = threading.Event()

        def waiter():
            with multisynch(a, b, strategy="AS") as block:
                started.set()
                block.wait_until(local(a, S.balance >= 3) & local(b, pb))
            done.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        assert started.wait(5)
        time.sleep(0.05)
        for _ in range(3):
            a.deposit(1)                  # wakes the AS waiter each exit
            time.sleep(0.01)
        assert done.wait(10)
        t.join(5)
        # b never changed after the initial evaluation: exactly one call
        assert counts["b"] == 1
