"""Unit + property tests for boolean predicates, DNF conversion, closure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import S
from repro.core.predicates import (
    And,
    Comparison,
    FalseAtom,
    FuncAtom,
    Or,
    Predicate,
    TrueAtom,
    conjunction_true,
)
from repro.runtime.errors import PredicateError


class Obj:
    def __init__(self, **kw):
        self.__dict__.update(kw)


class TestComparison:
    def test_basic_operators(self):
        m = Obj(x=5)
        assert (S.x == 5).evaluate(m)
        assert (S.x != 4).evaluate(m)
        assert (S.x < 6).evaluate(m)
        assert (S.x <= 5).evaluate(m)
        assert (S.x > 4).evaluate(m)
        assert (S.x >= 5).evaluate(m)

    def test_negation_flips_operator(self):
        m = Obj(x=5)
        assert not (S.x == 5).negate().evaluate(m)
        assert (S.x < 5).negate().evaluate(m)      # x >= 5

    def test_truthiness_is_an_error(self):
        with pytest.raises(PredicateError):
            bool(S.x == 3)

    def test_normalized_shape_equivalence(self):
        shape = (S.x == 7).tag_shape
        assert shape is not None
        _, op, const = shape
        assert op == "==" and const == 7

    def test_normalized_shape_moves_terms_left(self):
        # count + 5 <= capacity normalizes to a pure shared-vs-constant shape
        # (canonical orientation may flip the operator with the scale)
        shape = (S.count + 5 <= S.capacity).tag_shape
        key, op, const = shape
        assert op in ("<=", ">=")
        assert const in (-5.0, 5.0)
        assert ("var", "count") in dict(key)
        assert ("var", "capacity") in dict(key)

    def test_shared_shapes_share_keys(self):
        a = (S.count + 3 <= S.capacity).tag_shape
        b = (S.count + 48 <= S.capacity).tag_shape
        assert a[0] == b[0]
        assert a[2] != b[2]

    def test_negative_scale_flips_comparison(self):
        # capacity - count > 0  ≡  count - capacity < 0 after canonicalizing
        m = Obj(count=3, capacity=8)
        atom = (S.capacity - S.count > 0)
        assert atom.evaluate(m)
        key, op, const = atom.tag_shape
        # whatever the canonical orientation, evaluation must agree
        assert atom.evaluate(Obj(count=9, capacity=8)) is False

    def test_object_equality_fallback_shape(self):
        shape = (S.owner == "alice").tag_shape
        assert shape is not None
        assert shape[1] == "=="
        assert shape[2] == "alice"

    def test_both_sides_nonlinear_untaggable(self):
        assert ((S.x % 2) == (S.y % 3)).tag_shape is None


class TestBooleanStructure:
    def test_and_evaluation(self):
        m = Obj(x=5, y=2)
        assert ((S.x == 5) & (S.y == 2)).evaluate(m)
        assert not ((S.x == 5) & (S.y == 3)).evaluate(m)

    def test_or_evaluation(self):
        m = Obj(x=5, y=2)
        assert ((S.x == 9) | (S.y == 2)).evaluate(m)

    def test_de_morgan_negation(self):
        m = Obj(x=5, y=2)
        node = ~((S.x == 5) & (S.y == 2))
        assert not node.evaluate(m)
        assert node.evaluate(Obj(x=5, y=3))

    def test_nested_flattening(self):
        node = (S.a > 0) & (S.b > 0) & (S.c > 0)
        assert isinstance(node, And)
        assert len(node.children) == 3

    def test_plain_callable_becomes_funcatom(self):
        pred = Predicate(lambda: True)
        assert pred.evaluate(None) is True

    def test_one_arg_callable_gets_monitor(self):
        pred = Predicate(lambda m: m.x == 1)
        assert pred.evaluate(Obj(x=1))

    def test_bool_literal(self):
        assert Predicate(True).evaluate(None)
        assert not Predicate(False).evaluate(None)

    def test_funcatom_negation(self):
        atom = FuncAtom(lambda: True)
        assert not atom.negate().evaluate(None)

    def test_invalid_condition_rejected(self):
        with pytest.raises(PredicateError):
            Predicate(42)


class TestDNF:
    def test_single_atom(self):
        assert len(Predicate(S.x == 1).conjunctions) == 1

    def test_or_of_ands(self):
        pred = Predicate(((S.x == 1) & (S.y == 2)) | (S.z == 3))
        assert len(pred.conjunctions) == 2

    def test_distribution(self):
        # (a | b) & (c | d) → 4 conjunctions
        node = ((S.a > 0) | (S.b > 0)) & ((S.c > 0) | (S.d > 0))
        pred = Predicate(node)
        assert len(pred.conjunctions) == 4

    def test_conjunction_true_helper(self):
        pred = Predicate((S.x == 1) & (S.y == 2))
        assert conjunction_true(pred.conjunctions[0], Obj(x=1, y=2))
        assert not conjunction_true(pred.conjunctions[0], Obj(x=1, y=3))

    def test_true_false_atoms(self):
        assert TrueAtom().evaluate(None)
        assert not FalseAtom().evaluate(None)
        assert isinstance(TrueAtom().negate(), FalseAtom)


# ---------------------------------------------------------------- properties
_vars = ["a", "b", "c"]


def _atoms():
    return st.builds(
        lambda name, op, const: Comparison(S.__getattr__(name), op, _wrap_const(const)),
        st.sampled_from(_vars),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        st.integers(min_value=-3, max_value=3),
    )


def _wrap_const(value):
    from repro.core.expressions import Const

    return Const(value)


def _trees(depth=3):
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            st.builds(lambda a, b: And([a, b]), children, children),
            st.builds(lambda a, b: Or([a, b]), children, children),
            st.builds(lambda a: a.negate(), children),
        ),
        max_leaves=8,
    )


@settings(max_examples=120, deadline=None)
@given(
    tree=_trees(),
    values=st.fixed_dictionaries({v: st.integers(-4, 4) for v in _vars}),
)
def test_dnf_preserves_semantics(tree, values):
    """The DNF of any boolean tree evaluates identically to the tree."""
    m = Obj(**values)
    pred = Predicate(tree)
    dnf_value = any(conjunction_true(c, m) for c in pred.conjunctions)
    assert dnf_value == tree.evaluate(m)


@settings(max_examples=120, deadline=None)
@given(
    tree=_trees(),
    values=st.fixed_dictionaries({v: st.integers(-4, 4) for v in _vars}),
)
def test_negation_complements(tree, values):
    m = Obj(**values)
    assert tree.negate().evaluate(m) == (not tree.evaluate(m))


@settings(max_examples=80, deadline=None)
@given(
    values=st.fixed_dictionaries({v: st.integers(-4, 4) for v in _vars}),
    coeffs=st.tuples(st.integers(1, 3), st.integers(-3, 3), st.integers(-3, 3)),
)
def test_linear_normalization_preserves_comparisons(values, coeffs):
    """scale*(a) + k1 <= b + k2 evaluates the same as its normalized shape."""
    scale, k1, k2 = coeffs
    m = Obj(**values)
    atom = scale * S.a + k1 <= S.b + k2
    expected = scale * values["a"] + k1 <= values["b"] + k2
    assert atom.evaluate(m) == expected
