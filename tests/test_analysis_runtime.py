"""Tests for the dynamic monitor-usage checker (repro.analysis.runtime)."""

import pytest

from repro.analysis import runtime as monlint_runtime
from repro.core import Monitor
from repro.multi import multisynch
from repro.runtime.config import get_config
from repro.runtime.errors import LockOrderError, PredicateSideEffectError


class Node(Monitor):
    def __init__(self):
        super().__init__()
        self.hits = 0

    def touch(self):
        self.hits += 1

    def outer(self, other):
        # nested hand-ordered acquisition: other's lock under self's lock
        other.touch()


class Sneaky(Monitor):
    def __init__(self):
        super().__init__()
        self.n = 0

    def bad_wait(self):
        def pred():
            self.n += 1  # mutation during predicate evaluation
            return True

        self.wait_until(pred)


@pytest.fixture(autouse=True)
def _pristine_checker():
    monlint_runtime.disable_checks()
    monlint_runtime.reset()
    yield
    monlint_runtime.disable_checks()
    monlint_runtime.reset()


# ------------------------------------------------------------- lock order
def test_misordered_acquisition_raises():
    a, b = Node(), Node()  # ids ascend with construction order
    with monlint_runtime.checking():
        with pytest.raises(LockOrderError):
            b.outer(a)  # acquires a (lower id) while holding b
        assert monlint_runtime.violations
        assert "ascending monitor-id order" in monlint_runtime.violations[0]


def test_ascending_nesting_is_allowed():
    a, b = Node(), Node()
    with monlint_runtime.checking():
        a.outer(b)
    assert b.hits == 1


def test_reentrant_acquisition_is_allowed():
    a = Node()
    with monlint_runtime.checking():
        a.outer(a)  # reentrant self-call, legal under the RLock
    assert a.hits == 1


def test_multisynch_satisfies_the_checker():
    a, b = Node(), Node()
    with monlint_runtime.checking():
        with multisynch(b, a):  # multisynch reorders to ascending ids
            a.touch()
            b.touch()
    assert (a.hits, b.hits) == (1, 1)


def test_record_only_mode():
    a, b = Node(), Node()
    with monlint_runtime.checking(raise_on_order_violation=False):
        b.outer(a)  # recorded, not raised
    assert a.hits == 1
    assert len(monlint_runtime.violations) == 1


def test_checker_state_resets_after_violation():
    a, b = Node(), Node()
    with monlint_runtime.checking():
        with pytest.raises(LockOrderError):
            b.outer(a)
        # the refused acquisition must not linger on the held stack
        assert list(monlint_runtime.held_monitor_ids()) == []
        a.touch()  # plain use keeps working
    assert a.hits == 1


# -------------------------------------------------------- predicate purity
def test_predicate_side_effect_detected():
    sneaky = Sneaky()
    with monlint_runtime.checking():
        with pytest.raises(PredicateSideEffectError):
            sneaky.bad_wait()
        assert monlint_runtime.violations


def test_predicate_side_effect_ignored_when_disabled():
    sneaky = Sneaky()
    sneaky.bad_wait()  # impure, but the checker is off: paper semantics only
    assert sneaky.n >= 1


# ------------------------------------------------------------ enable state
def test_config_flag_stays_in_sync():
    cfg = get_config()
    assert cfg.analysis_checks is False
    monlint_runtime.enable_checks()
    assert monlint_runtime.enabled and cfg.analysis_checks is True
    monlint_runtime.disable_checks()
    assert not monlint_runtime.enabled and cfg.analysis_checks is False


def test_disabled_checker_tracks_nothing():
    a = Node()
    a.touch()
    assert list(monlint_runtime.held_monitor_ids()) == []
    assert monlint_runtime.violations == []
