"""Smoke tests: every shipped example runs clean end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "name",
    ["quickstart", "pizza_store", "multicast_server", "parallel_sssp",
     "priority_readers_writers", "compiled_monitor", "h2o_molecules",
     "event_simulation"],
)
def test_example_runs(name, capsys):
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "examples must print their outcome"
