"""Integration tests: chapter-4/5 workloads (multi-object + composition)."""

import pytest

from repro.problems.des import run_des
from repro.problems.dining import run_dining_multi
from repro.problems.genome import make_genome, run_genome
from repro.problems.multicast import run_multicast
from repro.problems.pizza_store import make_recipes, make_store, run_pizza_store
from repro.problems.take_and_put import run_take_and_put

MULTI = ["gl", "tm", "as", "av", "cc"]


class TestDiningMulti:
    @pytest.mark.parametrize("variant", ["fl", "tm", "ms"])
    def test_all_eat(self, variant):
        result = run_dining_multi(variant, 5, 30)
        assert result.operations == 150

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_dining_multi("??", 3, 1)


class TestPizzaStore:
    def test_recipes_reproducible(self):
        assert make_recipes(3) == make_recipes(3)
        assert all(len(r) == 3 for r in make_recipes())

    @pytest.mark.parametrize("variant", MULTI)
    def test_all_pizzas_made(self, variant):
        result = run_pizza_store(variant, 3, 8)
        assert result.operations == 24

    def test_as_produces_more_false_evals_than_cc(self):
        # heavier load so cooks reliably block; under light scheduling luck
        # both counts can be ~0, so tiny totals are treated as a tie
        as_false = run_pizza_store("as", 8, 20).metrics["false_evals"]
        cc_false = run_pizza_store("cc", 8, 20).metrics["false_evals"]
        assert as_false >= cc_false or (as_false + cc_false) <= 4

    def test_store_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_store("zz")


class TestTakeAndPut:
    @pytest.mark.parametrize("variant", MULTI)
    def test_moves_complete(self, variant):
        result = run_take_and_put(variant, 3, 25)
        assert result.operations == 75

    def test_items_conserved_ms(self):
        from repro.problems.take_and_put import MQueue, move_ms

        queues = [MQueue(64) for _ in range(3)]
        for q in queues:
            for i in range(8):
                q.put(i)
        move_ms(queues[0], queues[1], "CC")
        move_ms(queues[2], queues[0], "AV")
        assert sum(q.count for q in queues) == 24


class TestDES:
    @pytest.mark.parametrize("variant", MULTI)
    def test_events_execute_in_timestamp_order(self, variant):
        result = run_des(variant, 3, 25)
        assert result.extra["executed"] == 75
        assert result.extra["in_order"]


class TestGenome:
    def test_segments_cover_genome(self):
        genome, segments = make_genome(256, 16, seed=1)
        assert all(s in genome for s in set(segments))

    @pytest.mark.parametrize("variant", ["fl", "tm", "ms"])
    def test_variants_agree(self, variant):
        result = run_genome(variant, 3, genome_length=512, seed=2)
        baseline = run_genome("fl", 1, genome_length=512, seed=2)
        assert result.extra["unique"] == baseline.extra["unique"]
        assert result.extra["linked"] == baseline.extra["linked"]

    def test_dedup_removes_duplicates(self):
        result = run_genome("fl", 2, genome_length=512, seed=3)
        _, segments = make_genome(512, 16, seed=3)
        assert result.extra["unique"] == len(set(segments))


class TestMulticast:
    @pytest.mark.parametrize("variant", MULTI + ["am"])
    def test_all_requests_served(self, variant):
        result = run_multicast(variant, 3, 15)
        assert result.operations == 45
