"""Integration tests: chapter-3 workloads (PSSSP, BQ, SLL) + graph substrate."""

import pytest

from repro.problems.bounded_buffer import run_active_queue
from repro.problems.graphs import (
    PAPER_GRAPHS,
    edge_count,
    rmat,
    road_network,
    sequential_dijkstra,
)
from repro.problems.psssp import parallel_sssp, run_psssp
from repro.problems.sorted_list import (
    ActiveSortedList,
    LockSortedList,
    run_sorted_list,
)


class TestGraphs:
    def test_road_network_shape(self):
        g = road_network(6, seed=0)
        assert len(g) == 36
        assert edge_count(g) >= 2 * 5 * 6   # grid edges at least

    def test_road_network_symmetric(self):
        g = road_network(5, seed=1)
        for u, adj in enumerate(g):
            for v, w in adj:
                assert any(x == u for x, _ in g[v])

    def test_rmat_connected_enough(self):
        g = rmat(64, 256, seed=2)
        dist = sequential_dijkstra(g, 0)
        assert all(d < float("inf") for d in dist)

    def test_paper_suite_builds(self):
        for name, builder in PAPER_GRAPHS.items():
            g = builder(0.3)
            assert len(g) > 0, name

    def test_sequential_dijkstra_simple(self):
        # a tiny known graph: 0-1 (1.0), 1-2 (2.0), 0-2 (10.0)
        g = [[(1, 1.0), (2, 10.0)], [(0, 1.0), (2, 2.0)], [(1, 2.0), (0, 10.0)]]
        assert sequential_dijkstra(g, 0) == [0.0, 1.0, 3.0]


class TestPSSSP:
    @pytest.mark.parametrize("variant", ["lk", "am", "ams"])
    def test_matches_sequential(self, variant):
        g = road_network(7, seed=3)
        want = sequential_dijkstra(g, 0)
        got, _ = parallel_sssp(g, 0, variant, 3)
        assert all(abs(a - b) < 1e-9 for a, b in zip(want, got))

    @pytest.mark.parametrize("variant", ["lk", "am"])
    def test_rmat_graph(self, variant):
        g = rmat(48, 128, seed=4)
        want = sequential_dijkstra(g, 5)
        got, _ = parallel_sssp(g, 5, variant, 2)
        assert all(abs(a - b) < 1e-9 for a, b in zip(want, got))

    def test_run_reports_edge_throughput(self):
        g = road_network(6, seed=5)
        result = run_psssp(g, "lk", 2)
        assert result.operations == edge_count(g)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            parallel_sssp([[]], 0, "??", 1)


class TestActiveQueueWorkload:
    @pytest.mark.parametrize("variant", ["lk", "am", "ams", "qd"])
    def test_balanced_put_take(self, variant):
        result = run_active_queue(variant, 4, 80, 8)
        assert result.operations == 320

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_active_queue("zz", 2, 10, 4)


class TestSortedList:
    def test_lock_list_semantics(self):
        lst = LockSortedList()
        assert lst.insert(5)
        assert not lst.insert(5)
        assert lst.contains(5)
        assert lst.delete(5)
        assert not lst.delete(5)
        assert lst.snapshot() == []

    def test_list_stays_sorted_and_unique(self):
        lst = LockSortedList()
        for v in [5, 3, 9, 3, 1, 9]:
            lst.insert(v)
        assert lst.snapshot() == [1, 3, 5, 9]

    def test_active_list_matches_lock_list(self):
        import random

        rng = random.Random(0)
        ops = [(rng.choice(["insert", "delete"]), rng.randrange(50)) for _ in range(200)]
        lock_list = LockSortedList()
        active = ActiveSortedList()
        try:
            for op, v in ops:
                getattr(lock_list, op)(v)
                getattr(active, op)(v)
            active.flush()
            assert active.snapshot() == lock_list.snapshot()
        finally:
            active.shutdown()

    @pytest.mark.parametrize("variant", ["lk", "am", "ams"])
    @pytest.mark.parametrize("mix", ["read-heavy", "write-heavy", "mixed"])
    def test_all_mixes_complete(self, variant, mix):
        result = run_sorted_list(variant, mix, 2, 40)
        assert result.operations == 80
