"""Unit + property tests for global predicates and the critical clause."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Monitor, S
from repro.multi.global_predicates import (
    ComplexPredicate,
    GAnd,
    GOr,
    LocalPredicate,
    complex_pred,
    compute_critical,
    group_by_monitor,
    local,
)
from repro.runtime.errors import PredicateError


class Cell(Monitor):
    def __init__(self, value=0):
        super().__init__()
        self.value = value

    def set(self, v):
        self.value = v


class TestAtoms:
    def test_local_predicate_evaluation(self):
        c = Cell(5)
        assert local(c, S.value == 5).evaluate()
        assert not local(c, S.value > 9).evaluate()

    def test_local_negation(self):
        c = Cell(5)
        atom = local(c, S.value > 9)
        assert atom.negate().evaluate()

    def test_local_monitors(self):
        c = Cell()
        assert local(c, S.value == 0).monitors() == frozenset((c,))

    def test_complex_requires_two_monitors(self):
        c = Cell()
        with pytest.raises(PredicateError):
            complex_pred([c], lambda: True)

    def test_complex_evaluation_and_negation(self):
        a, b = Cell(1), Cell(2)
        atom = complex_pred([a, b], lambda: a.value < b.value)
        assert atom.evaluate()
        assert not atom.negate().evaluate()
        assert atom.monitors() == frozenset((a, b))


class TestConnectives:
    def test_and_or_evaluation(self):
        a, b = Cell(1), Cell(0)
        node = local(a, S.value == 1) & local(b, S.value == 1)
        assert not node.evaluate()
        node2 = local(a, S.value == 1) | local(b, S.value == 1)
        assert node2.evaluate()

    def test_monitors_union(self):
        a, b, c = Cell(), Cell(), Cell()
        node = (local(a, S.value == 0) & local(b, S.value == 0)) | local(c, S.value == 0)
        assert node.monitors() == frozenset((a, b, c))

    def test_de_morgan(self):
        a, b = Cell(1), Cell(1)
        node = ~(local(a, S.value == 1) & local(b, S.value == 1))
        assert isinstance(node, GOr)
        assert not node.evaluate()

    def test_flattening(self):
        a, b, c = Cell(), Cell(), Cell()
        node = local(a, S.value == 0) & local(b, S.value == 0) & local(c, S.value == 0)
        assert len(node.children) == 3


class TestCriticalClause:
    """Algorithm 3's three defining properties (Def. 12)."""

    def test_atom_is_its_own_clause(self):
        c = Cell(0)
        atom = local(c, S.value > 0)
        assert compute_critical(atom) == [atom]

    def test_conjunction_picks_false_conjunct(self):
        a, b = Cell(1), Cell(0)
        node = local(a, S.value == 1) & local(b, S.value == 1)   # b is false
        clause = compute_critical(node)
        assert len(clause) == 1
        assert clause[0].monitors() == frozenset((b,))

    def test_disjunction_unions_clauses(self):
        a, b = Cell(0), Cell(0)
        node = local(a, S.value > 0) | local(b, S.value > 0)
        clause = compute_critical(node)
        assert {next(iter(atom.monitors())) for atom in clause} == {a, b}

    def test_true_conjunction_rejected(self):
        a, b = Cell(1), Cell(1)
        node = local(a, S.value == 1) & local(b, S.value == 1)
        with pytest.raises(PredicateError):
            compute_critical(node)

    def test_prefers_local_over_complex_conjunct(self):
        a, b = Cell(0), Cell(0)
        cx = complex_pred([a, b], lambda: False)
        node = GAnd([cx, local(a, S.value > 0)])
        clause = compute_critical(node)
        assert all(not atom.is_complex for atom in clause)

    def test_group_by_monitor_spreads_complex(self):
        a, b = Cell(0), Cell(0)
        cx = complex_pred([a, b], lambda: False)
        buckets = group_by_monitor([cx, local(a, S.value > 0)])
        assert cx in buckets[a] and cx in buckets[b]
        assert len(buckets[a]) == 2


# --------------------------------------------------------------- properties
@st.composite
def _global_trees(draw, cells):
    def atoms():
        return st.builds(
            lambda idx, thresh: local(cells[idx], S.value >= thresh),
            st.integers(0, len(cells) - 1),
            st.integers(-2, 4),
        )

    tree = draw(
        st.recursive(
            atoms(),
            lambda kids: st.one_of(
                st.builds(lambda x, y: GAnd([x, y]), kids, kids),
                st.builds(lambda x, y: GOr([x, y]), kids, kids),
            ),
            max_leaves=6,
        )
    )
    return tree


@settings(max_examples=80, deadline=None)
@given(data=st.data(), values=st.lists(st.integers(-3, 3), min_size=3, max_size=3))
def test_critical_clause_properties(data, values):
    """Properties 1 & 2 of Def. 12 hold for arbitrary trees and states."""
    cells = [Cell(v) for v in values]
    tree = data.draw(_global_trees(cells))
    if tree.evaluate():
        return  # Algorithm 3 only applies to false predicates
    clause = compute_critical(tree)
    # property 1: the clause is false in the current state
    assert not any(atom.evaluate() for atom in clause)
    # property 2 (P ⇒ C): whenever C stays false, P stays false — test on
    # random next states
    for _ in range(5):
        new_values = data.draw(
            st.lists(st.integers(-3, 3), min_size=3, max_size=3)
        )
        for cell, v in zip(cells, new_values):
            cell.set(v)
        if tree.evaluate():
            assert any(atom.evaluate() for atom in clause)
    # property 3: every clause atom is local (no GAnd/GOr inside)
    assert all(isinstance(a, (LocalPredicate, ComplexPredicate)) for a in clause)
