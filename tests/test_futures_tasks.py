"""Unit tests for light futures, monitor tasks, and execution policies."""

import threading

import pytest

from repro.active.futures import CompletedFuture, LightFuture
from repro.active.policies import Policy, select_task
from repro.active.tasks import MonitorTask
from repro.core.predicates import Predicate
from repro.runtime.errors import TaskError


class TestLightFuture:
    def test_result_roundtrip(self):
        f = LightFuture()
        f.set_result(42)
        assert f.done()
        assert f.get() == 42

    def test_exception_wrapped_in_task_error(self):
        f = LightFuture()
        f.set_exception(ValueError("boom"))
        with pytest.raises(TaskError) as excinfo:
            f.get()
        assert isinstance(excinfo.value.cause, ValueError)
        assert isinstance(f.exception(), ValueError)

    def test_get_timeout(self):
        f = LightFuture()
        with pytest.raises(TimeoutError):
            f.get(timeout=0.05)

    def test_blocking_get_wakes_on_result(self):
        f = LightFuture()
        results = []
        t = threading.Thread(target=lambda: results.append(f.get()), daemon=True)
        t.start()
        f.set_result("done")
        t.join(5)
        assert results == ["done"]

    def test_completed_future(self):
        assert CompletedFuture(7).get() == 7
        failed = CompletedFuture(error=RuntimeError("x"))
        with pytest.raises(TaskError):
            failed.get()


class FakeMonitor:
    def __init__(self, ready=True):
        self.ready = ready


class TestMonitorTask:
    def test_executable_without_precondition(self):
        task = MonitorTask(lambda: 1, (), {})
        assert task.executable(FakeMonitor())

    def test_executable_follows_precondition(self):
        task = MonitorTask(lambda: 1, (), {},
                           precondition=Predicate(lambda m: m.ready))
        assert task.executable(FakeMonitor(ready=True))
        assert not task.executable(FakeMonitor(ready=False))

    def test_run_sets_result(self):
        task = MonitorTask(lambda x: x * 2, (21,), {})
        task.run(None)
        assert task.future.get() == 42

    def test_run_captures_exception(self):
        def boom():
            raise KeyError("nope")

        task = MonitorTask(boom, (), {})
        task.run(None)
        assert isinstance(task.future.exception(), KeyError)

    def test_sequence_numbers_increase(self):
        a = MonitorTask(lambda: 1, (), {})
        b = MonitorTask(lambda: 1, (), {})
        assert b.seq > a.seq


def _task(ready: bool, priority: int = 0):
    return MonitorTask(
        lambda: None, (), {},
        precondition=Predicate(lambda m, ready=ready: ready),
        priority=priority,
    )


class TestPolicies:
    def test_safe_picks_first_executable(self):
        tasks = [_task(False), _task(True), _task(True)]
        assert select_task(Policy.SAFE, tasks, None) is tasks[1]

    def test_fairness_picks_earliest_submitted(self):
        late = _task(True)
        early = _task(True)
        # force the ordering: 'early' has a lower sequence number? build in
        # submission order instead:
        t1, t2, t3 = _task(True), _task(False), _task(True)
        assert select_task(Policy.FAIRNESS, [t3, t1, t2], None) is t1

    def test_priority_picks_highest(self):
        lo, hi = _task(True, priority=1), _task(True, priority=9)
        assert select_task(Policy.PRIORITY, [lo, hi], None) is hi

    def test_priority_ties_break_by_submission(self):
        a, b = _task(True, priority=5), _task(True, priority=5)
        assert select_task(Policy.PRIORITY, [b, a], None) is a

    def test_no_executable_returns_none(self):
        tasks = [_task(False), _task(False)]
        for policy in Policy:
            assert select_task(policy, tasks, None) is None


class TestLazyConditionVariable:
    """LightFuture allocates no CV until a thread actually blocks in get."""

    def test_fast_path_never_allocates_cv(self):
        f = LightFuture()
        assert f._cv is None
        f.set_result(1)
        assert f.get() == 1
        assert f._cv is None

    def test_blocking_get_installs_cv_and_wakes(self):
        import time

        f = LightFuture()
        got = []
        t = threading.Thread(target=lambda: got.append(f.get(5)), daemon=True)
        t.start()
        deadline = time.monotonic() + 5
        while f._cv is None and time.monotonic() < deadline:
            time.sleep(0.001)
        assert f._cv is not None     # the getter parked and installed a CV
        f.set_result(42)
        t.join(5)
        assert got == [42]

    def test_concurrent_getters_all_wake(self):
        import time

        f = LightFuture()
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(f.get(5)),
                             daemon=True)
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        time.sleep(0.02)
        f.set_result(7)
        for t in threads:
            t.join(5)
        assert results == [7] * 8


class TestTaskPooling:
    """MonitorTask shells are pooled; acquire re-arms with a fresh future."""

    def test_recycle_then_reacquire_reuses_shell(self):
        from repro.active import tasks as tasks_mod

        tasks_mod._pool.clear()
        first = MonitorTask.acquire(lambda: 1, (), {})
        old_future = first.future
        first.recycle()
        second = MonitorTask.acquire(lambda: 2, (), {}, priority=3,
                                     name="renamed")
        assert second is first                  # same shell, re-armed
        assert second.future is not old_future  # fresh future
        assert second.priority == 3 and second.name == "renamed"
        assert second.execute(FakeMonitor()) == (2, None)
        second.recycle()

    def test_recycle_clears_references(self):
        from repro.active import tasks as tasks_mod

        tasks_mod._pool.clear()
        task = MonitorTask.acquire(lambda: "payload", (), {})
        task.recycle()
        assert task.body is None and task.future is None
        assert task.precondition is None

    def test_pool_is_bounded(self):
        from repro.active import tasks as tasks_mod

        tasks_mod._pool.clear()
        shells = [MonitorTask(lambda: None, (), {})
                  for _ in range(tasks_mod._POOL_CAP + 50)]
        for shell in shells:
            shell.recycle()
        assert len(tasks_mod._pool) <= tasks_mod._POOL_CAP

    def test_execute_returns_result_and_error(self):
        ok = MonitorTask.acquire(lambda: 5, (), {})
        assert ok.execute(FakeMonitor()) == (5, None)

        def boom():
            raise ValueError("nope")

        bad = MonitorTask.acquire(boom, (), {})
        result, error = bad.execute(FakeMonitor())
        assert result is None and isinstance(error, ValueError)
        # execute must not touch the future — completion is batched
        assert not bad.future.done()
