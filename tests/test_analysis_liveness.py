"""Semantics tests for the whole-program liveness pass (W010-W012).

The fixtures in tests/fixtures/lint exercise the happy one-finding paths;
this file pins the *boundaries*: when each rule must stay silent (family
writes, cross-class writers, opaque predicates, poisoning) and when it
must fire across module-shaped corner cases.
"""

from pathlib import Path

from repro.analysis import lint_source, lint_paths
from repro.analysis.findings import Severity

REPO = Path(__file__).resolve().parent.parent


def codes(findings):
    return {f.code for f in findings}


def only(findings, code):
    return [f for f in findings if f.code == code]


# --------------------------------------------------------------------- W010
def test_w010_fires_when_no_writer_exists():
    src = """
from repro.core import Monitor, S

class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.open = False

    def enter(self):
        self.wait_until(S.open == True)  # noqa: E712
"""
    findings = only(lint_source(src), "W010")
    assert len(findings) == 1
    f = findings[0]
    assert f.severity == Severity.ERROR
    assert "open" in f.message and "Gate.enter()" in f.message


def test_w010_silent_when_any_reachable_section_writes():
    src = """
from repro.core import Monitor, S

class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.open = False

    def release(self):
        self.open = True

    def enter(self):
        self.wait_until(S.open == True)  # noqa: E712
"""
    assert "W010" not in codes(lint_source(src))


def test_w010_init_write_does_not_count():
    """__init__ runs before any waiter exists; a write there cannot
    discharge an obligation."""
    src = """
from repro.core import Monitor, S

class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.open = True   # only written at construction

    def enter(self):
        self.wait_until(S.open == True)  # noqa: E712
"""
    assert "W010" in codes(lint_source(src))


def test_w010_subclass_writer_discharges_base_wait():
    """Write sets merge across an inheritance family: the waiting method
    may live in the base while the writer lives in a subclass."""
    src = """
from repro.core import Monitor, S

class Base(Monitor):
    def consume(self):
        self.wait_until(S.ready == True)  # noqa: E712

class Impl(Base):
    def produce(self):
        self.ready = True
"""
    assert "W010" not in codes(lint_source(src))


def test_w010_framework_base_does_not_merge_families():
    """Two unrelated monitors both subclass Monitor; the shared framework
    base must NOT union their write sets."""
    src = """
from repro.core import Monitor, S

class Writer(Monitor):
    def produce(self):
        self.ready = True

class Waiter(Monitor):
    def consume(self):
        self.wait_until(S.ready == True)  # noqa: E712
"""
    assert "W010" in codes(lint_source(src))


def test_w010_cross_class_writer_discharges():
    """A non-monitor coordinator writing through a typed parameter (or a
    held monitor attribute) counts as a reachable write site."""
    src = """
from repro.core import Monitor, S

class Cell(Monitor):
    def consume(self):
        self.wait_until(S.ready == True)  # noqa: E712

def release(cell: Cell):
    cell.ready = True
"""
    assert "W010" not in codes(lint_source(src))


def test_w010_in_place_mutation_counts_as_write():
    src = """
from repro.core import Monitor, S

class Q(Monitor):
    def __init__(self):
        super().__init__()
        self.items = []

    def put(self, x):
        self.items.append(x)
        self.note_writes("items")

    def take(self):
        self.wait_until(S(lambda m: len(m.items) > 0, "nonempty",
                          reads=("items",)))
        return self.items.pop(0)
"""
    findings = lint_source(src)
    assert "W010" not in codes(findings), [f.message for f in findings]


def test_w010_annotated_reads_respected():
    """reads= annotations define the obligation exactly: a write to a
    variable outside the declared read set does not discharge it."""
    src = """
from repro.core import Monitor, S

class Q(Monitor):
    def bump(self):
        self.other = 1

    def take(self):
        self.wait_until(S(lambda m: m.hidden > 0, "h", reads=("hidden",)))
"""
    assert "W010" in codes(lint_source(src))


def test_w010_unannotated_s_is_hint_not_error():
    src = """
from repro.core import Monitor, S

class Q(Monitor):
    def bump(self):
        self.n += 1

    def take(self):
        self.wait_until(S(lambda m: m.n > 0, "positive"))
"""
    findings = only(lint_source(src), "W010")
    assert len(findings) == 1
    assert findings[0].severity == Severity.HINT
    assert "reads=" in findings[0].message


def test_w010_method_call_predicate_never_hard_errors():
    """A predicate that calls a monitor method is opaque: the pass must
    not claim unsatisfiability (no ERROR), only ask for an annotation."""
    src = """
from repro.core import Monitor, S

class Pair(Monitor):
    def _check(self):
        return True

    def a(self):
        self.wait_until(S(lambda m: m._check(), "chk"))
"""
    findings = only(lint_source(src), "W010")
    assert all(f.severity == Severity.HINT for f in findings)
    assert len(findings) == 1  # the reads= annotation hint


# --------------------------------------------------------------------- W011
def test_w011_threshold_needs_up_but_writes_go_down():
    src = """
from repro.core import Monitor, S

class C(Monitor):
    def drain(self):
        self.level -= 1

    def wait_full(self):
        self.wait_until(S.level >= 10)
"""
    findings = only(lint_source(src), "W011")
    assert len(findings) == 1
    assert "level" in findings[0].message
    assert findings[0].severity == Severity.WARNING


def test_w011_silent_when_any_write_moves_toward_threshold():
    src = """
from repro.core import Monitor, S

class C(Monitor):
    def drain(self):
        self.level -= 1

    def fill(self):
        self.level += 1

    def wait_full(self):
        self.wait_until(S.level >= 10)
"""
    assert "W011" not in codes(lint_source(src))


def test_w011_silent_on_non_monotonic_write():
    """A plain rebind has unknown direction; the rule must assume it can
    cross the threshold."""
    src = """
from repro.core import Monitor, S

class C(Monitor):
    def set(self, v):
        self.level = v

    def wait_full(self):
        self.wait_until(S.level >= 10)
"""
    assert "W011" not in codes(lint_source(src))


def test_w011_downward_threshold_with_upward_writes():
    src = """
from repro.core import Monitor, S

class C(Monitor):
    def grow(self):
        self.backlog += 1

    def wait_drained(self):
        self.wait_until(S.backlog <= 0)
"""
    assert "W011" in codes(lint_source(src))


# --------------------------------------------------------------------- W012
def test_w012_sole_guarded_write_flagged():
    src = """
from repro.core import Monitor, S

class L(Monitor):
    def load(self, raw):
        try:
            self.value = int(raw)
            self.done = True
        except ValueError:
            pass

    def consume(self):
        self.wait_until(S.done == True)  # noqa: E712
"""
    findings = only(lint_source(src), "W012")
    assert len(findings) == 1
    assert "done" in findings[0].message


def test_w012_silent_with_second_unguarded_writer():
    src = """
from repro.core import Monitor, S

class L(Monitor):
    def load(self, raw):
        try:
            self.done = True
        except ValueError:
            pass

    def force(self):
        self.done = True

    def consume(self):
        self.wait_until(S.done == True)  # noqa: E712
"""
    assert "W012" not in codes(lint_source(src))


def test_w012_silent_when_handler_reraises():
    src = """
from repro.core import Monitor, S

class L(Monitor):
    def load(self, raw):
        try:
            self.done = True
        except ValueError:
            raise

    def consume(self):
        self.wait_until(S.done == True)  # noqa: E712
"""
    assert "W012" not in codes(lint_source(src))


def test_w012_silent_when_class_enables_poisoning():
    """poison_on_exception converts a swallowed failure into a
    BrokenMonitorError for waiters — the obligation is discharged by
    poisoning, so the leak report would be noise."""
    src = """
from repro.core import Monitor, S

class L(Monitor):
    def __init__(self):
        super().__init__(poison_on_exception=True)
        self.done = False

    def load(self, raw):
        try:
            self.done = bool(int(raw))
        except ValueError:
            pass

    def consume(self):
        self.wait_until(S.done == True)  # noqa: E712
"""
    assert "W012" not in codes(lint_source(src))


# ----------------------------------------------------- whole-tree guarantees
def test_problem_suite_has_no_liveness_findings():
    """Acceptance bar from the issue: every Ch. 2-6 problem implementation
    and example must lint clean under W010-W012."""
    findings = lint_paths([
        REPO / "src" / "repro" / "problems",
        REPO / "examples",
    ])
    live = [f for f in findings if f.code in ("W010", "W011", "W012")]
    assert live == [], "\n".join(f.format() for f in live)


def test_line_suppression_applies_to_liveness_findings():
    src = """
from repro.core import Monitor, S

class Gate(Monitor):
    def enter(self):
        self.wait_until(S.open == True)  # noqa: E712  # monlint: disable=W010
"""
    assert "W010" not in codes(lint_source(src))
