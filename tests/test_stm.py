"""Unit + property tests for the TL2-style STM substrate."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stm import StmStats, TArray, TVar, atomic, current_transaction, retry, transactionally


class TestBasics:
    def test_nontransactional_read(self):
        assert TVar(7).get() == 7

    def test_set_outside_transaction_rejected(self):
        with pytest.raises(RuntimeError):
            TVar(0).set(1)

    def test_atomic_read_write(self):
        x = TVar(1)
        atomic(lambda: x.set(x.get() + 1))
        assert x.get() == 2

    def test_atomic_returns_value(self):
        x = TVar(5)
        assert atomic(lambda: x.get() * 2) == 10

    def test_modify_helper(self):
        x = TVar(3)
        atomic(lambda: x.modify(lambda v: v + 4))
        assert x.get() == 7

    def test_decorator_form(self):
        x = TVar(0)

        @transactionally
        def bump(n):
            x.set(x.get() + n)

        bump(5)
        assert x.get() == 5

    def test_flat_nesting(self):
        x = TVar(0)

        def outer():
            assert current_transaction() is not None
            atomic(lambda: x.set(1))    # runs flat inside the outer txn
            return x.get()

        assert atomic(outer) == 1

    def test_retry_outside_transaction_rejected(self):
        with pytest.raises(RuntimeError):
            retry()

    def test_tarray(self):
        arr = TArray(4, fill=0)
        assert len(arr) == 4
        atomic(lambda: arr.__setitem__(2, 9))
        assert arr[2] == 9
        assert len(list(arr.vars())) == 4


class TestConcurrency:
    def test_counter_is_atomic(self):
        x = TVar(0)

        def inc():
            for _ in range(300):
                atomic(lambda: x.set(x.get() + 1))

        threads = [threading.Thread(target=inc, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert x.get() == 1200

    def test_conflicts_are_counted(self):
        stats = StmStats()
        x = TVar(0)
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for _ in range(200):
                atomic(lambda: x.set(x.get() + 1), txn_stats=stats)

        threads = [threading.Thread(target=hammer, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert stats.commits == 800
        assert x.get() == 800

    def test_retry_wakes_on_update(self):
        flag, seen = TVar(False), []

        def waiter():
            def body():
                if not flag.get():
                    retry()
                return True

            seen.append(atomic(body))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        import time

        time.sleep(0.05)
        atomic(lambda: flag.set(True))
        t.join(10)
        assert seen == [True]

    def test_isolation_no_torn_reads(self):
        """Invariant a+b == 100 must hold in every transaction snapshot."""
        a, b = TVar(50), TVar(50)
        violations = []
        stop = threading.Event()

        def transfer():
            while not stop.is_set():
                def txn():
                    amount = 1
                    a.set(a.get() - amount)
                    b.set(b.get() + amount)
                atomic(txn)

        def check():
            while not stop.is_set():
                def txn():
                    return a.get() + b.get()
                if atomic(txn) != 100:
                    violations.append(1)

        workers = [threading.Thread(target=transfer, daemon=True) for _ in range(2)]
        checker = threading.Thread(target=check, daemon=True)
        for t in workers + [checker]:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in workers + [checker]:
            t.join(10)
        assert not violations


@settings(max_examples=20, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 5)),
        min_size=1,
        max_size=30,
    )
)
def test_random_transfers_conserve_sum(transfers):
    """Serializability property: concurrent random transfers preserve the
    total balance."""
    accounts = [TVar(100) for _ in range(4)]
    chunk = (len(transfers) + 1) // 2
    shards = [transfers[:chunk], transfers[chunk:]]

    def worker(shard):
        for src, dst, amount in shard:
            def txn():
                accounts[src].set(accounts[src].get() - amount)
                accounts[dst].set(accounts[dst].get() + amount)
            atomic(txn)

    threads = [threading.Thread(target=worker, args=(s,), daemon=True) for s in shards]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert sum(v.get() for v in accounts) == 400


class TestBlockingRetry:
    """The transaction-friendly-condvar extension ([WLS14]-style)."""

    def test_blocking_retry_wakes_on_commit(self):
        from repro.stm.tl2 import atomic as _atomic

        flag, seen = TVar(False), []

        def waiter():
            def body():
                if not flag.get():
                    retry()
                return "woke"

            seen.append(_atomic(body, blocking_retry=True))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        import time

        time.sleep(0.05)
        assert not seen
        atomic(lambda: flag.set(True))
        t.join(10)
        assert seen == ["woke"]

    def test_unrelated_commit_does_not_wake(self):
        from repro.stm.tl2 import _retry_waiters, atomic as _atomic

        flag, other, seen = TVar(False), TVar(0), []

        def waiter():
            def body():
                if not flag.get():
                    retry()
                return True

            seen.append(_atomic(body, blocking_retry=True))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        import time

        time.sleep(0.05)
        atomic(lambda: other.set(1))       # unrelated variable
        time.sleep(0.05)
        assert not seen                    # still parked
        atomic(lambda: flag.set(True))
        t.join(10)
        assert seen == [True]
        assert not _retry_waiters          # registry fully cleaned up

    def test_many_blocking_waiters(self):
        from repro.stm.tl2 import atomic as _atomic

        gate = TVar(0)
        done = []
        lock = threading.Lock()

        def waiter(k):
            def body():
                if gate.get() < k:
                    retry()
                return k

            result = _atomic(body, blocking_retry=True)
            with lock:
                done.append(result)

        threads = [threading.Thread(target=waiter, args=(k,), daemon=True) for k in range(1, 6)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.05)
        for v in range(1, 6):
            atomic(lambda v=v: gate.set(v))
            time.sleep(0.01)
        for t in threads:
            t.join(15)
        assert sorted(done) == [1, 2, 3, 4, 5]
