"""Integration tests for OR / AND / selectone / selectall (sync + async)."""

import threading
import time

import pytest

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.compose import (
    SKIPPED,
    and_,
    async_and,
    async_or,
    async_select_all,
    async_select_one,
    bind,
    or_,
    select_all,
    select_one,
)
from repro.core import Monitor
from repro.runtime.errors import CompositionError


class Slot(ActiveMonitor):
    """One-item bounded buffer (ActiveMonitor so async ops work too)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.item = None

    @synchronous(pre=lambda self, item: self.item is None)
    def put(self, item):
        self.item = item

    @synchronous(pre=lambda self: self.item is not None)
    def take(self):
        item, self.item = self.item, None
        return item


def _slots(n, **kw):
    return [Slot(**kw) for _ in range(n)]


class TestBind:
    def test_bind_guarded_method(self):
        s = Slot(mode="sync")
        call = bind(s.put, 42)
        assert call.monitor is s
        ok, _ = call.try_execute()
        assert ok and s.item == 42

    def test_guard_respected(self):
        s = Slot(mode="sync")
        s.put(1)
        ok, _ = bind(s.put, 2).try_execute()
        assert not ok               # slot occupied: guard false

    def test_plain_monitor_methods_bindable(self):
        class Plain(Monitor):
            def __init__(self):
                super().__init__()
                self.x = 0

            def poke(self):
                self.x += 1
                return self.x

        p = Plain()
        ok, result = bind(p.poke).try_execute()
        assert ok and result == 1

    def test_unbound_callable_rejected(self):
        with pytest.raises(CompositionError):
            bind(lambda: None)


class TestSynchronousOr:
    def test_picks_available_operand(self):
        a, b = _slots(2, mode="sync")
        b.put("hello")
        idx, value = or_(bind(a.take), bind(b.take))
        assert (idx, value) == (1, "hello")

    def test_exactly_one_executes(self):
        a, b = _slots(2, mode="sync")
        a.put("x")
        b.put("y")
        idx, value = or_(bind(a.take), bind(b.take))
        remaining = [s.item for s in (a, b)]
        assert remaining.count(None) == 1        # only one slot drained

    def test_blocks_until_some_guard_true(self):
        a, b = _slots(2, mode="sync")
        result = []

        def selector():
            result.append(or_(bind(a.take), bind(b.take)))

        t = threading.Thread(target=selector, daemon=True)
        t.start()
        time.sleep(0.05)
        assert t.is_alive()                       # both guards false: blocked
        b.put("late")
        t.join(10)
        assert result == [(1, "late")]

    def test_select_one_over_collection(self):
        slots = _slots(5, mode="sync")
        slots[3].put("here")
        idx, value = select_one([bind(s.take) for s in slots])
        assert (idx, value) == (3, "here")

    def test_empty_operands_rejected(self):
        with pytest.raises(CompositionError):
            select_one([])

    @pytest.mark.parametrize("strategy", ["AS", "AV", "CC"])
    def test_strategies(self, strategy):
        a, b = _slots(2, mode="sync")
        t = threading.Thread(target=lambda: (time.sleep(0.05), a.put(1)), daemon=True)
        t.start()
        idx, value = or_(bind(a.take), bind(b.take), strategy=strategy)
        assert (idx, value) == (0, 1)
        t.join(5)


class TestSynchronousAnd:
    def test_executes_all_operands(self):
        a, b, c = _slots(3, mode="sync")
        results = and_(bind(a.put, 1), bind(b.put, 2), bind(c.put, 3))
        assert [a.item, b.item, c.item] == [1, 2, 3]
        assert results == [None, None, None]

    def test_results_positional(self):
        a, b = _slots(2, mode="sync")
        a.put("A")
        b.put("B")
        results = and_(bind(a.take), bind(b.take))
        assert results == ["A", "B"]

    def test_waits_for_stragglers(self):
        a, b = _slots(2, mode="sync")
        a.put("ready")
        done = []

        def runner():
            done.append(and_(bind(a.take), bind(b.take)))

        t = threading.Thread(target=runner, daemon=True)
        t.start()
        time.sleep(0.05)
        assert t.is_alive()
        b.put("finally")
        t.join(10)
        assert done == [["ready", "finally"]]

    def test_select_all_over_collection(self):
        slots = _slots(4, mode="sync")
        select_all([bind(s.put, i) for i, s in enumerate(slots)])
        assert [s.item for s in slots] == [0, 1, 2, 3]


class AsyncSlot(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.item = None

    @asynchronous(pre=lambda self, item: self.item is None)
    def put(self, item):
        self.item = item

    @synchronous(pre=lambda self: self.item is not None)
    def take(self):
        item, self.item = self.item, None
        return item


class TestAsynchronousOps:
    def test_async_and_executes_all(self):
        a, b = AsyncSlot(), AsyncSlot()
        try:
            async_and(bind(a.put, 1), bind(b.put, 2))
            assert (a.item, b.item) == (1, 2)
        finally:
            a.shutdown()
            b.shutdown()

    def test_async_or_exactly_one_wins(self):
        a, b = AsyncSlot(), AsyncSlot()
        try:
            idx, _ = async_or(bind(a.put, "x"), bind(b.put, "x"))
            items = [a.item, b.item]
            assert items.count("x") == 1
        finally:
            a.shutdown()
            b.shutdown()

    def test_async_or_waits_for_guard(self):
        a, b = AsyncSlot(), AsyncSlot()
        try:
            a.put("block")      # occupy a; guard for further puts false
            a.flush()
            t = threading.Thread(
                target=lambda: (time.sleep(0.05), b.take() if b.item else None)
            , daemon=True)
            # b empty: put guard true immediately → b should win
            idx, _ = async_or(bind(a.put, "n"), bind(b.put, "n"))
            assert idx == 1
        finally:
            a.shutdown()
            b.shutdown()

    def test_async_requires_distinct_monitors(self):
        a = AsyncSlot()
        try:
            with pytest.raises(CompositionError):
                async_and(bind(a.put, 1), bind(a.put, 2))
        finally:
            a.shutdown()

    def test_async_requires_live_server(self):
        a, b = AsyncSlot(mode="sync"), AsyncSlot(mode="sync")
        with pytest.raises(CompositionError):
            async_and(bind(a.put, 1), bind(b.put, 2))

    def test_skipped_sentinel_identity(self):
        assert SKIPPED is SKIPPED
