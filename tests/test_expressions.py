"""Unit tests for the arithmetic expression DSL and linear normalization."""

import pytest

from repro.core.expressions import BinOp, Const, S, SharedExpr, SharedVar, linear_key
from repro.runtime.errors import PredicateError


class Obj:
    def __init__(self, **kw):
        self.__dict__.update(kw)


class TestSharedVar:
    def test_evaluate_reads_attribute(self):
        assert SharedVar("x").evaluate(Obj(x=42)) == 42

    def test_namespace_sugar(self):
        var = S.count
        assert isinstance(var, SharedVar)
        assert var.name == "count"

    def test_namespace_rejects_private(self):
        with pytest.raises(AttributeError):
            S._private

    def test_key_is_stable(self):
        assert S.count.key() == S.count.key() == ("var", "count")

    def test_linear_form(self):
        terms, const = S.x.linear()
        assert terms == {("var", "x"): 1.0}
        assert const == 0.0


class TestSharedExpr:
    def test_evaluate_calls_function(self):
        expr = SharedExpr(lambda m: len(m.items), name="len_items")
        assert expr.evaluate(Obj(items=[1, 2, 3])) == 3

    def test_named_exprs_share_keys(self):
        a = SharedExpr(lambda m: m.x, name="same")
        b = SharedExpr(lambda m: m.x, name="same")
        assert a.key() == b.key()

    def test_callable_namespace(self):
        expr = S(lambda m: m.x * 2, "double_x")
        assert expr.evaluate(Obj(x=5)) == 10


class TestArithmetic:
    def test_addition(self):
        assert (S.x + 3).evaluate(Obj(x=4)) == 7

    def test_right_addition(self):
        assert (3 + S.x).evaluate(Obj(x=4)) == 7

    def test_subtraction(self):
        assert (S.x - S.y).evaluate(Obj(x=9, y=4)) == 5

    def test_right_subtraction(self):
        assert (10 - S.x).evaluate(Obj(x=4)) == 6

    def test_multiplication(self):
        assert (S.x * 3).evaluate(Obj(x=4)) == 12

    def test_modulo(self):
        assert (S.x % 3).evaluate(Obj(x=10)) == 1

    def test_negation(self):
        assert (-S.x).evaluate(Obj(x=4)) == -4

    def test_nested_expression(self):
        expr = (S.a + S.b) * 2 - 1
        assert expr.evaluate(Obj(a=1, b=2)) == 5

    def test_unsupported_operator_rejected(self):
        with pytest.raises(PredicateError):
            BinOp("/", Const(1), Const(2))


class TestLinearNormalization:
    def test_sum_is_linear(self):
        terms, const = (S.x + S.y + 5).linear()
        assert terms == {("var", "x"): 1.0, ("var", "y"): 1.0}
        assert const == 5.0

    def test_difference_cancels(self):
        terms, const = (S.x - S.x).linear()
        assert terms == {}

    def test_scalar_multiple(self):
        terms, const = (3 * S.x + 1).linear()
        assert terms == {("var", "x"): 3.0}
        assert const == 1.0

    def test_product_of_vars_not_linear(self):
        assert (S.x * S.y).linear() is None

    def test_modulo_not_linear(self):
        assert (S.x % 2).linear() is None

    def test_linear_key_scale_invariant(self):
        k1 = linear_key((S.x - S.y).linear()[0])
        k2 = linear_key((2 * S.x - 2 * S.y).linear()[0])
        assert k1 == k2

    def test_linear_key_empty(self):
        assert linear_key({}) == ()


class TestConst:
    def test_const_evaluates_to_value(self):
        assert Const("abc").evaluate(None) == "abc"

    def test_numeric_const_linear(self):
        assert Const(5).linear() == ({}, 5.0)

    def test_object_const_not_linear(self):
        assert Const("abc").linear() is None

    def test_bool_const_not_linear(self):
        # booleans must not silently join arithmetic normalization
        assert Const(True).linear() is None
