"""Cross-validation against independent oracles (networkx, numpy, traces)."""

import threading

import pytest

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.problems.graphs import rmat, road_network, sequential_dijkstra
from repro.problems.psssp import parallel_sssp

networkx = pytest.importorskip("networkx")


class TestDijkstraVsNetworkx:
    @pytest.mark.parametrize("builder,seed", [(road_network, 1), (road_network, 2)])
    def test_grid_graphs(self, builder, seed):
        graph = builder(7, seed=seed)
        nxg = networkx.Graph()
        for u, adj in enumerate(graph):
            for v, w in adj:
                # parallel edges: keep the minimum weight, as Dijkstra does
                if nxg.has_edge(u, v):
                    nxg[u][v]["weight"] = min(nxg[u][v]["weight"], w)
                else:
                    nxg.add_edge(u, v, weight=w)
        want = networkx.single_source_dijkstra_path_length(nxg, 0)
        ours = sequential_dijkstra(graph, 0)
        for node, dist in want.items():
            assert abs(ours[node] - dist) < 1e-9

    def test_parallel_variants_match_networkx(self):
        graph = rmat(40, 120, seed=6)
        nxg = networkx.Graph()
        for u, adj in enumerate(graph):
            for v, w in adj:
                if nxg.has_edge(u, v):
                    nxg[u][v]["weight"] = min(nxg[u][v]["weight"], w)
                else:
                    nxg.add_edge(u, v, weight=w)
        want = networkx.single_source_dijkstra_path_length(nxg, 0)
        for variant in ("lk", "am"):
            got, _ = parallel_sssp(graph, 0, variant, 3)
            for node, dist in want.items():
                assert abs(got[node] - dist) < 1e-9, (variant, node)


class TraceCounter(ActiveMonitor):
    """Counter recording a linearization witness per operation."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.value = 0
        self.trace: list[int] = []

    @asynchronous()
    def increment(self):
        self.value += 1
        self.trace.append(self.value)

    @synchronous()
    def read(self):
        return self.value


class TestLinearizability:
    """Rule 1: delegated executions are equivalent to lock-based ones —
    the observed trace must be a permutation-free sequence 1..N."""

    def test_trace_is_sequential(self):
        counter = TraceCounter()
        try:
            n_workers, per = 4, 100

            def worker():
                for _ in range(per):
                    counter.increment()

            threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_workers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            counter.flush()
            assert counter.trace == list(range(1, n_workers * per + 1))
            assert counter.read() == n_workers * per
        finally:
            counter.shutdown()

    def test_sync_fallback_trace_is_sequential(self):
        counter = TraceCounter(mode="sync")
        n_workers, per = 4, 100

        def worker():
            for _ in range(per):
                counter.increment()

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(n_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert counter.trace == list(range(1, n_workers * per + 1))
