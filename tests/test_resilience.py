"""Tests for repro.resilience: deadlines, cancellation, monitor poisoning,
server supervision, the stall watchdog, and the chaos layer's own mechanics.

The schedule-fuzz and liveness-under-fault tests live in
``test_resilience_chaos.py``; this file covers the per-feature semantics.
"""

import threading
import time
import types

import pytest

from repro.active import ActiveMonitor, asynchronous
from repro.active.activemonitor import _outstanding
from repro.core import Monitor, S, synchronized
from repro.multi import complex_pred, multisynch
from repro.preprocess import monitor_compile
from repro.resilience import (
    CancelToken,
    ServerSupervisor,
    StallWatchdog,
    ThreadKilledFault,
    chaos,
    supervise,
)
from repro.runtime import get_config
from repro.runtime.errors import (
    BrokenMonitorError,
    TaskError,
    WaitCancelledError,
    WaitTimeoutError,
)


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Every test starts and ends with chaos disarmed and poisoning off."""
    cfg = get_config()
    saved = cfg.poison_on_exception
    chaos.reset()
    yield
    chaos.reset()
    cfg.poison_on_exception = saved


def _spawn(fn, *args):
    t = threading.Thread(target=fn, args=args, daemon=True)
    t.start()
    return t


class Gate(Monitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.open = False
        self.items = []

    def set_open(self):
        self.open = True

    def put(self, v):
        self.items.append(v)

    def wait_open(self, **kw):
        self.wait_until(S.open == True, **kw)  # noqa: E712

    def take(self, **kw):
        self.wait_until(S(lambda m: len(m.items), "n") > 0, **kw)
        return self.items.pop(0)

    def crash(self):
        raise RuntimeError("boom")


# =========================================================== timeouts/cancel
class TestCoreTimeouts:
    def test_timeout_raises_and_is_a_timeout_error(self):
        g = Gate()
        t0 = time.monotonic()
        with pytest.raises(WaitTimeoutError) as info:
            g.wait_open(timeout=0.15)
        elapsed = time.monotonic() - t0
        assert 0.1 <= elapsed < 2.0
        assert isinstance(info.value, TimeoutError)
        assert g.metrics.wait_timeouts == 1

    def test_timeout_in_baseline_signaling_mode(self):
        g = Gate(signaling="baseline")
        with pytest.raises(WaitTimeoutError):
            g.wait_open(timeout=0.1)

    def test_deadline_and_timeout_combine_to_the_earlier_bound(self):
        g = Gate()
        t0 = time.monotonic()
        with pytest.raises(WaitTimeoutError):
            g.wait_open(timeout=5.0, deadline=time.monotonic() + 0.1)
        assert time.monotonic() - t0 < 2.0

    def test_satisfied_wait_beats_its_deadline(self):
        g = Gate()
        done = []

        def waiter():
            g.wait_open(timeout=5.0)
            done.append(True)

        t = _spawn(waiter)
        time.sleep(0.05)
        g.set_open()
        t.join(2.0)
        assert done == [True]

    def test_cancel_pre_park_and_mid_wait(self):
        g = Gate()
        pre = CancelToken()
        pre.cancel("already over")
        with pytest.raises(WaitCancelledError) as info:
            g.wait_open(cancel=pre)
        assert info.value.reason == "already over"

        tok = CancelToken()
        errs = []

        def waiter():
            try:
                g.wait_open(cancel=tok)
            except WaitCancelledError as exc:
                errs.append(exc)

        t = _spawn(waiter)
        time.sleep(0.05)
        tok.cancel("shutdown")
        t.join(2.0)
        assert not t.is_alive()
        assert [e.reason for e in errs] == ["shutdown"]
        assert g.metrics.wait_cancels >= 1

    def test_timed_out_waiter_re_relays_the_baton(self, monkeypatch):
        """Relay invariance across a timeout (Prop. 2): an abandoning
        waiter may have absorbed the only signal, so the exit path must
        run the relay again after deregistering."""
        g = Gate()
        calls = []
        orig = g._cond_mgr.relay_signal

        def counting_relay():
            calls.append(threading.get_ident())
            return orig()

        monkeypatch.setattr(g._cond_mgr, "relay_signal", counting_relay)
        with pytest.raises(WaitTimeoutError):
            g.take(timeout=0.1)
        # once on entering the wait loop, once in the abandonment path
        assert len(calls) >= 2

    def test_straddling_timeout_never_loses_the_item(self):
        """Whether the put lands before or after the short waiter's
        timeout, exactly one waiter consumes the item and nobody hangs."""
        for round_no in range(8):
            g = Gate()
            consumed = []

            def taker(tag, timeout):
                try:
                    consumed.append((tag, g.take(timeout=timeout)))
                except WaitTimeoutError:
                    pass

            t1 = _spawn(taker, "impatient", 0.08)
            t2 = _spawn(taker, "patient", 2.0)
            time.sleep(0.04 + round_no * 0.012)   # straddle t1's timeout
            g.put("item")
            t1.join(5.0)
            t2.join(5.0)
            assert not t1.is_alive() and not t2.is_alive()
            assert [v for _, v in consumed] == ["item"]


class TestFutureTimeouts:
    def test_future_get_timeout_and_cancel(self):
        class Slow(ActiveMonitor):
            def __init__(self):
                super().__init__()
                self.release = threading.Event()

            @asynchronous()
            def task(self):
                self.release.wait(5.0)
                return "done"

        m = Slow()
        m.release.set()   # the body itself never blocks
        try:
            # hold the monitor lock from a foreign thread: combining fails
            # and the server loop cannot execute, so the future is pending
            with _HoldLock(m):
                fut = m.task()
                with pytest.raises(WaitTimeoutError):
                    fut.get(timeout=0.1)
                tok = CancelToken()
                canceller = threading.Timer(0.1, tok.cancel, args=("bail",))
                canceller.start()
                with pytest.raises(WaitCancelledError):
                    fut.get(cancel=tok)
                canceller.join()
            assert fut.get(timeout=5.0) == "done"
        finally:
            m.release.set()
            m.shutdown()


class TestMultisynchTimeouts:
    def _accounts(self):
        class Account(Monitor):
            def __init__(self):
                super().__init__()
                self.balance = 0

            def deposit(self, n):
                self.balance += n

        return Account(), Account()

    def test_global_wait_timeout_and_cancel(self):
        a, b = self._accounts()
        with pytest.raises(WaitTimeoutError):
            with multisynch(a, b) as ms:
                ms.wait_until(complex_pred(
                    [a, b], lambda: a.balance + b.balance >= 10),
                    timeout=0.15)
        tok = CancelToken()
        tok.cancel()
        with pytest.raises(WaitCancelledError):
            with multisynch(a, b) as ms:
                ms.wait_until(complex_pred(
                    [a, b], lambda: a.balance + b.balance >= 10),
                    cancel=tok)

    def test_global_wait_satisfied_under_deadline(self):
        a, b = self._accounts()
        done = []

        def waiter():
            with multisynch(a, b) as ms:
                ms.wait_until(complex_pred(
                    [a, b], lambda: a.balance + b.balance >= 10),
                    timeout=5.0)
                done.append(a.balance + b.balance)

        t = _spawn(waiter)
        time.sleep(0.05)
        a.deposit(4)
        b.deposit(6)
        t.join(3.0)
        assert done == [10]


# ================================================================ poisoning
class TestPoisoning:
    def test_escaping_exception_poisons_and_wakes_waiters(self):
        get_config().poison_on_exception = True
        g = Gate()
        errs = []

        def waiter():
            try:
                g.wait_open()
            except BrokenMonitorError as exc:
                errs.append(exc)

        t = _spawn(waiter)
        time.sleep(0.05)
        with pytest.raises(RuntimeError):
            g.crash()
        t.join(2.0)
        assert not t.is_alive()
        assert len(errs) == 1 and isinstance(errs[0].cause, RuntimeError)
        assert g.broken and isinstance(g.broken_cause, RuntimeError)
        # entry now fails fast
        with pytest.raises(BrokenMonitorError):
            g.put(1)
        with pytest.raises(BrokenMonitorError):
            with synchronized(g):
                pass
        # reset restores service
        cause = g.reset()
        assert isinstance(cause, RuntimeError)
        g.put(1)
        assert g.take(timeout=1.0) == 1

    def test_timeout_and_cancel_do_not_poison(self):
        get_config().poison_on_exception = True
        g = Gate()
        with pytest.raises(WaitTimeoutError):
            g.wait_open(timeout=0.05)
        tok = CancelToken()
        tok.cancel()
        with pytest.raises(WaitCancelledError):
            g.wait_open(cancel=tok)
        assert not g.broken

    def test_without_the_flag_exceptions_do_not_poison(self):
        g = Gate()
        with pytest.raises(RuntimeError):
            g.crash()
        assert not g.broken

    def test_mark_broken_is_explicit_and_idempotent(self):
        g = Gate()
        assert g.mark_broken(ValueError("manual")) is True
        assert g.mark_broken(ValueError("again")) is False
        assert isinstance(g.broken_cause, ValueError)
        assert str(g.broken_cause) == "manual"

    def test_task_body_failure_poisons_and_fails_queue_fast(self):
        get_config().poison_on_exception = True

        class Worker(ActiveMonitor):
            @asynchronous()
            def boom(self):
                raise ValueError("task body died")

            @asynchronous()
            def ok(self):
                return 1

        m = Worker()
        try:
            with pytest.raises(TaskError) as info:
                m.boom().get(timeout=2.0)
            assert isinstance(info.value.cause, ValueError)
            deadline = time.monotonic() + 2.0
            while not m.broken and time.monotonic() < deadline:
                time.sleep(0.01)
            assert m.broken
            with pytest.raises(BrokenMonitorError):
                m.ok()
            assert isinstance(m.reset(), ValueError)
            assert m.ok().get(timeout=2.0) == 1
        finally:
            m.reset()
            m.shutdown()

    def test_poisoned_monitor_wakes_global_waiters(self):
        class Cell(Monitor):
            def __init__(self):
                super().__init__()
                self.v = 0

        a, b = Cell(), Cell()
        errs = []

        def waiter():
            try:
                with multisynch(a, b) as ms:
                    ms.wait_until(complex_pred([a, b], lambda: a.v + b.v > 0))
            except BrokenMonitorError as exc:
                errs.append(exc)

        t = _spawn(waiter)
        time.sleep(0.05)
        a.mark_broken(RuntimeError("dead"))
        t.join(2.0)
        assert not t.is_alive()
        assert len(errs) == 1


# ============================================================== supervision
class _HoldLock:
    """Occupy a monitor's lock from a foreign thread so combining fails
    and submissions are forced through the server loop."""

    def __init__(self, monitor):
        self.monitor = monitor
        self._acquired = threading.Event()
        self._release = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        with self.monitor._lock:
            self._acquired.set()
            self._release.wait(10.0)

    def __enter__(self):
        self._thread.start()
        assert self._acquired.wait(5.0)
        return self

    def __exit__(self, *exc):
        self._release.set()
        self._thread.join(5.0)


class Tick(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.count = 0

    @asynchronous()
    def tick(self):
        self.count += 1
        return self.count


class TestSupervision:
    def test_killed_server_fails_fast_and_restarts(self):
        m = Tick()
        try:
            sup = ServerSupervisor(m.server, backoff_base=0.01)
            chaos.configure(seed=7, kill={"server_loop": 1})
            chaos.enable()
            with _HoldLock(m):
                fut = m.tick()
                time.sleep(0.1)   # server wakes and dies at the kill site
            chaos.disable()
            with pytest.raises(TaskError):
                fut.get(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while m.metrics.server_restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.restarts == 1
            assert [type(e).__name__ for e in sup.deaths] == [
                "ThreadKilledFault"]
            assert m.metrics.server_restarts == 1
            assert m.server.alive
            assert m.metrics.futures_failed_fast >= 1
            # the restarted server serves tasks again
            assert m.tick().get(timeout=5.0) >= 1
        finally:
            chaos.reset()
            m.shutdown()

    def test_supervisor_gives_up_after_budget(self):
        m = Tick()
        try:
            sup = ServerSupervisor(m.server, max_restarts=0,
                                   backoff_base=0.001)
            chaos.configure(seed=7, kill={"server_loop": 1})
            chaos.enable()
            with _HoldLock(m):
                fut = m.tick()
                time.sleep(0.1)   # server wakes and dies at the kill site
            chaos.disable()
            with pytest.raises(TaskError):
                fut.get(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while not sup.gave_up and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.gave_up and sup.restarts == 0
            # dead server: calls fall back to synchronous execution
            assert m.tick().get(timeout=5.0) >= 1
        finally:
            chaos.reset()
            m.shutdown()

    def test_supervise_helper_accepts_monitor_and_server(self):
        m = Tick()
        try:
            sup = supervise(m)
            assert isinstance(sup, ServerSupervisor)
            assert m.server.supervisor is sup
            sup2 = supervise(m.server)
            assert m.server.supervisor is sup2
        finally:
            m.shutdown()
        with pytest.raises(ValueError):
            supervise(object())

    def test_check_detects_a_corpse(self):
        m = Tick()
        try:
            sup = ServerSupervisor(m.server, backoff_base=0.001)
            server = m.server
            # simulate a silently-dead thread: mark alive with no live
            # thread behind it
            server._thread = threading.Thread(target=lambda: None)
            server._thread.start()
            server._thread.join()
            assert sup.check() is False   # corpse detected, death fielded
            deadline = time.monotonic() + 5.0
            while sup.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sup.restarts == 1
            assert sup.check() is True    # healthy after the restart
        finally:
            m.shutdown()


# ====================================================== stop()/flush() fixes
class Wedge(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.release = threading.Event()

    @asynchronous()
    def block(self):
        self.release.wait(20.0)
        return "unwedged"


class TestStopAndFlushRegressions:
    def test_stop_raises_when_the_server_thread_is_wedged(self):
        m = Wedge()
        server = m.server
        with _HoldLock(m):
            fut = m.block()   # forced through the server loop
            time.sleep(0.1)
        # the server thread is now inside block() waiting on the event
        with pytest.raises(TaskError, match="failed to stop"):
            server.stop(timeout=0.2)
        assert not server.alive
        m.release.set()
        assert fut.get(timeout=5.0) == "unwedged"
        server._thread.join(5.0)
        m._server = None   # already stopped; skip shutdown's second stop

    def test_flush_timeout_keeps_rule2_bookkeeping(self):
        m = Wedge()
        try:
            with _HoldLock(m):
                m.block()
                time.sleep(0.1)
            with pytest.raises(WaitTimeoutError):
                m.flush(timeout=0.2)
            # the sentinel is recorded as this worker's outstanding task:
            # Rule 2 still orders the next submission behind it
            sentinel = _outstanding().get(m.monitor_id)
            assert sentinel is not None and not sentinel.done()
            m.release.set()
            sentinel.get(timeout=5.0)
            # flush after completion returns promptly (success path also
            # updates the outstanding slot)
            m.flush(timeout=5.0)
            assert _outstanding().get(m.monitor_id).done()
        finally:
            m.release.set()
            m.shutdown()


# ================================================================= watchdog
class TestWatchdog:
    def test_reports_a_stalled_waiter_and_recovers(self):
        g = Gate()
        reports = []
        t = _spawn(lambda: g.wait_open(timeout=10.0))
        time.sleep(0.05)
        dog = StallWatchdog([g], quiet_period=0.2, poll_interval=0.05,
                            on_stall=reports.append)
        with dog:
            deadline = time.monotonic() + 5.0
            while not reports and time.monotonic() < deadline:
                time.sleep(0.02)
            assert reports, "watchdog never reported the parked waiter"
            report = reports[0]
            text = report.describe()
            assert "Gate" in text
            assert report.stalls[0].waiters
            # progress clears the stall; no flood of duplicate reports
            n = len(reports)
            g.set_open()
            t.join(2.0)
            time.sleep(0.3)
            assert len(reports) <= n + 1
        assert not t.is_alive()

    def test_quiet_monitor_is_not_reported(self):
        g = Gate()
        reports = []
        dog = StallWatchdog([g], quiet_period=0.1, poll_interval=0.03,
                            on_stall=reports.append)
        with dog:
            time.sleep(0.3)
        assert reports == []

    def test_poll_once_snapshot(self):
        g = Gate()
        t = _spawn(lambda: g.wait_open(timeout=10.0))
        time.sleep(0.05)
        dog = StallWatchdog([g], quiet_period=0.1)
        assert dog.poll_once() is None          # baseline observation
        time.sleep(0.2)
        report = dog.poll_once()
        assert report is not None and len(report.stalls) == 1
        g.set_open()
        t.join(2.0)


# ==================================================================== chaos
class TestChaosLayer:
    def test_disabled_by_default_and_reset(self):
        assert chaos.enabled is False
        chaos.configure(seed=1, delay_prob=1.0)
        chaos.enable()
        assert chaos.enabled
        chaos.reset()
        assert not chaos.enabled

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            chaos.configure(sites=["no_such_site"])
        with pytest.raises(ValueError):
            chaos.configure(kill={"no_such_site": 1})

    def test_seeded_injection_is_deterministic(self):
        def run():
            chaos.reset()
            chaos.configure(seed=42, delay_prob=0.5,
                            delay_range=(0.0, 0.0), switch_prob=0.3)
            chaos.enable()
            for _ in range(200):
                chaos.fire("relay")
            return chaos.stats()["injected"]

        assert run() == run()

    def test_kill_is_one_shot_at_the_configured_count(self):
        chaos.configure(seed=1, kill={"signal": 3})
        chaos.enable()
        chaos.fire("signal")
        chaos.fire("signal")
        with pytest.raises(ThreadKilledFault) as info:
            chaos.fire("signal")
        assert info.value.site == "signal"
        chaos.fire("signal")   # the kill does not re-arm

    def test_active_context_manager_disarms(self):
        with chaos.active(seed=3, delay_prob=1.0, delay_range=(0.0, 0.0)):
            assert chaos.enabled
            chaos.fire("queue_put")
        assert not chaos.enabled
        assert chaos.stats()["fired"]["queue_put"] == 1


# ==================================================== AOT direct-signal paths
@monitor_compile
class DirectShelf(Monitor):
    """Compiled monitor whose public writers carry AOT signal plans, so
    section exits signal waiters directly instead of running the relay."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.stock = 0

    def refill(self, n):
        self.stock += n

    def take(self, **kw):
        self.wait_until(S.stock > 0, **kw)
        self.stock -= 1
        return self.stock

    def crash(self):
        raise RuntimeError("shelf burst")


class TestDirectSignalResilience:
    """Timeouts, cancellation, abandonment re-relay and poisoning must all
    behave identically when the waking side is an AOT direct-signal exit
    rather than the runtime relay search."""

    def test_direct_path_is_active(self):
        shelf = DirectShelf()
        assert getattr(DirectShelf, "_repro_aot_plans", None)
        done = []
        t = _spawn(lambda: done.append(shelf.take(timeout=5.0)))
        time.sleep(0.05)
        before = shelf.metrics.relay_skipped_aot
        shelf.refill(1)
        t.join(2.0)
        assert done == [0]
        assert shelf.metrics.relay_skipped_aot > before

    def test_timeout_deadline_cancel_on_direct_path(self):
        shelf = DirectShelf()
        with pytest.raises(WaitTimeoutError):
            shelf.take(timeout=0.1)
        with pytest.raises(WaitTimeoutError):
            shelf.take(timeout=5.0, deadline=time.monotonic() + 0.1)
        tok = CancelToken()
        errs = []

        def waiter():
            try:
                shelf.take(cancel=tok)
            except WaitCancelledError as exc:
                errs.append(exc)

        t = _spawn(waiter)
        time.sleep(0.05)
        tok.cancel("shutdown")
        t.join(2.0)
        assert not t.is_alive()
        assert [e.reason for e in errs] == ["shutdown"]
        assert not shelf.broken

    def test_straddling_timeout_on_direct_path_never_loses_stock(self):
        """Same abandonment-race guarantee as the relay version: whether
        the refill lands before or after the short waiter's timeout,
        exactly one waiter consumes the unit and nobody hangs."""
        for round_no in range(8):
            shelf = DirectShelf()
            consumed = []

            def taker(timeout):
                try:
                    consumed.append(shelf.take(timeout=timeout))
                except WaitTimeoutError:
                    pass

            t1 = _spawn(taker, 0.08)
            t2 = _spawn(taker, 2.0)
            time.sleep(0.04 + round_no * 0.012)   # straddle t1's timeout
            shelf.refill(1)
            t1.join(5.0)
            t2.join(5.0)
            assert not t1.is_alive() and not t2.is_alive()
            assert consumed == [0]

    def test_poisoning_wakes_direct_waiters(self):
        get_config().poison_on_exception = True
        shelf = DirectShelf()
        errs = []

        def waiter():
            try:
                shelf.take()
            except BrokenMonitorError as exc:
                errs.append(exc)

        t = _spawn(waiter)
        time.sleep(0.05)
        with pytest.raises(RuntimeError):
            shelf.crash()
        t.join(2.0)
        assert not t.is_alive()
        assert len(errs) == 1 and isinstance(errs[0].cause, RuntimeError)
        assert shelf.broken
        shelf.reset()
        shelf.refill(1)
        assert shelf.take(timeout=1.0) == 0

    def test_disabling_aot_signal_falls_back_to_relay(self):
        cfg = get_config()
        saved = cfg.aot_signal
        cfg.aot_signal = False
        try:
            shelf = DirectShelf()
            done = []
            t = _spawn(lambda: done.append(shelf.take(timeout=5.0)))
            time.sleep(0.05)
            shelf.refill(1)
            t.join(2.0)
            assert done == [0]
            assert shelf.metrics.relay_skipped_aot == 0
        finally:
            cfg.aot_signal = saved


# ============================================================== cancel token
class TestCancelToken:
    def test_sticky_cancel_and_reason(self):
        tok = CancelToken()
        assert not tok.cancelled()
        tok.cancel("why")
        assert tok.cancelled() and tok.reason == "why"
        tok.cancel("later")      # first reason wins
        assert tok.reason == "why"
        with pytest.raises(WaitCancelledError):
            tok.raise_if_cancelled()

    def test_callbacks_fire_once_and_immediately_when_late(self):
        tok = CancelToken()
        calls = []
        tok.add_callback(lambda: calls.append("a"))
        tok.cancel()
        assert calls == ["a"]
        tok.add_callback(lambda: calls.append("b"))   # already cancelled
        assert calls == ["a", "b"]

    def test_remove_callback(self):
        tok = CancelToken()
        cb = lambda: (_ for _ in ()).throw(AssertionError)  # noqa: E731
        tok.add_callback(cb)
        tok.remove_callback(cb)
        tok.cancel()


# ==================================================== decorrelated backoff
class _FakeServer:
    """Just enough server surface for exercising ServerSupervisor policy."""

    def __init__(self):
        self._stop = False
        self.supervisor = None
        self.restarts_done = 0
        self.monitor = types.SimpleNamespace(
            _metrics=types.SimpleNamespace(add=lambda *a, **k: None))

    def submit(self, task):  # pragma: no cover - supervise() duck check only
        raise AssertionError("not a real server")

    def restart(self):
        self.restarts_done += 1
        return True


class TestBackoffJitter:
    def test_default_backoff_is_bounded_exponential(self):
        sup = ServerSupervisor(_FakeServer(), backoff_base=0.01,
                               backoff_factor=2.0, backoff_cap=0.05)
        delays = [sup.backoff_for(i) for i in range(6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]

    def test_jittered_backoff_stays_in_envelope_and_varies(self):
        sup = ServerSupervisor(_FakeServer(), jitter=True, seed=42,
                               backoff_base=0.01, backoff_cap=0.08)
        delays = [sup.backoff_for(i) for i in range(100)]
        assert all(0.01 <= d <= 0.08 for d in delays)
        # decorrelated draws actually spread out (not a constant sequence)
        assert len({round(d, 4) for d in delays}) > 10

    def test_jittered_backoff_is_deterministic_per_seed(self):
        a = ServerSupervisor(_FakeServer(), jitter=True, seed=7,
                             backoff_base=0.01, backoff_cap=0.5)
        b = ServerSupervisor(_FakeServer(), jitter=True, seed=7,
                             backoff_base=0.01, backoff_cap=0.5)
        c = ServerSupervisor(_FakeServer(), jitter=True, seed=8,
                             backoff_base=0.01, backoff_cap=0.5)
        seq_a = [a.backoff_for(i) for i in range(20)]
        seq_b = [b.backoff_for(i) for i in range(20)]
        seq_c = [c.backoff_for(i) for i in range(20)]
        assert seq_a == seq_b
        assert seq_a != seq_c

    def test_max_elapsed_budget_caps_total_restart_time(self):
        server = _FakeServer()
        sup = ServerSupervisor(server, max_restarts=100,
                               backoff_base=0.005, backoff_factor=1.0,
                               backoff_cap=1.0, max_elapsed=0.012)
        assert sup.handle_death(None) is True      # spends 0.005
        assert sup.handle_death(None) is True      # spends 0.010
        assert sup.handle_death(None) is False     # 0.015 > budget: give up
        assert sup.gave_up
        assert server.restarts_done == 2
        assert sup.restarts == 2
        assert sup.backoff_spent == pytest.approx(0.010)

    def test_zero_budget_means_no_restarts(self):
        server = _FakeServer()
        sup = ServerSupervisor(server, backoff_base=0.001, max_elapsed=0.0)
        assert sup.handle_death(None) is False
        assert sup.gave_up and server.restarts_done == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ServerSupervisor(_FakeServer(), max_elapsed=-1.0)

    def test_supervised_restart_under_chaos_with_jitter(self):
        """End-to-end: jittered supervisor still restarts a killed server."""
        m = Tick()
        try:
            sup = supervise(m, jitter=True, seed=3, max_restarts=3,
                            backoff_base=0.005, backoff_cap=0.02,
                            max_elapsed=5.0)
            m.tick().get(timeout=2.0)
            with chaos.active(seed=1, sites=("server_loop",),
                              kill={"server_loop": 1}):
                m.server._wake.set()
                deadline = time.monotonic() + 5.0
                while sup.restarts == 0 and time.monotonic() < deadline:
                    time.sleep(0.01)
            assert sup.restarts == 1 and not sup.gave_up
            assert sup.backoff_spent > 0.0
            assert m.tick().get(timeout=2.0) >= 1
        finally:
            chaos.reset()
            m.shutdown()


# ========================================================== cancel_after
class TestCancelAfter:
    def test_timer_fires_and_cancels_with_default_reason(self):
        tok = CancelToken()
        timer = tok.cancel_after(0.03)
        assert timer.armed
        deadline = time.monotonic() + 2.0
        while not tok.cancelled() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tok.cancelled() and tok.reason == "deadline"

    def test_custom_reason(self):
        tok = CancelToken()
        tok.cancel_after(0.01, reason="too slow")
        deadline = time.monotonic() + 2.0
        while not tok.cancelled() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert tok.reason == "too slow"

    def test_disarmed_timer_never_fires(self):
        tok = CancelToken()
        timer = tok.cancel_after(0.03)
        timer.cancel()
        assert not timer.armed
        time.sleep(0.08)
        assert not tok.cancelled()

    def test_cancel_after_unparks_a_guarded_wait(self):
        gate = Gate()
        tok = CancelToken()
        errs = []
        t = _spawn(lambda: _guarded_wait(gate, tok, errs))
        time.sleep(0.03)
        tok.cancel_after(0.02)
        t.join(3.0)
        assert not t.is_alive()
        assert len(errs) == 1

    def test_many_threads_arm_and_disarm_concurrently(self):
        """Thread-safety: exactly the still-armed timers fire."""
        tokens = [CancelToken() for _ in range(48)]
        timers: list = [None] * len(tokens)

        def arm(i):
            timers[i] = tokens[i].cancel_after(0.02 + (i % 5) * 0.01)
            if i % 2 == 0:
                timers[i].cancel()

        threads = [_spawn(arm, i) for i in range(len(tokens))]
        for t in threads:
            t.join(2.0)
        deadline = time.monotonic() + 3.0
        while (any(not tok.cancelled() for i, tok in enumerate(tokens)
                   if i % 2 == 1) and time.monotonic() < deadline):
            time.sleep(0.01)
        for i, tok in enumerate(tokens):
            if i % 2 == 1:
                assert tok.cancelled(), f"armed timer {i} never fired"
        time.sleep(0.05)
        for i, tok in enumerate(tokens):
            if i % 2 == 0:
                assert not tok.cancelled(), f"disarmed timer {i} fired"

    def test_out_of_order_arming(self):
        slow, fast = CancelToken(), CancelToken()
        slow.cancel_after(0.2)
        fast.cancel_after(0.02)    # armed later, expires earlier
        deadline = time.monotonic() + 2.0
        while not fast.cancelled() and time.monotonic() < deadline:
            time.sleep(0.005)
        assert fast.cancelled()
        assert not slow.cancelled()   # the long timer is still pending
        deadline = time.monotonic() + 2.0
        while not slow.cancelled() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert slow.cancelled()


def _guarded_wait(gate, tok, errs):
    try:
        gate.wait_open(cancel=tok)
    except WaitCancelledError as exc:
        errs.append(exc)


# ================================================== chaos per-site overrides
class TestChaosSiteProbs:
    def test_overrides_apply_only_to_their_site(self):
        chaos.configure(seed=5, delay_prob=0.0, switch_prob=0.0,
                        site_probs={"signal": {"delay_prob": 1.0,
                                               "delay_range": (0.0, 0.0)}})
        chaos.enable()
        for _ in range(10):
            chaos.fire("signal")
            chaos.fire("monitor_enter")
        stats = chaos.stats()
        assert stats["injected"]["delay"] == 10
        assert stats["fired"]["signal"] == 10
        assert stats["fired"]["monitor_enter"] == 10

    def test_site_probs_validated(self):
        with pytest.raises(ValueError):
            chaos.configure(site_probs={"nope": {"delay_prob": 1.0}})
        with pytest.raises(ValueError):
            chaos.configure(site_probs={"signal": {"bogus": 1.0}})

    def test_deterministic_under_seed_with_overrides(self):
        def run_once():
            chaos.reset()
            chaos.configure(seed=99, delay_prob=0.3, switch_prob=0.3,
                            delay_range=(0.0, 0.0),
                            site_probs={"relay": {"delay_prob": 0.9,
                                                  "switch_prob": 0.05}})
            chaos.enable()
            for i in range(200):
                chaos.fire("relay" if i % 3 == 0 else "queue_put")
            return chaos.stats()

        assert run_once() == run_once()

    def test_override_can_silence_one_site(self):
        chaos.configure(seed=5, delay_prob=1.0, delay_range=(0.0, 0.0),
                        site_probs={"queue_put": {"delay_prob": 0.0}})
        chaos.enable()
        for _ in range(10):
            chaos.fire("queue_put")
        assert chaos.stats()["injected"]["delay"] == 0
