"""Whole-system integration: all four components cooperating under load.

A small "bank": accounts are ActiveMonitors; tellers move money between
accounts with multisynch + global conditions; an auditor composes reads
with select_one; background interest posting is delegated asynchronously.
The invariant — total balance is conserved — must survive arbitrary
interleavings of all mechanisms at once.
"""

import random
import threading

import pytest

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.compose import bind, select_one
from repro.core import S
from repro.multi import local, multisynch


class Account(ActiveMonitor):
    def __init__(self, balance: int, **kw):
        super().__init__(**kw)
        self.balance = balance
        self.postings = 0

    @asynchronous()
    def post_interest(self):
        # integer "interest": +1 then -1, net zero, but exercises delegation
        self.balance += 1
        self.balance -= 1
        self.postings += 1

    @synchronous()
    def read(self):
        return self.balance

    def credit(self, n):
        self.balance += n

    def debit(self, n):
        self.balance -= n


N_ACCOUNTS = 5
INITIAL = 100


@pytest.fixture
def bank():
    accounts = [Account(INITIAL, mode="sync") for _ in range(N_ACCOUNTS)]
    yield accounts
    for account in accounts:
        account.shutdown()


def test_total_balance_conserved_under_full_load(bank):
    accounts = bank
    rng = random.Random(5)
    stop = threading.Event()
    errors = []

    # Every teller works the same dedicated account pair (0, 1) and moves
    # money in whichever direction currently has funds.  Nothing else
    # changes those balances, so the pair's combined total (200) is
    # invariant: "both accounts below 10" is impossible, and any teller can
    # always proceed — even a lone straggler.  (A fixed random src/dst plan
    # could strand every teller on drained sources.)
    left, right = accounts[0], accounts[1]

    def teller(k):
        local_rng = random.Random(k)
        try:
            for _ in range(60):
                amount = local_rng.randint(1, 10)
                with multisynch(left, right, strategy="CC") as ms:
                    ms.wait_until(
                        local(left, S.balance >= amount)
                        | local(right, S.balance >= amount)
                    )
                    src, dst = (left, right) if left.balance >= amount else (right, left)
                    src.debit(amount)
                    dst.credit(amount)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def auditor():
        try:
            for _ in range(40):
                # read any account via composition (guards are tautologies)
                idx, value = select_one([bind(a.read) for a in accounts])
                assert isinstance(value, int)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    def interest_poster():
        try:
            for _ in range(30):
                for account in accounts:
                    account.post_interest()
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = (
        [threading.Thread(target=teller, args=(k,), daemon=True) for k in range(3)]
        + [threading.Thread(target=auditor, daemon=True)]
        + [threading.Thread(target=interest_poster, daemon=True)]
    )
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    stop.set()
    assert not any(t.is_alive() for t in threads), "system wedged under load"
    assert not errors, errors
    for account in accounts:
        account.flush()
    total = sum(a.read() for a in accounts)
    assert total == N_ACCOUNTS * INITIAL
    assert sum(a.postings for a in accounts) == 30 * N_ACCOUNTS


def test_conservation_with_active_servers():
    """Same invariant with live server threads on every account."""
    accounts = [Account(INITIAL) for _ in range(3)]
    try:
        def poster(account):
            for _ in range(50):
                account.post_interest()

        threads = [threading.Thread(target=poster, args=(a,), daemon=True) for a in accounts]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        for a in accounts:
            a.flush()
        assert sum(a.read() for a in accounts) == 3 * INITIAL
        assert all(a.postings == 50 for a in accounts)
    finally:
        for a in accounts:
            a.shutdown()
