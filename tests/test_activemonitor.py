"""Integration tests for ActiveMonitor: delegation, rules, modes, failures."""

import threading
import time

import pytest

from repro.active import ActiveMonitor, Policy, asynchronous, synchronous
from repro.active.futures import LightFuture
from repro.runtime import get_config
from repro.runtime.errors import TaskError


class Box(ActiveMonitor):
    def __init__(self, capacity=8, **kw):
        super().__init__(**kw)
        self.items = []
        self.capacity = capacity

    @asynchronous(pre=lambda self, item: len(self.items) < self.capacity)
    def put(self, item):
        self.items.append(item)

    @synchronous(pre=lambda self: len(self.items) > 0)
    def take(self):
        return self.items.pop(0)

    @asynchronous()
    def explode(self):
        raise RuntimeError("kaboom")

    @synchronous()
    def size(self):
        return len(self.items)


@pytest.fixture
def box():
    b = Box()
    yield b
    b.shutdown()


class TestDelegation:
    def test_async_put_returns_future(self, box):
        future = box.put(1)
        assert isinstance(future, LightFuture)
        box.flush()
        assert box.size() == 1

    def test_sync_take_returns_value(self, box):
        box.put("x")
        assert box.take() == "x"

    def test_server_running(self, box):
        assert box.is_active
        assert box.server.alive

    def test_fifo_order_per_worker(self, box):
        for i in range(6):
            box.put(i)
        box.flush()
        assert box.items == list(range(6))

    def test_flush_waits_for_tasks(self, box):
        for i in range(5):
            box.put(i)
        box.flush()
        assert box.size() == 5


class TestRules:
    def test_rule2_one_outstanding_async_per_monitor(self):
        b = Box(capacity=1)
        try:
            submitted_third = threading.Event()
            consumed = []

            def consumer():
                # wait until the worker is provably blocked submitting put(3)
                # (i.e. put(2) is pending against a full buffer), then drain
                time.sleep(0.05)
                while not consumed:
                    if not submitted_third.is_set():
                        consumed.append(b.take())
                    time.sleep(0.01)

            t = threading.Thread(target=consumer, daemon=True)
            b.put(1)            # fills the buffer
            f2 = b.put(2)       # Rule 2 waits for put(1) (done) — then pends
            t.start()
            b.put(3)            # blocks on put(2)'s future until a take frees space
            submitted_third.set()
            assert f2.done()    # Rule 2 guaranteed put(2) completed first
            t.join(5)
            b.take()
            b.take()
        finally:
            b.shutdown()

    def test_rule3_cross_monitor_ordering(self):
        a, b = Box(), Box()
        try:
            order = []

            class Probe(Box):
                @asynchronous()
                def mark(self, tag):
                    order.append(tag)
                    time.sleep(0.05)

            p1, p2 = Probe(), Probe()
            try:
                p1.mark("first")
                p2.mark("second")   # Rule 3: waits for p1's task first
                p1.flush()
                p2.flush()
                assert order == ["first", "second"]
            finally:
                p1.shutdown()
                p2.shutdown()
        finally:
            a.shutdown()
            b.shutdown()


class TestModes:
    def test_delegate_mode_blocks_on_future(self):
        b = Box(mode="delegate")
        try:
            future = b.put(1)
            assert future.done()        # AMS: evaluated before returning
        finally:
            b.shutdown()

    def test_sync_mode_has_no_server(self):
        b = Box(mode="sync")
        assert not b.is_active
        future = b.put(1)
        assert future.done()
        assert b.take() == 1

    def test_disabled_asynchrony_falls_back(self):
        cfg = get_config()
        saved = cfg.asynchronous_enabled
        cfg.asynchronous_enabled = False
        try:
            b = Box()
            assert not b.is_active
            b.put(5)
            assert b.take() == 5
        finally:
            cfg.asynchronous_enabled = saved

    def test_server_cap_denial_falls_back(self):
        cfg = get_config()
        saved = cfg.max_server_threads
        cfg.max_server_threads = 0
        try:
            b = Box()
            assert not b.is_active
            b.put(1)
            assert b.take() == 1
        finally:
            cfg.max_server_threads = saved

    def test_shutdown_then_sync_operation(self, box):
        box.put(1)
        box.flush()
        box.shutdown()
        assert not box.is_active
        box.put(2)               # falls back to synchronous execution
        assert box.take() == 1
        assert box.take() == 2


class TestExceptions:
    def test_async_exception_delivered_via_future(self, box):
        future = box.explode()
        with pytest.raises(TaskError) as excinfo:
            future.get(timeout=5)
        assert isinstance(excinfo.value.cause, RuntimeError)

    def test_exception_logged_on_server(self, box):
        box.explode().exception() or time.sleep(0.05)
        box.flush()
        assert any(isinstance(e, RuntimeError) for e in box.server.exception_log)

    def test_stranded_tasks_fail_on_shutdown(self):
        b = Box(capacity=1)
        b.put(1)                      # executable
        b.flush()
        blocked = b.put(2)            # precondition false forever
        time.sleep(0.05)
        b.shutdown()
        with pytest.raises(TaskError):
            blocked.get(timeout=5)


class TestPolicies:
    def test_priority_policy_orders_pending_tasks(self):
        class PrioBox(ActiveMonitor):
            def __init__(self):
                super().__init__(policy=Policy.PRIORITY)
                self.gate = False
                self.order = []

            @asynchronous(pre=lambda self, tag, prio: self.gate, priority=0)
            def low(self, tag, prio):
                self.order.append(tag)

            @asynchronous(pre=lambda self, tag: self.gate, priority=9)
            def high(self, tag):
                self.order.append(tag)

            @synchronous()
            def open_gate(self):
                self.gate = True

        b = PrioBox()
        try:
            # distinct worker threads so Rule 2 doesn't serialize submissions
            t1 = threading.Thread(target=lambda: b.low("lo", 0), daemon=True)
            t1.start()
            t1.join(5)
            t2 = threading.Thread(target=lambda: b.high("hi"), daemon=True)
            t2.start()
            t2.join(5)
            time.sleep(0.05)
            b.open_gate()
            b.flush()
            assert b.order == ["hi", "lo"]
        finally:
            b.shutdown()
