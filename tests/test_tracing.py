"""Tests for the synchronization event tracer."""

import threading
import time

from repro.core import Monitor, S
from repro.runtime.tracing import TraceEvent, Tracer


class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.level = 0

    def bump(self):
        self.level += 1

    def wait_for(self, k):
        self.wait_until(S.level >= k)


class TestTracer:
    def test_records_wait_signal_wakeup(self):
        g = Gate()
        tracer = Tracer()
        tracer.attach(g)
        try:
            t = threading.Thread(target=lambda: g.wait_for(1), daemon=True)
            t.start()
            time.sleep(0.05)
            g.bump()
            t.join(5)
        finally:
            tracer.detach_all()
        kinds = tracer.counts()
        assert kinds.get("wait") == 1
        assert kinds.get("signal", 0) >= 1
        assert kinds.get("wakeup", 0) >= 1

    def test_events_ordered_and_attributed(self):
        g = Gate()
        with Tracer() as tracer:
            tracer.attach(g)
            t = threading.Thread(target=lambda: g.wait_for(1), daemon=True)
            t.start()
            time.sleep(0.05)
            g.bump()
            t.join(5)
            tracer.detach_all()
        events = tracer.events()
        assert all(isinstance(e, TraceEvent) for e in events)
        times = [e.t for e in events]
        assert times == sorted(times)
        assert all(e.monitor == g.monitor_id for e in events)

    def test_detach_stops_recording(self):
        g = Gate()
        tracer = Tracer()
        tracer.attach(g)
        g.bump()
        tracer.detach_all()
        before = len(tracer)
        g.bump()
        assert len(tracer) == before

    def test_ring_buffer_bounded(self):
        g = Gate()
        tracer = Tracer(capacity=5)
        tracer.attach(g)
        try:
            for _ in range(10):
                tracer.record(g.monitor_id, "signal")
        finally:
            tracer.detach_all()
        assert len(tracer) == 5

    def test_filter_by_kind(self):
        tracer = Tracer()
        tracer.record(1, "wait")
        tracer.record(1, "signal")
        tracer.record(1, "signal")
        assert len(tracer.events("signal")) == 2
        assert len(tracer.events("wait")) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1, "wait")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_rendering(self):
        event = TraceEvent(t=0.5, thread=1, monitor=2, kind="signal", detail="x")
        text = str(event)
        assert "signal" in text and "mon#2" in text

    def test_metrics_still_counted_while_traced(self):
        g = Gate()
        tracer = Tracer()
        tracer.attach(g)
        try:
            t = threading.Thread(target=lambda: g.wait_for(1), daemon=True)
            t.start()
            time.sleep(0.05)
            g.bump()
            t.join(5)
        finally:
            tracer.detach_all()
        snap = g.metrics.snapshot()
        assert snap["waits"] == 1
        assert snap["signals"] >= 1


class TestMultiMonitorTracing:
    def test_two_monitors_one_tracer(self):
        a, b = Gate(), Gate()
        tracer = Tracer()
        tracer.attach(a)
        tracer.attach(b)
        try:
            ta = threading.Thread(target=lambda: a.wait_for(1), daemon=True)
            tb = threading.Thread(target=lambda: b.wait_for(1), daemon=True)
            ta.start()
            tb.start()
            time.sleep(0.05)
            a.bump()
            b.bump()
            ta.join(5)
            tb.join(5)
        finally:
            tracer.detach_all()
        monitors = {e.monitor for e in tracer.events()}
        assert monitors == {a.monitor_id, b.monitor_id}

    def test_detach_all_restores_both(self):
        a, b = Gate(), Gate()
        tracer = Tracer()
        bump_a, bump_b = a.metrics.bump, b.metrics.bump
        tracer.attach(a)
        tracer.attach(b)
        tracer.detach_all()
        assert a.metrics.bump == bump_a
        assert b.metrics.bump == bump_b
