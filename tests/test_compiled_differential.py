"""Differential tests: compiled evaluators ≡ the tree-walking interpreter.

The interpreter in :mod:`repro.core.predicates` is the executable
specification; :mod:`repro.core.compiled` must match it *exactly* — same
values, same truthiness, same exceptions from the same sub-evaluation order.
These tests prove that equivalence three ways:

* hypothesis-generated random predicate trees evaluated against randomized
  (and deliberately hostile) monitor states, comparing value/truthiness and
  raised exception type+message;
* targeted exception cases (ZeroDivisionError via ``%``, AttributeError via
  a missing shared variable, TypeError via mixed-type arithmetic) including
  short-circuit positions where the interpreter must *not* raise;
* the problem corpus smoke-run under :func:`repro.core.compiled.crosscheck`,
  where every evaluation runs both paths and any divergence fails loudly.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Monitor, S
from repro.core import compiled
from repro.core.condition_manager import ConditionManager
from repro.core.expressions import Const, SharedExpr, SharedVar
from repro.core.predicates import (
    And,
    Comparison,
    FalseAtom,
    FuncAtom,
    Or,
    Predicate,
    TrueAtom,
)
from repro.core.waiter import Waiter
from repro.runtime.config import get_config
from repro.runtime.metrics import Metrics


class State:
    """Bare state object standing in for a monitor."""

    def __init__(self, **attrs):
        for k, v in attrs.items():
            setattr(self, k, v)


def _outcome(fn, state):
    """Run ``fn(state)``, capturing (value, truthiness, exception)."""
    try:
        value = fn(state)
        return value, bool(value), None
    except Exception as exc:  # noqa: BLE001 — compared structurally below
        return None, None, exc


def assert_equivalent(predicate, state):
    """Compiled and interpreted evaluation must agree on ``state``."""
    ev = compiled.compile_predicate(predicate)
    if ev is None:
        return  # interpreter fallback: nothing to diverge
    expected, expected_truth, expected_exc = _outcome(predicate.evaluate, state)
    got, got_truth, got_exc = _outcome(ev, state)
    if expected_exc is not None or got_exc is not None:
        assert type(expected_exc) is type(got_exc), (
            f"{predicate!r}: interpreted raised {expected_exc!r}, "
            f"compiled raised {got_exc!r}"
        )
        assert str(expected_exc) == str(got_exc)
    else:
        assert expected == got, f"{predicate!r}: {expected!r} != {got!r}"
        assert expected_truth == got_truth


# --------------------------------------------------------------------------
# randomized trees
# --------------------------------------------------------------------------

_VAR_NAMES = ("a", "b", "c", "missing")

_consts = st.one_of(
    st.integers(-5, 5),
    st.sampled_from([0.5, -1.5, 2.0, 0.0]),
)

_exprs = st.recursive(
    st.one_of(
        st.sampled_from(_VAR_NAMES).map(SharedVar),
        _consts.map(Const),
        st.just(SharedExpr(lambda m: m.a + m.b, "a_plus_b")),
    ),
    lambda children: st.builds(
        lambda op, lhs, rhs: {
            "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs, "%": lhs % rhs,
        }[op],
        st.sampled_from(["+", "-", "*", "%"]),
        children,
        children,
    ),
    max_leaves=4,
)

_atoms = st.one_of(
    st.builds(
        Comparison,
        _exprs,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        _exprs,
    ),
    st.builds(
        FuncAtom,
        st.sampled_from([
            lambda m: m.a > 0,
            lambda m: (m.a + m.b) % 3 == 1,
            lambda: True,
        ]),
        st.booleans(),
    ),
    st.just(TrueAtom()),
    st.just(FalseAtom()),
)

_trees = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(And),
        st.lists(children, min_size=1, max_size=3).map(Or),
    ),
    max_leaves=6,
)

_values = st.one_of(
    st.integers(-4, 4),
    st.sampled_from([0.0, 1.5, -2.5]),
    st.sampled_from(["x", None, [1]]),   # hostile: arithmetic/compare raise
)


@settings(max_examples=300, deadline=None)
@given(tree=_trees, a=_values, b=_values, c=_values)
def test_random_trees_match_interpreter(tree, a, b, c):
    # ``missing`` is intentionally absent: some runs exercise AttributeError
    state = State(a=a, b=b, c=c)
    assert_equivalent(Predicate(tree), state)


@settings(max_examples=150, deadline=None)
@given(tree=_trees, a=st.integers(-4, 4), b=st.integers(-4, 4))
def test_random_trees_match_on_benign_states(tree, a, b):
    state = State(a=a, b=b, c=0)
    assert_equivalent(Predicate(tree), state)


# --------------------------------------------------------------------------
# targeted exception differential
# --------------------------------------------------------------------------

class TestExceptions:
    def test_zero_division_through_modulo(self):
        assert_equivalent(Predicate((S.a % 0) == 1), State(a=3))
        assert_equivalent(Predicate((S.a % S.b) == 1), State(a=3, b=0))

    def test_zero_scaled_terms_do_not_crash_normalization(self):
        """Regression: ``0 * S.a`` used to leave a 0.0 coefficient that
        linear_key divided by (fuzz-found)."""
        assert_equivalent(Predicate(0 * S.a + S.b > 1), State(a=7, b=2))
        assert_equivalent(Predicate((0 * S.a) >= 0), State(a=7, b=2))

    def test_attribute_error_on_missing_shared_var(self):
        assert_equivalent(Predicate(S.nope > 0), State(a=1))

    def test_type_error_on_mixed_arithmetic(self):
        assert_equivalent(Predicate((S.a + S.b) < 3), State(a="x", b=1))
        assert_equivalent(Predicate(S.a < 3), State(a="x"))

    def test_short_circuit_suppresses_late_raise(self):
        """A true left disjunct must skip the raising right one, both paths."""
        pred = Predicate((S.a == 1) | ((S.b % 0) == 0))
        state = State(a=1, b=2)
        ev = compiled.compile_predicate(pred)
        assert ev is not None
        assert pred.evaluate(state) is True
        assert ev(state) is True

    def test_short_circuit_and_false_left(self):
        pred = Predicate((S.a == 99) & (S.missing > 0))
        state = State(a=1)
        ev = compiled.compile_predicate(pred)
        assert ev is not None
        assert pred.evaluate(state) is False
        assert ev(state) is False

    def test_raising_func_atom(self):
        def boom(m):
            raise RuntimeError("kapow")

        assert_equivalent(Predicate(FuncAtom(boom)), State(a=1))


# --------------------------------------------------------------------------
# compiled expr-key evaluators (the tag search's shared expressions)
# --------------------------------------------------------------------------

def _manager():
    return ConditionManager(State(x=0, y=0), threading.RLock(), Metrics(), "autosynch")


class TestExprKeyDifferential:
    @settings(max_examples=100, deadline=None)
    @given(x=st.integers(-6, 6), y=st.integers(-6, 6))
    def test_compiled_expr_keys_match_interpreter(self, x, y):
        mgr = _manager()
        for cond in (S.x + 2 * S.y >= 3, S.x - S.y == 1, S.y <= -2):
            mgr._register(Waiter(Predicate(cond), mgr.lock))
        assert mgr._expr_evalers, "registration should compile expr keys"
        mgr.monitor.x = x
        mgr.monitor.y = y
        for key, fn in mgr._expr_evalers.items():
            if fn is None:
                continue
            # force the interpreter path by looking the key up with the
            # compiled table emptied
            compiled_value = fn(mgr.monitor)
            saved = mgr._expr_evalers
            mgr._expr_evalers = {}
            try:
                interpreted_value = mgr._evaluate_expr_key(key)
            finally:
                mgr._expr_evalers = saved
            assert compiled_value == interpreted_value


# --------------------------------------------------------------------------
# template sharing, fallback, config gating
# --------------------------------------------------------------------------

class TestCompilerMechanics:
    def test_same_shape_shares_one_template(self):
        compiled.clear_cache()
        ev1 = compiled.compile_predicate(Predicate(S.count + 3 <= S.capacity))
        ev2 = compiled.compile_predicate(Predicate(S.count + 48 <= S.capacity))
        info = compiled.cache_info()
        assert info["shape_misses"] == 1
        assert info["shape_hits"] == 1
        state = State(count=1, capacity=10)
        assert ev1(state) is True      # 1 + 3 <= 10
        assert ev2(state) is False     # 1 + 48 > 10

    def test_unsupported_shape_falls_back_to_none(self):
        class Exotic(TrueAtom):
            pass

        assert compiled.compile_predicate(Predicate(Exotic())) is None

    def test_flag_off_uses_interpreter(self):
        cfg = get_config()
        prior = cfg.compile_predicates
        cfg.compile_predicates = False
        try:
            p = Predicate(S.a > 0)
            assert p.evaluator() == p.evaluate
        finally:
            cfg.compile_predicates = prior

    def test_tiered_compilation_engages_on_reuse(self):
        p = Predicate(S.a > 0)
        state = State(a=1)
        assert p._evaluator is None
        assert p.fast_eval(state) is True      # first use: interpreted
        assert p._evaluator is None
        assert p.fast_eval(state) is True      # second use: compiled
        assert p._evaluator is not None
        assert p._evaluator(state) is True


# --------------------------------------------------------------------------
# crosscheck mode
# --------------------------------------------------------------------------

class TestCrosscheck:
    def test_divergence_raises(self):
        checked = compiled.crosscheck_wrap(
            lambda m: True, lambda m: False, "forced divergence"
        )
        with pytest.raises(compiled.CompiledDivergence):
            checked(State())

    def test_exception_divergence_raises(self):
        def raises(m):
            raise ValueError("only one side")

        checked = compiled.crosscheck_wrap(raises, lambda m: True, "exc side")
        with pytest.raises(compiled.CompiledDivergence):
            checked(State())

    def test_agreeing_exception_reraises_original(self):
        def boom(m):
            raise ValueError("same both sides")

        checked = compiled.crosscheck_wrap(boom, boom, "agree")
        with pytest.raises(ValueError, match="same both sides"):
            checked(State())

    def test_predicates_checked_under_context(self):
        with compiled.crosscheck():
            assert compiled.crosscheck_active()
            p = Predicate((S.a + 1) * 2 >= S.b)
            assert p.fast_eval(State(a=1, b=3)) is True
        assert not compiled.crosscheck_active()

    def test_bounded_buffer_under_crosscheck(self):
        """Real monitor traffic with both evaluation paths asserted equal."""
        from repro.problems.bounded_buffer import AutoBoundedQueue

        with compiled.crosscheck():
            buf = AutoBoundedQueue(4)
            results = []

            def consumer():
                for _ in range(20):
                    results.append(buf.take())

            t = threading.Thread(target=consumer, daemon=True)
            t.start()
            for i in range(20):
                buf.put(i)
            t.join(10)
            assert not t.is_alive()
        assert results == list(range(20))


# --------------------------------------------------------------------------
# poisoning through the compiled path
# --------------------------------------------------------------------------

class Fragile(Monitor):
    def __init__(self):
        super().__init__()
        self.data = [0]

    def clear(self):
        self.data = []

    def fill(self):
        self.data = [5]

    def wait_positive(self):
        # compiled FuncAtom: raises IndexError once ``data`` is emptied
        self.wait_until(lambda m: m.data[0] > 0)


def test_poisoned_compiled_predicate_reraises_in_owner():
    m = Fragile()
    errors = []
    parked = threading.Event()

    def waiter():
        parked.set()
        try:
            m.wait_positive()
        except IndexError as exc:
            errors.append(exc)

    t = threading.Thread(target=waiter, daemon=True)
    t.start()
    parked.wait(5)
    # let the waiter actually park before mutating
    for _ in range(100):
        if m.waiting_count():
            break
        threading.Event().wait(0.01)
    m.clear()   # relay evaluates the waiter's compiled closure → IndexError
    t.join(5)
    assert not t.is_alive()
    assert len(errors) == 1
