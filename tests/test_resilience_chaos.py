"""Schedule fuzzing and fault injection for the resilience layer.

Three families:

* a hypothesis property test mixing random timeouts into relay traffic —
  no signal may be lost and no waiter may unpark with a false predicate;
* chaos-seeded schedule fuzzing (seeded delays + forced context switches)
  of the bounded buffer and the ticket readers/writers monitors;
* the liveness-under-fault acceptance run: seeded delays, one injected
  server-thread kill, and one task-body crash under ``poison_on_exception``
  — every waiter and every future must resolve within a bounded window
  with zero hung threads.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active import ActiveMonitor, asynchronous
from repro.core import Monitor, S
from repro.problems.bounded_buffer import AutoBoundedQueue
from repro.problems.readers_writers import TicketReadersWriters
from repro.resilience import ServerSupervisor, chaos
from repro.runtime import get_config
from repro.runtime.errors import (
    BrokenMonitorError,
    TaskError,
    WaitTimeoutError,
)

JOIN_WINDOW = 20.0   # the "bounded window" every thread must resolve within


@pytest.fixture(autouse=True)
def _clean_runtime():
    cfg = get_config()
    saved = cfg.poison_on_exception
    chaos.reset()
    yield
    chaos.reset()
    cfg.poison_on_exception = saved


def _spawn(fn, *args):
    t = threading.Thread(target=fn, args=args, daemon=True)
    t.start()
    return t


def _join_all(threads, window=JOIN_WINDOW):
    deadline = time.monotonic() + window
    for t in threads:
        t.join(max(0.0, deadline - time.monotonic()))
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"threads still alive after {window}s: {hung}"


# ============================================== property: timeouts vs relay
class TimedQueue(Monitor):
    def __init__(self):
        super().__init__()
        self.items = []

    def put(self, v):
        self.items.append(v)

    def take(self, timeout):
        self.wait_until(S(lambda m: len(m.items), "n") > 0, timeout=timeout)
        # unparking with a false predicate would raise IndexError here —
        # exactly the violation this test hunts
        return self.items.pop(0)


@given(
    timeouts=st.lists(
        st.sampled_from([0.01, 0.03, 0.08, 2.0, 5.0]), min_size=2,
        max_size=6),
    stagger=st.lists(
        st.floats(min_value=0.0, max_value=0.03), min_size=1, max_size=4),
)
@settings(max_examples=12, deadline=None)
def test_random_timeouts_lose_no_signal_and_no_false_unpark(
        timeouts, stagger):
    """Consumers with a mix of hair-trigger and patient timeouts race
    staggered producers.  Conservation invariant: every produced item is
    either consumed exactly once or still queued; a timed-out consumer
    consumed nothing; nobody unparks with a false predicate (IndexError)."""
    q = TimedQueue()
    outcomes = []

    def consumer(timeout):
        try:
            outcomes.append(("item", q.take(timeout)))
        except WaitTimeoutError:
            outcomes.append(("timeout", None))

    threads = [_spawn(consumer, t) for t in timeouts]
    produced = []
    for i, pause in enumerate(stagger):
        time.sleep(pause)
        q.put(i)
        produced.append(i)
    _join_all(threads)

    consumed = [v for kind, v in outcomes if kind == "item"]
    # no duplicate delivery, nothing fabricated
    assert len(consumed) == len(set(consumed))
    assert set(consumed) <= set(produced)
    # conservation: consumed + still-queued == produced (no lost signal
    # may strand an item while a live waiter was parked for it)
    assert sorted(consumed + q.items) == produced
    # every patient consumer (timeout far beyond the test) got an item
    # while items were available
    patient = sum(1 for t in timeouts if t >= 2.0)
    assert len(consumed) >= min(patient, len(produced))


# ===================================================== chaos schedule fuzz
@pytest.mark.parametrize("seed", [7, 23, 101])
def test_bounded_buffer_under_chaos_schedules(seed):
    """Seeded delays + forced switches inside enter/exit/relay/signal must
    not break the bounded buffer: every item transfers exactly once."""
    n_producers, per_producer = 3, 15
    q = AutoBoundedQueue(4)
    got, got_lock = [], threading.Lock()

    def producer(base):
        for i in range(per_producer):
            q.put(base + i)

    def consumer(n):
        mine = []
        for _ in range(n):
            mine.append(q.take())
        with got_lock:
            got.extend(mine)

    with chaos.active(seed=seed, delay_prob=0.15,
                      delay_range=(0.0002, 0.002), switch_prob=0.25):
        threads = [_spawn(producer, 1000 * p) for p in range(n_producers)]
        consumers = [_spawn(consumer, per_producer)
                     for _ in range(n_producers)]
        _join_all(threads + consumers)

    expected = sorted(1000 * p + i
                      for p in range(n_producers) for i in range(per_producer))
    assert sorted(got) == expected
    assert q.count == 0


@pytest.mark.parametrize("seed", [5, 77])
def test_readers_writers_under_chaos_schedules(seed):
    """Fuzzed schedules must preserve exclusion: no reader overlaps a
    writer, writers never overlap, and every thread finishes."""
    rw = TicketReadersWriters()
    state = {"readers": 0, "writers": 0}
    state_lock = threading.Lock()
    violations = []

    def reader():
        for _ in range(8):
            rw.start_read()
            with state_lock:
                state["readers"] += 1
                if state["writers"]:
                    violations.append("reader saw a writer")
            time.sleep(0.0005)
            with state_lock:
                state["readers"] -= 1
            rw.end_read()

    def writer():
        for _ in range(4):
            rw.start_write()
            with state_lock:
                state["writers"] += 1
                if state["writers"] > 1 or state["readers"]:
                    violations.append("writer overlap")
            time.sleep(0.0005)
            with state_lock:
                state["writers"] -= 1
            rw.end_write()

    with chaos.active(seed=seed, delay_prob=0.1,
                      delay_range=(0.0002, 0.0015), switch_prob=0.3):
        threads = [_spawn(reader) for _ in range(3)]
        threads += [_spawn(writer) for _ in range(2)]
        _join_all(threads)

    assert violations == []
    assert rw.reader_count == 0


# ================================================ liveness under real faults
class FaultyWorker(ActiveMonitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.done = 0

    @asynchronous()
    def work(self, n):
        self.done += 1
        return n

    @asynchronous()
    def boom(self):
        raise ValueError("injected task-body crash")


class _HoldLock:
    def __init__(self, monitor):
        self.monitor = monitor
        self._acquired = threading.Event()
        self._release = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        with self.monitor._lock:
            self._acquired.set()
            self._release.wait(10.0)

    def __enter__(self):
        self._thread.start()
        assert self._acquired.wait(5.0)
        return self

    def __exit__(self, *exc):
        self._release.set()
        self._thread.join(5.0)


def test_liveness_under_injected_faults():
    """The acceptance run: seeded delays + one server-thread kill + one
    task-body crash with poisoning on.  Every future resolves (value or
    error), every parked waiter resolves, and no thread is left hanging."""
    get_config().poison_on_exception = True
    m = FaultyWorker()
    gate = TimedQueue()
    assert m.server is not None
    sup = ServerSupervisor(m.server, backoff_base=0.005)
    chaos.configure(seed=13, delay_prob=0.1, delay_range=(0.0002, 0.002),
                    switch_prob=0.2, kill={"server_loop": 2})
    chaos.enable()

    resolved = []
    res_lock = threading.Lock()

    def record(tag):
        with res_lock:
            resolved.append(tag)

    def submitter(base):
        for i in range(10):
            try:
                m.work(base + i).get(timeout=10.0)
                record("ok")
            except (TaskError, BrokenMonitorError):
                record("failed-fast")
            except WaitTimeoutError:
                record("timeout")
            if m.broken:
                m.reset()

    def crasher():
        try:
            m.boom().get(timeout=10.0)
            record("boom-lost")
        except (TaskError, BrokenMonitorError):
            record("boom-raised")
        except WaitTimeoutError:
            record("timeout")

    def parked_waiter(i):
        try:
            gate.take(timeout=15.0)
            record("gate-item")
        except WaitTimeoutError:
            record("gate-timeout")

    threads = [_spawn(submitter, 100 * k) for k in range(3)]
    threads.append(_spawn(crasher))
    threads += [_spawn(parked_waiter, i) for i in range(3)]
    # force at least one pass through the server loop so the kill site is
    # reachable even when combining would otherwise serve everything
    with _HoldLock(m):
        time.sleep(0.15)
    for i in range(3):
        gate.put(i)

    _join_all(threads)
    chaos.disable()

    with res_lock:
        outcomes = list(resolved)
    # every operation resolved one way or another: 3 submitters x 10 ops,
    # the crasher, and 3 gate waiters
    assert len(outcomes) == 3 * 10 + 1 + 3
    assert "boom-lost" not in outcomes
    assert outcomes.count("gate-item") == 3
    # the injected crash surfaced as an error, and timeouts stayed the
    # exception, not the norm (liveness, not mere eventual termination)
    assert outcomes.count("timeout") <= 4

    # after the storm the monitor still serves
    if m.broken:
        m.reset()
    assert m.work(999).get(timeout=5.0) == 999
    m.shutdown()
