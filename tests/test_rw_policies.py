"""Tests for the Fig. 6.1 policy-driven readers/writers monitor."""

import threading
import time

import pytest

from repro.active import Policy
from repro.problems.rw_policies import PolicyReadersWriters, run_rw_policy


def _submit(fn):
    """Submit a request from its own worker thread (distinct Rule-2 scope)."""
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    t.join(5)


def _staged_monitor(policy: Policy) -> PolicyReadersWriters:
    """A writer holds the monitor while one reader and one writer queue up
    (reader submitted first)."""
    m = PolicyReadersWriters(policy=policy)
    m.start_write().get(timeout=10)          # occupy
    _submit(m.start_read)                    # arrives first
    time.sleep(0.02)
    _submit(m.start_write)                   # arrives second
    time.sleep(0.05)
    return m


class TestPreference:
    def test_priority_prefers_writer(self):
        m = _staged_monitor(Policy.PRIORITY)
        try:
            m.end_write().get(timeout=10)
            time.sleep(0.1)
            assert m.history[:2] == ["W", "W"], m.history
        finally:
            m.shutdown()

    def test_fairness_serves_arrival_order(self):
        m = _staged_monitor(Policy.FAIRNESS)
        try:
            m.end_write().get(timeout=10)
            time.sleep(0.1)
            assert m.history[:2] == ["W", "R"], m.history
        finally:
            m.shutdown()


class TestSafety:
    @pytest.mark.parametrize("policy", [Policy.SAFE, Policy.FAIRNESS, Policy.PRIORITY])
    def test_completes_and_counts(self, policy):
        result = run_rw_policy(policy, n_readers=4, n_writers=2, rounds=8)
        history = result.extra["history"]
        assert history.count("W") == 16
        assert history.count("R") == 32

    def test_no_starvation_under_fairness(self):
        result = run_rw_policy(Policy.FAIRNESS, n_readers=6, n_writers=1, rounds=6)
        # the lone writer finished all its rounds despite the reader flood
        assert result.extra["history"].count("W") == 6
