"""Tests for repro.loadsim: arrival determinism, recorder properties,
service facades, and small end-to-end scenario runs.

The hypothesis properties pin down the two contracts the CI load-smoke
lane leans on: identical seeds produce *identical* arrival schedules
(chaos runs replay; committed BENCH records describe reproducible
traffic), and the HDR-style recorder's percentiles are monotone
(p50 <= p95 <= p99 <= p99.9) with bounded relative error.
"""

import math
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadsim import (
    SLO,
    BurstArrivals,
    Bulkhead,
    DiurnalArrivals,
    LatencyRecorder,
    LoadReport,
    PoissonArrivals,
    SLOViolation,
    WindowedSeries,
    make_service,
    run_burst_load,
    run_mixed_workload,
    run_network_partition,
    run_steady_load,
    run_worker_failure,
)
from repro.loadsim.recorder import _GROWTH
from repro.runtime.errors import WaitTimeoutError


# ============================================================ arrivals
class TestArrivalDeterminism:
    @given(rate=st.floats(1.0, 200.0), duration=st.floats(0.1, 5.0),
           seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_identical_seeds_identical_poisson_schedules(
            self, rate, duration, seed):
        a = PoissonArrivals(rate, duration, seed).schedule()
        b = PoissonArrivals(rate, duration, seed).schedule()
        assert a == b
        assert all(0.0 <= t < duration for t in a)
        assert list(a) == sorted(a)

    @given(base=st.floats(1.0, 50.0), extra=st.floats(0.0, 200.0),
           seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_identical_seeds_identical_burst_schedules(
            self, base, extra, seed):
        kw = dict(period=0.7, burst_fraction=0.4)
        a = BurstArrivals(base, base + extra, 2.0, seed, **kw).schedule()
        b = BurstArrivals(base, base + extra, 2.0, seed, **kw).schedule()
        assert a == b

    @given(peak=st.floats(1.0, 200.0), floor=st.floats(0.0, 1.0),
           seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_identical_seeds_identical_diurnal_schedules(
            self, peak, floor, seed):
        a = DiurnalArrivals(peak, 2.0, seed, floor=floor).schedule()
        b = DiurnalArrivals(peak, 2.0, seed, floor=floor).schedule()
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonArrivals(100.0, 2.0, 1).schedule()
        b = PoissonArrivals(100.0, 2.0, 2).schedule()
        assert a != b

    def test_rate_scales_volume(self):
        slow = PoissonArrivals(10.0, 5.0, 7).schedule()
        fast = PoissonArrivals(100.0, 5.0, 7).schedule()
        assert len(fast) > len(slow) * 3

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstArrivals(10.0, 5.0, 1.0)          # burst < base
        with pytest.raises(ValueError):
            BurstArrivals(1.0, 2.0, 1.0, burst_fraction=1.5)
        with pytest.raises(ValueError):
            PoissonArrivals(10.0, 0.0)             # zero duration

    def test_burst_rate_profile(self):
        arr = BurstArrivals(10.0, 100.0, 4.0, period=1.0, burst_fraction=0.25)
        assert arr.rate_at(0.1) == 100.0
        assert arr.rate_at(0.5) == 10.0
        assert arr.rate_at(1.1) == 100.0
        assert arr.peak_rate == 100.0

    def test_diurnal_rate_profile(self):
        arr = DiurnalArrivals(100.0, 10.0, floor=0.2)
        assert arr.rate_at(0.0) == pytest.approx(20.0)
        assert arr.rate_at(5.0) == pytest.approx(100.0)
        assert arr.rate_at(10.0) == pytest.approx(20.0, abs=1e-6)


# ============================================================ recorder
class TestLatencyRecorder:
    @given(st.lists(st.floats(1e-7, 10.0), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_monotone(self, samples):
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        p50, p95, p99, p999 = (rec.percentile(q) for q in (50, 95, 99, 99.9))
        assert p50 <= p95 <= p99 <= p999 <= rec.max
        assert rec.count == len(samples)

    @given(st.lists(st.floats(1e-6, 10.0), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_percentile_relative_error_bounded(self, samples):
        """Any percentile lands within one bucket (~4%) of a true sample."""
        rec = LatencyRecorder()
        for s in samples:
            rec.record(s)
        ordered = sorted(samples)
        for q in (50.0, 95.0, 99.0):
            true = ordered[max(0, math.ceil(len(ordered) * q / 100.0) - 1)]
            got = rec.percentile(q)
            assert got <= true * _GROWTH + 1e-9
            assert got >= true / _GROWTH - 1e-9

    def test_p100_equals_max(self):
        rec = LatencyRecorder()
        for s in (0.001, 0.5, 0.123):
            rec.record(s)
        assert rec.percentile(100) == rec.max == 0.5

    def test_merge_equals_record_all(self):
        a, b, merged = LatencyRecorder(), LatencyRecorder(), LatencyRecorder()
        for i in range(50):
            (a if i % 2 else b).record(i * 1e-3)
            merged.record(i * 1e-3)
        a.merge(b)
        assert a.count == merged.count
        for q in (50, 95, 99):
            assert a.percentile(q) == merged.percentile(q)

    def test_empty_and_negative(self):
        rec = LatencyRecorder()
        assert rec.percentile(99) == 0.0 and rec.mean == 0.0
        rec.record(-1.0)   # clamped to zero, not an error
        assert rec.count == 1

    def test_concurrent_recording(self):
        rec = LatencyRecorder()

        def pound():
            for i in range(2000):
                rec.record(i * 1e-5)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert rec.count == 8000

    def test_windowed_series(self):
        w = WindowedSeries(window_s=0.5)
        w.record(0.1, "completed", 0.01)
        w.record(0.4, "timed_out")
        w.record(0.6, "completed", 0.02)
        series = w.series()
        assert [s["t"] for s in series] == [0.0, 0.5]
        assert series[0]["counts"]["completed"] == 1
        assert series[0]["counts"]["timed_out"] == 1
        assert series[1]["counts"]["completed"] == 1
        assert series[1]["p50_ms"] > 0


# ============================================================ report / SLO
class TestReport:
    def _report(self, **over):
        kw = dict(
            service="svc", scenario="test", seed=1, params={},
            counts={"all": {"completed": 8, "timed_out": 1,
                            "failed_fast": 0, "shed": 1, "errors": 0}},
            latency={"all": LatencyRecorder()},
            windows=WindowedSeries(), elapsed=1.0, in_flight=0,
        )
        kw.update(over)
        return LoadReport(**kw)

    def test_accounting_identity(self):
        r = self._report()
        assert r.admitted == 9 and r.offered == 10
        r.assert_accounted()

    def test_lost_requests_fail_accounting(self):
        r = self._report(in_flight=2, diagnostics=["monitor #3 wedged"])
        with pytest.raises(SLOViolation) as ei:
            r.assert_accounted()
        assert "never reached a terminal state" in str(ei.value)
        assert "wedged" in str(ei.value)

    def test_slo_fractions(self):
        r = self._report()
        bad = r.check(SLO(max_timeout_frac=0.05, max_shed_frac=0.05))
        assert len(bad) == 2
        assert r.check(SLO(max_timeout_frac=0.5, max_shed_frac=0.5)) == []

    def test_slo_latency_bound(self):
        rec = LatencyRecorder()
        rec.record(0.2)
        r = self._report(latency={"all": rec})
        assert r.check(SLO(p95_ms=100.0))
        assert not r.check(SLO(p95_ms=300.0))


# ============================================================ services
class TestServices:
    def test_bulkhead_bounds_concurrency(self):
        gate = Bulkhead(1)
        assert gate.acquire(time.monotonic() + 0.1)
        assert not gate.acquire(time.monotonic() + 0.05)   # saturated
        gate.release()
        assert gate.acquire(time.monotonic())              # expired: still try
        gate.release()
        with pytest.raises(ValueError):
            Bulkhead(0)

    def test_make_service_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_service("nope")

    def test_buffer_service_roundtrip(self):
        svc = make_service("buffer", seed=1, capacity=8, prefill=2)
        svc.start()
        try:
            deadline = time.monotonic() + 1.0
            svc.handle(("put", 42), deadline)
            svc.handle(("take",), deadline)
            with pytest.raises(WaitTimeoutError):
                # drain the prefill, then a take must time out
                for _ in range(8):
                    svc.handle(("take",), time.monotonic() + 0.05)
        finally:
            svc.stop()

    def test_multicast_partition_grouping(self):
        svc = make_service("multicast", seed=1, n_channels=4)
        svc.start()
        try:
            assert svc.group((0, 1)) == "all"
            targets = svc.partition_targets(2)
            assert len(targets) == 2 and svc.partitioned == {0, 1}
            assert svc.group((0, 7)) == "partitioned"
            assert svc.group((3, 7)) == "healthy"
        finally:
            svc.partitioned = set()
            svc.stop()


# ============================================================ scenarios
# Small, fast runs — the full-size lanes live in benchmarks/test_loadsim.py.
class TestScenarios:
    def test_steady_load_accounts_every_request(self):
        report = run_steady_load("buffer", rate=40.0, duration=1.0, seed=3)
        assert report.offered == len(
            PoissonArrivals(40.0, 1.0, 3).schedule())
        assert report.in_flight == 0
        totals = {k: report.total(k) for k in
                  ("completed", "timed_out", "failed_fast", "shed", "errors")}
        assert report.admitted == sum(
            v for k, v in totals.items() if k != "shed")
        assert totals["completed"] > 0
        d = report.to_dict()
        assert d["latency_ms"]["p50"] <= d["latency_ms"]["p99"]

    def test_worker_failure_restarts_and_loses_nothing(self):
        report = run_worker_failure(
            "buffer", rate=40.0, duration=2.0, kill_at=0.5, seed=3,
            recovery_margin=0.8)
        assert report.in_flight == 0
        assert report.extra["chaos"]["injected"]["kill"] == 1
        assert sum(s["restarts"] for s in report.extra["supervision"]) >= 1

    def test_network_partition_isolates_and_drains(self):
        report = run_network_partition(
            rate=50.0, duration=2.5, partition_at=0.5, heal_after=0.7,
            seed=3, deadline=0.3)
        assert report.in_flight == 0
        healthy = report.counts["healthy"]
        part = report.counts["partitioned"]
        assert healthy["completed"] > 0
        # the partition was visible AND fully drained
        assert part.get("timed_out", 0) + part.get("shed", 0) > 0
        assert part["completed"] + part["timed_out"] + part["shed"] > 0

    def test_burst_overload_sheds_explicitly(self):
        report = run_burst_load(
            "pizza", base_rate=20.0, burst_rate=120.0, duration=2.0,
            seed=3, workers=3, admission_capacity=8, strict=False,
            service_kwargs={"prefill": 10, "restock_interval": 0.02})
        report.assert_accounted()
        assert report.total("shed") + report.total("timed_out") > 0

    def test_mixed_workload_runs_all_services(self):
        reports = run_mixed_workload(duration=1.5, seed=3, workers=3)
        assert set(reports) == {"buffer", "pizza", "multicast"}
        for r in reports.values():
            assert r.in_flight == 0
