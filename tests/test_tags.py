"""Unit tests for predicate tagging (Algorithm 1)."""

from repro.core.expressions import S
from repro.core.predicates import Predicate
from repro.core.tags import TagKind, tag_conjunction, tag_predicate


def _tags_of(condition):
    return tag_predicate(Predicate(condition).conjunctions)


class TestTagAssignment:
    def test_equivalence_tag(self):
        (tag,) = _tags_of(S.x == 5)
        assert tag.kind is TagKind.EQUIVALENCE
        assert tag.key == 5

    def test_threshold_tag(self):
        (tag,) = _tags_of(S.x >= 3)
        assert tag.kind is TagKind.THRESHOLD
        assert tag.op == ">="
        assert tag.key == 3

    def test_opaque_function_gets_none_tag(self):
        (tag,) = _tags_of(lambda: True)
        assert tag.kind is TagKind.NONE

    def test_disequality_gets_none_tag(self):
        (tag,) = _tags_of(S.x != 5)
        assert tag.kind is TagKind.NONE

    def test_equivalence_beats_threshold(self):
        # paper §2.4.1: the equivalence tag has the highest priority
        (tag,) = _tags_of((S.x > 3) & (S.y == 9))
        assert tag.kind is TagKind.EQUIVALENCE
        assert tag.key == 9

    def test_one_tag_per_conjunction(self):
        # (x = 8) & (y = 9): only one (arbitrary) equivalence tag is created
        (tag,) = _tags_of((S.x == 8) & (S.y == 9))
        assert tag.kind is TagKind.EQUIVALENCE

    def test_disjunction_tags_every_clause(self):
        tags = _tags_of(((S.x < 5) & (S.y == 3)) | (S.x > 5) | (lambda: False))
        kinds = sorted(t.kind.value for t in tags)
        assert kinds == ["equivalence", "none", "threshold"]

    def test_shared_conjunct_same_identity(self):
        # (x = 5) & (z <= 4) and (x = 5) & (y >= 4) share the x=5 tag
        (t1,) = _tags_of((S.x == 5) & (S.z <= 4))
        (t2,) = _tags_of((S.x == 5) & (S.y >= 4))
        assert t1.identity() == t2.identity()

    def test_parameterized_threshold_tags_differ_by_key(self):
        (t1,) = _tags_of(S.count >= 10)
        (t2,) = _tags_of(S.count >= 20)
        assert t1.expr_key == t2.expr_key
        assert t1.key != t2.key

    def test_unhashable_constant_falls_back_to_none(self):
        (tag,) = _tags_of(S.x >= [1, 2])   # silly but must not crash
        assert tag.kind is TagKind.NONE

    def test_conjunction_helper_matches(self):
        pred = Predicate((S.x == 1) | (S.y > 2))
        for conj, tag in zip(pred.conjunctions, tag_predicate(pred.conjunctions)):
            assert tag_conjunction(conj).identity() == tag.identity()
