"""Tests for the Chapter-6 extensions: retries, exception hooks, fairness,
priority annotations, and submitting-worker identity."""

import threading
import time

import pytest

from repro.active import ActiveMonitor, Policy, asynchronous, current_worker, synchronous
from repro.runtime.errors import TaskError


class Flaky(ActiveMonitor):
    def __init__(self, fail_times: int, **kw):
        super().__init__(**kw)
        self.attempts = 0
        self.fail_times = fail_times

    @asynchronous(retries=5)
    def eventually(self):
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise ValueError(f"attempt {self.attempts}")
        return "ok"

    @asynchronous(retries=1)
    def always_fails(self):
        self.attempts += 1
        raise RuntimeError("never works")


class TestRetries:
    def test_retry_until_success(self):
        m = Flaky(fail_times=3)
        try:
            future = m.eventually()
            assert future.get(timeout=10) == "ok"
            assert m.attempts == 4
        finally:
            m.shutdown()

    def test_exhausted_retries_deliver_failure(self):
        m = Flaky(fail_times=99)
        try:
            future = m.always_fails()
            with pytest.raises(TaskError):
                future.get(timeout=10)
            assert m.attempts == 2      # original + one retry
        finally:
            m.shutdown()

    def test_exception_handler_hook_invoked(self):
        m = Flaky(fail_times=99)
        seen = []
        try:
            m.server.exception_handler = lambda task, exc: seen.append(
                (task.name, type(exc).__name__)
            )
            future = m.always_fails()
            with pytest.raises(TaskError):
                future.get(timeout=10)
            m.flush()
            assert ("always_fails", "RuntimeError") in seen
        finally:
            m.shutdown()

    def test_broken_handler_does_not_kill_server(self):
        m = Flaky(fail_times=0)
        try:
            m.server.exception_handler = lambda task, exc: 1 / 0
            bad = m.always_fails()
            with pytest.raises(TaskError):
                bad.get(timeout=10)
            # server still serves new tasks afterwards
            m.attempts = 0
            ok = m.eventually()
            assert ok.get(timeout=10) == "ok"
        finally:
            m.shutdown()


class Identity(ActiveMonitor):
    def __init__(self):
        super().__init__()
        self.seen: list[tuple[int, int]] = []
        self.gate = False

    @asynchronous(pre=lambda self: self.gate)
    def record(self):
        # (logical worker, physical executing thread)
        self.seen.append((current_worker(), threading.get_ident()))

    @synchronous()
    def open_gate(self):
        self.gate = True


class TestWorkerIdentity:
    def test_current_worker_is_submitter_not_server(self):
        from repro.runtime import get_config

        cfg = get_config()
        saved = cfg.combining_batch
        # disable combining so the pending task provably runs on the server
        # (a combiner would legitimately execute it on the submitting thread)
        cfg.combining_batch = 0
        m = Identity()
        try:
            submitter = threading.get_ident()
            future = m.record()         # pends: gate closed
            opener = threading.Thread(target=m.open_gate, daemon=True)
            opener.start()
            opener.join(5)
            future.get(timeout=10)
            (worker, executor), = m.seen
            assert worker == submitter  # logical identity preserved
            assert executor != submitter  # body ran on another thread
        finally:
            cfg.combining_batch = saved
            m.shutdown()

    def test_current_worker_outside_task(self):
        assert current_worker() == threading.get_ident()


class FairBox(ActiveMonitor):
    def __init__(self, policy):
        super().__init__(policy=policy)
        self.gate = False
        self.order: list[str] = []

    @asynchronous(pre=lambda self, tag: self.gate)
    def step(self, tag):
        self.order.append(tag)

    @synchronous()
    def open_gate(self):
        self.gate = True


class TestFairnessPolicy:
    def test_fairness_executes_in_submission_order(self):
        m = FairBox(Policy.FAIRNESS)
        try:
            tags = ["a", "b", "c", "d"]
            for tag in tags:
                t = threading.Thread(target=lambda tag=tag: m.step(tag), daemon=True)
                t.start()
                t.join(5)
            time.sleep(0.05)
            m.open_gate()
            m.flush()
            assert m.order == tags
        finally:
            m.shutdown()
