"""Dependency-tracked relay: read/write sets, dirty filtering, memoization.

Covers the subsystem described in docs/performance.md ("Dependency-tracked
relay"): predicate read sets, per-variable write generations, the
dirty-filtered untagged scan, and — the load-bearing part — a differential
property test checking that the filtered relay wakes exactly the waiters an
exhaustive search would, over randomized schedules that include timeout- or
cancel-style abandonment and poisoned (raising) predicates.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import S
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import Waiter
from repro.resilience.watchdog import MonitorStall
from repro.runtime.config import get_config
from repro.runtime.errors import WaitTimeoutError

NV = 4  #: shared variables v0..v3 in the differential board


@pytest.fixture(autouse=True)
def _restore_tracking_config():
    cfg = get_config()
    prior = cfg.track_dependencies
    yield
    cfg.track_dependencies = prior


# --------------------------------------------------------------- read sets


def test_dsl_comparison_read_set():
    assert Predicate(S.count > 0).read_set() == frozenset({"count"})


def test_conjunction_read_set_is_the_union():
    pred = Predicate((S.a > 0) & (S.b == 1))
    assert pred.read_set() == frozenset({"a", "b"})


def test_opaque_callable_read_set_is_none():
    assert Predicate(lambda m: True).read_set() is None


def test_annotated_shared_expr_read_set():
    expr = S(lambda m: m.jobs, "jobs_len", reads=("jobs",))
    assert Predicate(expr != 0).read_set() == frozenset({"jobs"})


def test_unannotated_shared_expr_read_set_is_none():
    expr = S(lambda m: m.jobs, "jobs_len")
    assert Predicate(expr != 0).read_set() is None


# ------------------------------------------------- dirty sets & generations


class Cell(Monitor):
    def __init__(self):
        super().__init__()
        self.x = 0
        self.y = 0


def test_setattr_records_dirty_variables():
    c = Cell()
    c._dirty.clear()
    c.x = 5
    assert "x" in c._dirty
    del c.y
    assert "y" in c._dirty
    c._private = 1
    assert "_private" not in c._dirty


def test_note_write_records_in_place_mutations():
    c = Cell()
    c._dirty.clear()
    c._note_write("x")
    assert c._dirty == {"x"}


def test_relay_flushes_dirty_into_var_gens():
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        mgr.relay_signal()  # flush construction writes
        g0 = mgr.var_gens.get("x", 0)
        c.x = 1
        mgr.relay_signal()
    assert mgr.var_gens["x"] == g0 + 1
    assert not c._dirty


def test_monitor_method_exit_advances_generations():
    class Counter(Monitor):
        def __init__(self):
            super().__init__()
            self.n = 0

        def inc(self):
            self.n += 1

    c = Counter()
    before = c._cond_mgr.var_gens.get("n", 0)
    c.inc()
    c.inc()
    assert c._cond_mgr.var_gens["n"] >= before + 2


# ------------------------------------------------------- dirty filtering


def _park(mgr, lock, pred):
    w = Waiter(pred, lock)
    mgr._register(w)
    return w


def test_unrelated_write_skips_untagged_evaluation():
    get_config().track_dependencies = True
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        w = _park(mgr, c._lock, Predicate(S.x != 0))
        mgr.relay_signal()  # fresh park: evaluated once (false)
        evals = mgr.metrics.predicate_evals
        skips = mgr.metrics.relay_dirty_skips
        c.y = 7  # disjoint from w's read set
        assert mgr.relay_signal() is None
        assert mgr.metrics.predicate_evals == evals
        assert mgr.metrics.relay_dirty_skips == skips + 1
        c.x = 1  # now w's variable
        assert mgr.relay_signal() is w
        mgr._deregister(w)


def test_tracking_off_falls_back_to_exhaustive_scan():
    get_config().track_dependencies = False
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        w = _park(mgr, c._lock, Predicate(S.x != 0))
        mgr.relay_signal()
        evals = mgr.metrics.predicate_evals
        c.y = 7
        assert mgr.relay_signal() is None
        assert mgr.metrics.predicate_evals == evals + 1  # scanned anyway
        c.x = 1
        assert mgr.relay_signal() is w
        mgr._deregister(w)


def test_queued_waiters_survive_an_early_stopping_relay():
    """note_writes marks both; the relay that signals the first must leave
    the second queued — evaluated (and signaled) by the next relay even
    though no further write occurs (Prop. 2 under filtering)."""
    get_config().track_dependencies = True
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        w1 = _park(mgr, c._lock, Predicate(S.x != 0))
        w2 = _park(mgr, c._lock, Predicate(S.x != 0))
        mgr.relay_signal()  # both evaluated false, queue drained
        c.x = 1
        first = mgr.relay_signal()
        assert first in (w1, w2)
        second = mgr.relay_signal()  # no new write
        assert second in (w1, w2) and second is not first
        mgr._deregister(w1)
        mgr._deregister(w2)


def test_opaque_waiters_are_always_rechecked():
    get_config().track_dependencies = True
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        w = _park(mgr, c._lock, Predicate(lambda m: m.x > 0))
        assert mgr.relay_signal() is None
        c.x = 3
        # the write set is irrelevant for opaque read sets: even a write
        # the filter knows nothing about must reach this waiter
        assert mgr.relay_signal() is w
        mgr._deregister(w)


# ------------------------------------------------ differential (hypothesis)


class Board(Monitor):
    def __init__(self):
        super().__init__()
        for i in range(NV):
            setattr(self, f"v{i}", 0)


def _build_pred(spec) -> Predicate:
    kind = spec[0]
    if kind == "ne":
        return Predicate(getattr(S, f"v{spec[1]}") != 0)
    if kind == "diff":
        return Predicate(getattr(S, f"v{spec[1]}") > getattr(S, f"v{spec[2]}"))
    if kind == "eq":
        return Predicate(getattr(S, f"v{spec[1]}") == spec[2])
    if kind == "annot":
        i = spec[1]
        expr = S(lambda m, i=i: getattr(m, f"v{i}"), f"annot_v{i}",
                 reads=(f"v{i}",))
        return Predicate(expr != spec[2])
    if kind == "opaque":
        i, k = spec[1], spec[2]
        return Predicate(lambda m: getattr(m, f"v{i}") >= k + 1)
    assert kind == "poison"
    i = spec[1]
    # raises ZeroDivisionError while v_i == 0: the signaler must poison the
    # waiter and route the relay signal to it (it owns the failure)
    return Predicate(lambda m: 1 // getattr(m, f"v{i}") >= 0)


def _oracle_true(waiter, monitor) -> bool:
    try:
        return bool(waiter.eval_fn(monitor))
    except BaseException:
        return True  # a raising predicate absorbs the signal (poison path)


def _drive(ops, track: bool) -> list[frozenset]:
    """Apply one randomized schedule; return the set of waiters woken after
    each step.  Every relay is drained to quiescence and checked against
    the exhaustive oracle: when the (possibly filtered) relay finds nobody,
    no registered, unsignaled waiter may hold a true predicate.
    """
    get_config().track_dependencies = track
    m = Board()
    mgr = m._cond_mgr
    live: dict[int, Waiter] = {}
    log: list[frozenset] = []
    next_wid = 0
    with m._lock:
        for op in ops:
            if op[0] == "park":
                live[next_wid] = _park(mgr, m._lock, _build_pred(op[1]))
                next_wid += 1
            elif op[0] == "write":
                setattr(m, f"v{op[1]}", op[2])
            elif op[0] == "abandon" and live:
                # timeout/cancel shape: deregister, then re-run the relay
                # (the drain below) so an absorbed baton is handed on
                wid = sorted(live)[op[1] % len(live)]
                mgr._deregister(live.pop(wid))
            woken = set()
            for _ in range(len(live) + len(ops) + 2):
                w = mgr.relay_signal()
                if w is None:
                    break
                wid = next(k for k, v in live.items() if v is w)
                woken.add(wid)
                mgr._deregister(live.pop(wid))
            else:  # pragma: no cover - relay livelock
                raise AssertionError("relay never quiesced")
            for wid, w in live.items():
                assert not _oracle_true(w, m), (
                    f"waiter {wid} satisfied but not signaled "
                    f"(track_dependencies={track}, step {op})"
                )
            log.append(frozenset(woken))
    return log


_pred_spec = st.one_of(
    st.tuples(st.just("ne"), st.integers(0, NV - 1)),
    st.tuples(st.just("diff"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
    st.tuples(st.just("eq"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("annot"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("opaque"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("poison"), st.integers(0, NV - 1)),
)

_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("park"), _pred_spec),
    st.tuples(st.just("abandon"), st.integers(0, 7)),
)


@settings(max_examples=80, deadline=None)
@given(st.lists(_op, min_size=1, max_size=30))
def test_filtered_relay_matches_exhaustive_search(ops):
    """The dirty-filtered relay wakes exactly the waiters the exhaustive
    scan wakes, step for step, on schedules mixing parks, writes,
    abandonment, and poisoned predicates."""
    assert _drive(ops, track=True) == _drive(ops, track=False)


# ------------------------------------------------------------ real threads


def test_threaded_untagged_waiters_all_wake():
    class Flags(Monitor):
        def __init__(self):
            super().__init__()
            self.flag0 = 0
            self.flag1 = 0

        def raise_flag(self, i):
            setattr(self, f"flag{i}", 1)

        def await_flag(self, i):
            self.wait_until(getattr(S, f"flag{i}") != 0)

    get_config().track_dependencies = True
    f = Flags()
    done = []
    threads = [
        threading.Thread(target=lambda i=i: (f.await_flag(i % 2), done.append(i)))
        for i in range(6)
    ]
    for t in threads:
        t.start()
    f.raise_flag(0)
    f.raise_flag(1)
    for t in threads:
        t.join(timeout=10.0)
    assert sorted(done) == list(range(6))


def test_timeout_abandonment_under_filtering():
    class Flags(Monitor):
        def __init__(self):
            super().__init__()
            self.flag = 0

        def await_never(self):
            self.wait_until(S.flag == 999, timeout=0.05)

    get_config().track_dependencies = True
    f = Flags()
    with pytest.raises(WaitTimeoutError):
        f.await_never()
    assert f._cond_mgr.waiting_count() == 0


# ----------------------------------------------------- TagIndex heap churn


def test_threshold_heap_churn_stays_bounded():
    """10k park/unpark cycles with distinct threshold keys must not grow
    the heap: prune_empty rebuilds when stale records outnumber live ones
    2:1, so both the heap and the record table stay O(live)."""
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        for i in range(10_000):
            w = Waiter(Predicate(S.x >= i + 1), c._lock)
            mgr._register(w)
            mgr._deregister(w)
    assert mgr.index.heaps, "threshold predicates never reached the index"
    for heap in mgr.index.heaps.values():
        assert heap._live == 0
        assert len(heap._heap) <= 4, f"heap grew to {len(heap._heap)} entries"
        assert len(heap._records) <= 4


# --------------------------------------------------------- observability


def test_dump_waiters_reports_read_sets_and_generations():
    c = Cell()
    mgr = c._cond_mgr
    with c._lock:
        w = _park(mgr, c._lock, Predicate(S.x != 0))
        c.x = 2
        mgr.relay_signal()
        lines = mgr.dump_waiters()
        mgr._deregister(w)
    assert len(lines) == 1
    assert "reads={x}" in lines[0]
    assert "'x': " in lines[0]  # per-variable generation map


def test_monitor_stall_describe_includes_var_gens():
    stall = MonitorStall(
        monitor_id=7, monitor_class="Cell", generation=3, quiet_seconds=1.5,
        depth=0, broken=False, waiters=[], global_waiters=0,
        queue_depth=None, pending=None, server_alive=None,
        var_gens={"jobs": 4, "done": 0},
    )
    text = stall.describe()
    assert "write generations: done=0 jobs=4" in text
