"""Tests for the preprocessor: natural waituntil syntax → DSL rewriting."""

import threading
import time

import pytest

from repro.core import Monitor
from repro.core.tags import TagKind, tag_predicate
from repro.preprocess import monitor_compile, waituntil
from repro.runtime.errors import PredicateError


@monitor_compile
class CompiledQueue(Monitor):
    def __init__(self, capacity):
        super().__init__()
        self.items = []
        self.capacity = capacity
        self.count = 0

    def put(self, item):
        waituntil(self.count < self.capacity)
        self.items.append(item)
        self.count += 1

    def take(self):
        waituntil(self.count > 0)
        self.count -= 1
        return self.items.pop(0)

    def take_many(self, num):
        waituntil(self.count >= num)
        out, self.items = self.items[:num], self.items[num:]
        self.count -= num
        return out


@monitor_compile
class CompiledBoard(Monitor):
    def __init__(self):
        super().__init__()
        self.x = 0
        self.y = 0
        self.items = []

    def step(self, who):
        waituntil(self.x == who)
        self.x += 1

    def wait_both(self, a, b):
        waituntil(self.x >= a and self.y >= b)
        return self.x, self.y

    def wait_either(self, a, b):
        waituntil(self.x >= a or self.y >= b)

    def wait_not_empty(self):
        waituntil(not (self.x == 0))

    def wait_len(self, k):
        waituntil(len(self.items) >= k)
        return len(self.items)

    def wait_chain(self, lo, hi):
        waituntil(lo <= self.x < hi)
        return self.x

    def poke(self, x=None, y=None, item=None):
        if x is not None:
            self.x = x
        if y is not None:
            self.y = y
        if item is not None:
            self.items.append(item)


def _spawn(fn, *args):
    t = threading.Thread(target=fn, args=args, daemon=True)
    t.start()
    return t


class TestBasicRewrite:
    def test_queue_works_end_to_end(self):
        q = CompiledQueue(4)
        got = []
        producer = _spawn(lambda: [q.put(i) for i in range(50)])
        consumer = _spawn(lambda: [got.append(q.take()) for _ in range(50)])
        producer.join(15)
        consumer.join(15)
        assert got == list(range(50))

    def test_parameterized_threshold(self):
        q = CompiledQueue(100)
        out = []
        waiter = _spawn(lambda: out.append(q.take_many(5)))
        time.sleep(0.05)
        for i in range(5):
            q.put(i)
        waiter.join(10)
        assert out == [[0, 1, 2, 3, 4]]

    def test_predicates_are_tagged(self):
        """The whole point: rewritten predicates get Equivalence/Threshold
        tags instead of opaque None tags."""
        from repro.core.predicates import Predicate
        from repro.core.expressions import S

        # reproduce what the rewritten take() builds
        q = CompiledQueue(4)
        waiters_tags = []

        def observer():
            q.take()

        t = _spawn(observer)
        time.sleep(0.05)
        with q._lock:
            records = list(q._cond_mgr.index.heaps.values())
            waiters_tags = [len(h) for h in records]
        q.put("x")
        t.join(10)
        assert any(waiters_tags), "take()'s waituntil must land in a threshold heap"


class TestBooleanRewrites:
    def test_and(self):
        b = CompiledBoard()
        out = []
        t = _spawn(lambda: out.append(b.wait_both(2, 3)))
        time.sleep(0.05)
        b.poke(x=2)
        time.sleep(0.05)
        assert not out
        b.poke(y=3)
        t.join(10)
        assert out == [(2, 3)]

    def test_or(self):
        b = CompiledBoard()
        t = _spawn(lambda: b.wait_either(5, 1))
        time.sleep(0.05)
        b.poke(y=1)
        t.join(10)
        assert not t.is_alive()

    def test_not(self):
        b = CompiledBoard()
        t = _spawn(b.wait_not_empty)
        time.sleep(0.05)
        b.poke(x=7)
        t.join(10)
        assert not t.is_alive()

    def test_comparison_chain(self):
        b = CompiledBoard()
        out = []
        t = _spawn(lambda: out.append(b.wait_chain(3, 6)))
        time.sleep(0.05)
        b.poke(x=9)       # above the chain's upper bound
        time.sleep(0.05)
        assert not out
        b.poke(x=4)
        t.join(10)
        assert out == [4]

    def test_equivalence_tagging_survives(self):
        b = CompiledBoard()
        done = []
        ts = [_spawn(lambda k=k: (b.step(k), done.append(k))) for k in range(1, 4)]
        time.sleep(0.05)
        b.poke(x=1)       # unleash the chain 1 → 2 → 3
        for t in ts:
            t.join(10)
        assert sorted(done) == [1, 2, 3]


class TestComputedExpressions:
    def test_len_call_becomes_shared_expr(self):
        b = CompiledBoard()
        out = []
        t = _spawn(lambda: out.append(b.wait_len(2)))
        time.sleep(0.05)
        b.poke(item="a")
        time.sleep(0.05)
        assert not out
        b.poke(item="b")
        t.join(10)
        assert out == [2]


class TestErrors:
    def test_raw_waituntil_raises(self):
        with pytest.raises(PredicateError):
            waituntil(True)

    def test_requires_monitor_subclass(self):
        with pytest.raises(PredicateError):
            @monitor_compile
            class NotAMonitor:
                pass

    def test_untouched_methods_keep_identity(self):
        # poke has no waituntil: it must not be recompiled
        assert CompiledBoard.poke.__wrapped__.__qualname__.endswith("poke")

    def test_exec_defined_class_raises_clear_error(self):
        # inspect.getsource fails for exec()/REPL-built classes; a method
        # that calls waituntil must fail at decoration time, not at runtime
        namespace = {
            "Monitor": Monitor,
            "monitor_compile": monitor_compile,
            "waituntil": waituntil,
        }
        source = (
            "class ReplBoard(Monitor):\n"
            "    def wait_ready(self):\n"
            "        waituntil(self.x > 0)\n"
        )
        exec(source, namespace)
        with pytest.raises(PredicateError, match="cannot retrieve source"):
            monitor_compile(namespace["ReplBoard"])

    def test_exec_defined_class_without_waituntil_is_fine(self):
        namespace = {"Monitor": Monitor}
        exec(
            "class PlainBoard(Monitor):\n"
            "    def poke(self):\n"
            "        return 1\n",
            namespace,
        )
        cls = monitor_compile(namespace["PlainBoard"])
        assert cls().poke() == 1


class TestClosureRejection:
    def test_method_closing_over_enclosing_scope_rejected(self):
        threshold = 5

        with pytest.raises(PredicateError):
            @monitor_compile
            class Closes(Monitor):
                def wait_it(self):
                    waituntil(self.x >= threshold)   # closes over `threshold`


@monitor_compile
class LoopedBoard(Monitor):
    def __init__(self):
        super().__init__()
        self.x = 0

    def bump(self):
        self.x += 1

    def wait_twice(self):
        for target in (1, 2):
            waituntil(self.x >= target)
        return self.x

    def wait_in_branch(self, fast):
        if fast:
            return self.x
        waituntil(self.x >= 1)
        return self.x


class TestControlFlowPlacement:
    def test_waituntil_inside_loop(self):
        b = LoopedBoard()
        out = []
        t = _spawn(lambda: out.append(b.wait_twice()))
        time.sleep(0.05)
        b.bump()
        b.bump()
        t.join(10)
        assert out and out[0] >= 2

    def test_waituntil_inside_conditional(self):
        b = LoopedBoard()
        assert b.wait_in_branch(True) == 0
        t = _spawn(lambda: b.wait_in_branch(False))
        time.sleep(0.05)
        b.bump()
        t.join(10)
        assert not t.is_alive()
