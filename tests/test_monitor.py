"""Unit + stress tests for the automatic-signal Monitor base class."""

import threading
import time

import pytest

from repro.core import Monitor, S, synchronized, unmonitored
from repro.runtime.errors import MonitorError, NotOwnerError


class Counter(Monitor):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.value = 0
        self.trace = []

    def increment(self):
        v = self.value
        self.trace.append(("r", v))
        self.value = v + 1

    def add_slowly(self, n):
        v = self.value
        time.sleep(0.0005)
        self.value = v + n

    def wait_for(self, target):
        self.wait_until(S.value >= target)
        return self.value

    def reentrant_outer(self):
        return self.reentrant_inner() + 1

    def reentrant_inner(self):
        return self.value

    @unmonitored
    def raw_peek(self):
        return self.value


class TestMutualExclusion:
    def test_methods_are_atomic(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.add_slowly(1) for _ in range(20)], daemon=True)
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert c.value == 80

    def test_reentrancy(self):
        c = Counter()
        c.value = 5
        assert c.reentrant_outer() == 6

    def test_unmonitored_method_not_wrapped(self):
        c = Counter()
        assert not getattr(Counter.raw_peek, "_repro_wrapped", False)
        assert c.raw_peek() == 0

    def test_monitor_ids_unique_and_increasing(self):
        a, b = Counter(), Counter()
        assert b.monitor_id > a.monitor_id

    def test_unknown_signaling_mode_rejected(self):
        with pytest.raises(MonitorError):
            Counter(signaling="nonsense")


class TestWaitUntil:
    @pytest.mark.parametrize("mode", ["autosynch", "autosynch_t", "baseline"])
    def test_wakeup_on_condition(self, mode):
        c = Counter(signaling=mode)
        results = []

        def waiter():
            results.append(c.wait_for(3))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        for _ in range(3):
            c.increment()
        t.join(10)
        assert not t.is_alive()
        assert results == [3]

    def test_wait_outside_monitor_rejected(self):
        c = Counter()
        with pytest.raises(NotOwnerError):
            c.wait_until(S.value > 0)

    def test_immediately_true_predicate_does_not_block(self):
        c = Counter()
        c.value = 10
        assert c.wait_for(5) == 10
        assert c.metrics.waits == 0

    def test_callable_predicate(self):
        c = Counter()
        done = []

        class Waiting(Counter):
            def go(self):
                self.wait_until(lambda: self.value >= 2)
                done.append(self.value)

        w = Waiting()
        t = threading.Thread(target=w.go, daemon=True)
        t.start()
        time.sleep(0.05)
        w.increment()
        w.increment()
        t.join(10)
        assert done and done[0] >= 2

    def test_nested_wait_with_true_predicate_allowed(self):
        class Nested(Counter):
            def outer(self):
                return self.inner()

            def inner(self):
                self.wait_until(S.value >= 0)   # trivially true
                return self.value

        n = Nested()
        assert n.outer() == 0

    def test_nested_blocking_wait_rejected(self):
        class Nested(Counter):
            def outer(self):
                return self.inner()

            def inner(self):
                self.wait_until(S.value >= 99)   # would block at depth 2
                return self.value

        n = Nested()
        with pytest.raises(MonitorError):
            n.outer()

    def test_signal_hint_requires_lock(self):
        c = Counter()
        with pytest.raises(NotOwnerError):
            c.signal_hint()


class TestSynchronizedContext:
    def test_adhoc_section(self):
        c = Counter()
        with synchronized(c):
            c.value = 7
        assert c.value == 7

    def test_wait_inside_section(self):
        c = Counter()

        def filler():
            time.sleep(0.05)
            c.increment()

        t = threading.Thread(target=filler, daemon=True)
        t.start()
        with synchronized(c):
            c.wait_until(S.value >= 1)
        t.join(5)
        assert c.value == 1


class TestRelayInvariance:
    @pytest.mark.parametrize("mode", ["autosynch", "autosynch_t", "baseline"])
    def test_no_lost_signals_under_stress(self, mode):
        """Many waiters on distinct equivalence keys, served in order."""
        c = Counter(signaling=mode)
        n = 12
        done = []

        def stepper(k):
            c.wait_for(k)
            done.append(k)
            c.increment()

        threads = [threading.Thread(target=stepper, args=(k,), daemon=True) for k in range(1, n + 1)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        c.increment()   # value=1 unleashes the chain
        for t in threads:
            t.join(30)
        assert not any(t.is_alive() for t in threads)
        assert sorted(done) == list(range(1, n + 1))

    def test_single_signals_no_broadcast(self):
        c = Counter(signaling="autosynch")
        t = threading.Thread(target=lambda: c.wait_for(1), daemon=True)
        t.start()
        time.sleep(0.05)
        c.increment()
        t.join(10)
        snap = c.metrics.snapshot()
        assert snap["broadcasts"] == 0
        assert snap["signals"] >= 1

    def test_baseline_broadcasts(self):
        c = Counter(signaling="baseline")
        t = threading.Thread(target=lambda: c.wait_for(1), daemon=True)
        t.start()
        time.sleep(0.05)
        c.increment()
        t.join(10)
        assert c.metrics.snapshot()["broadcasts"] >= 1


class TestMetricsSurface:
    def test_waits_and_wakeups_counted(self):
        c = Counter()
        t = threading.Thread(target=lambda: c.wait_for(2), daemon=True)
        t.start()
        time.sleep(0.05)
        c.increment()
        c.increment()
        t.join(10)
        snap = c.metrics.snapshot()
        assert snap["waits"] == 1
        assert snap["wakeups"] >= 1

    def test_waiting_count_settles_to_zero(self):
        c = Counter()
        t = threading.Thread(target=lambda: c.wait_for(1), daemon=True)
        t.start()
        time.sleep(0.05)
        assert c.waiting_count() == 1
        c.increment()
        t.join(10)
        assert c.waiting_count() == 0
