"""Lint fixture: W003 — shared-state writes outside a monitor section."""

from repro.core import Monitor, unmonitored


class Tally(Monitor):
    def __init__(self):
        super().__init__()
        self.count = 0

    def bump(self):
        self.count += 1

    @unmonitored
    def reset(self):
        # write without the monitor lock: no exiting thread will relay a
        # signal for waiters this unblocks
        self.count = 0


def drain(tally: Tally) -> None:
    # direct write from plain code, outside any synchronized section
    tally.count = -1
