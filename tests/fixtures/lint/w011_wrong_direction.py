"""Lint fixture: W011 — threshold approached from the wrong direction.

``await_refill()`` needs ``remaining`` to climb back to 10, but every
write site is a constant decrement: the variable moves monotonically away
from the threshold and the wait can never terminate.
"""

from repro.core import Monitor, S


class Countdown(Monitor):
    def __init__(self):
        super().__init__()
        self.remaining = 10

    def tick(self):
        self.remaining -= 1

    def await_refill(self):
        self.wait_until(S.remaining >= 10)
        self.remaining -= 2
