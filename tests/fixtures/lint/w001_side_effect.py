"""Lint fixture: W001 — non-closed waituntil predicates (side effects)."""

from repro.core import Monitor
from repro.preprocess import monitor_compile, waituntil


@monitor_compile
class LossyQueue(Monitor):
    def __init__(self):
        super().__init__()
        self.items = []
        self.count = 0

    def take_destructively(self):
        # mutating method call inside the predicate: every evaluation by
        # the condition manager pops an element
        waituntil(self.items.pop() is not None)
        self.count -= 1

    def refresh(self):
        # assignment expression inside the predicate
        waituntil((n := self.count) > 0)
        return n
