"""Lint fixture: W007 — in-place writes invisible to dependency tracking."""

from repro.core import Monitor, S


class JobQueue(Monitor):
    def __init__(self):
        super().__init__()
        self.jobs = []
        self.closed = False

    def put(self, job):
        # bypasses the tracking proxy; take()'s predicate reads `jobs`
        self.jobs.append(job)

    def take(self):
        self.wait_until(
            S(lambda m: len(m.jobs) > 0, "jobs_nonempty", reads=("jobs",))
        )
        # same problem on the consumer side
        return self.jobs.pop(0)

    def close(self):
        self.closed = True          # fine: plain rebind, proxy sees it

    def reset(self):
        self._note_write("jobs")    # manual note: the write below is visible
        self.jobs.clear()
