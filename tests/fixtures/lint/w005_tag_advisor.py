"""Lint fixture: W005 — structurally taggable predicates left opaque."""

from repro.core import Monitor


class Cell(Monitor):
    def __init__(self):
        super().__init__()
        self.value = 0
        self.ready = False

    def produce(self):
        # keeps the liveness pass (W010/W011) satisfied: value moves up
        # and ready is written by a reachable section
        self.value += 1
        self.ready = True

    def consume(self):
        # opaque lambda, but the body is `shared > constant`: a Threshold
        # tag away from O(1) relay signaling
        self.wait_until(lambda: self.value > 0)
        self.value -= 1

    def await_flag(self):
        # plain comparison evaluates eagerly to a bool; S.ready == True
        # would build a taggable predicate instead
        self.wait_until(self.ready == True)  # noqa: E712
