"""Lint fixture: W006 — unbounded blocking waits under the monitor lock."""

from repro.active import ActiveMonitor, asynchronous
from repro.core import Monitor


class Journal(ActiveMonitor):
    def __init__(self):
        super().__init__()
        self.log = []

    @asynchronous()
    def append(self, entry):
        self.log.append(entry)


class Coordinator(Monitor):
    def __init__(self):
        super().__init__()
        self.journal = Journal()
        self.done = 0

    def record(self, entry):
        # the journal executor may be parked behind Coordinator's lock
        future = self.journal.append(entry)
        future.get()  # W006: unbounded get under the monitor lock
        self.done += 1

    def record_chained(self, entry):
        self.journal.append(entry).get()  # W006: chained, same hazard

    def checkpoint(self):
        self.journal.flush()              # W006: no explicit bound
        self.journal.flush(timeout=None)  # W006: explicitly unbounded flush

    def record_bounded(self, entry):
        # bounded waits are allowed (they stall at worst, never hang)
        self.journal.append(entry).get(timeout=1.0)
        self.journal.flush(timeout=2.0)

    def record_suppressed(self, entry):
        self.journal.append(entry).get()  # monlint: disable=W006 — harness bounds the run
