"""Lint fixture: W010 (hint) — an unannotated ``S(fn, name)`` expression.

Without ``reads=``, the shared expression's read set is opaque: the
dependency-filtered relay must re-evaluate it on every exit, and the
liveness pass cannot check the wait at all.  The fix is one annotation:
``S(lambda m: m.level >= m.capacity, "full", reads=("level", "capacity"))``.
"""

from repro.core import Monitor, S


class Tank(Monitor):
    def __init__(self):
        super().__init__()
        self.level = 0
        self.capacity = 10

    def fill(self, amount):
        self.level += amount

    def drain(self):
        self.wait_until(S(lambda m: m.level >= m.capacity, "full"))
        self.level = 0
