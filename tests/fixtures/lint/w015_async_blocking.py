"""Fixture: blocking monitor-stack calls in coroutines — W015 only."""

import asyncio

from repro.active import ActiveMonitor, asynchronous
from repro.core import Monitor, S, synchronized
from repro.aio import AsyncMonitorClient, await_future


class Journal(ActiveMonitor):
    def __init__(self):
        super().__init__()
        self.log = []

    @asynchronous()
    def append(self, entry):
        self.log.append(entry)


class Box(Monitor):
    def __init__(self):
        super().__init__()
        self.count = 0

    def put(self):
        self.count += 1

    def take(self):
        self.wait_until(S.count > 0)
        self.count -= 1


async def drain(journal: Journal):
    future = journal.append("x")
    future.get(timeout=1.0)       # W015: bounded or not, the loop blocks
    journal.append("y").get()     # W015: chained, same hazard
    journal.flush(timeout=2.0)    # W015: blocks until the server drains


async def poll(box: Box):
    box.wait_until(S.count > 0)   # W015: parks the loop under the lock


async def section(box: Box):
    with synchronized(box):       # W015: monitor entry on the loop thread
        pass


async def clean(box: Box, journal: Journal):
    # the non-blocking forms: awaited client calls and awaited futures
    client = AsyncMonitorClient(box)
    await client.wait_until(S.count > 0)
    await await_future(journal.append("z"), timeout=1.0)
    # nested defs may run on executor threads, where blocking is the point
    def register():
        box.wait_until(S.count > 0)
    await asyncio.get_running_loop().run_in_executor(None, register)


async def suppressed(journal: Journal):
    journal.append("w").get()  # monlint: disable=W015 — one-shot script, loop idle
