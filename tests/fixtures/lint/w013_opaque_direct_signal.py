"""Lint fixture: W013 (hint) — an opaque read set blocks direct signaling.

The class is ``@monitor_compile``d and ``refill``/``take`` earn AOT signal
plans (their write sets close statically over ``stock``), so their section
exits signal directly and skip the relay search.  But ``take``'s wait
predicate is a method call — an opaque read set — so every one of those
direct exits must re-evaluate it anyway.  Writing the condition over
``self.stock`` (or annotating ``reads=`` on a shared expression) lets the
AOT matcher route it through the written-variable buckets instead.
"""

from repro.core import Monitor
from repro.preprocess import monitor_compile, waituntil


@monitor_compile
class Shelf(Monitor):
    def __init__(self):
        super().__init__()
        self.stock = 0

    def refill(self, n):
        self.stock += n

    def take(self):
        waituntil(self._has_stock())
        self.stock -= 1

    def _has_stock(self):
        return self.stock > 0
