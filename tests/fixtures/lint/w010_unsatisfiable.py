"""Lint fixture: W010 — a wait whose variable no reachable section writes.

``released`` is assigned only in ``__init__``, which runs before any
thread can wait: the signal obligation created by ``enter()`` can never
be discharged, so every waiter stalls forever.
"""

from repro.core import Monitor, S


class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.released = False
        self.entered = 0

    def enter(self):
        self.wait_until(S.released == True)  # noqa: E712 — DSL comparison
        self.entered += 1
