"""Fixture: counters relying on GIL atomicity — should trigger W014 only."""

import itertools

_tickets = itertools.count()

_hits = 0


def record_hit():
    global _hits
    _hits += 1


def draw_ticket():
    return next(_tickets)
