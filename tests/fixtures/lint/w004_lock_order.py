"""Lint fixture: W004 — nested / hand-ordered multi-monitor acquisition."""

from repro.core import Monitor, synchronized
from repro.multi import multisynch


class Left(Monitor):
    def __init__(self, peer: "Right"):
        super().__init__()
        self.peer = peer

    def poke(self):
        self.peer.poke()  # acquires Right while holding Left


class Right(Monitor):
    def __init__(self, peer: Left):
        super().__init__()
        self.peer = peer

    def poke(self):
        self.peer.poke()  # acquires Left while holding Right → cycle


def hand_over_hand(a: Left, b: Right) -> None:
    with synchronized(a):
        with synchronized(b):  # hand-ordered two-lock acquisition
            pass


def doubly_nested(a: Left, b: Right) -> None:
    with multisynch(a):
        with multisynch(b):  # nested multisynch defeats the global order
            pass


def raw_lock(a: Left) -> None:
    with a._lock:  # bypasses the monitor protocol entirely
        pass
