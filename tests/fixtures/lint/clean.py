"""Lint fixture: a well-behaved monitor — zero findings expected."""

from repro.core import Monitor, S
from repro.multi import local, multisynch


class GoodQueue(Monitor):
    def __init__(self, capacity: int):
        super().__init__()
        self.items = []
        self.capacity = capacity
        self.count = 0

    def put(self, item) -> None:
        self.wait_until(S.count < S.capacity)
        self.items.append(item)
        self.count += 1

    def take(self):
        self.wait_until(S.count > 0)
        self.count -= 1
        return self.items.pop(0)


def transfer(src: GoodQueue, dst: GoodQueue) -> None:
    with multisynch(src, dst) as ms:
        ms.wait_until(local(src, S.count > 0) & local(dst, S.count < S.capacity))
        dst.put(src.take())
