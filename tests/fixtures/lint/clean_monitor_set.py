"""Lint fixture: MonitorSet / cached-tuple multisynch routing — zero findings.

W004 must recognize that ``monitor_set(...).synch()`` and stored multisynch
block handles acquire through the same globally-ordered ascending-id path as
a literal ``with multisynch(...)``.
"""

from repro.core import Monitor, S
from repro.multi import local, monitor_set, multisynch


class Cell(Monitor):
    def __init__(self):
        super().__init__()
        self.value = 0

    def bump(self) -> None:
        self.value += 1


def pooled_transfer(a: Cell, b: Cell) -> None:
    ms = monitor_set(a, b)
    with ms.synch() as block:
        block.wait_until(local(a, S.value > 0) & local(b, S.value < 10))
        a.value -= 1
        b.value += 1


def inline_synch(a: Cell, b: Cell) -> None:
    with monitor_set(a, b).synch():
        a.value += 1
        b.value += 1


def stored_block(a: Cell, b: Cell) -> None:
    block = multisynch(a, b)
    with block:
        a.value += 1
        b.value += 1
