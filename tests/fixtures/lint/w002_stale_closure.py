"""Lint fixture: W002 — stale closure (captured local rebound after wait)."""

from repro.core import Monitor, S


class TicketGate(Monitor):
    def __init__(self):
        super().__init__()
        self.serving = 0
        self.done = 0

    def advance(self, ticket):
        self.wait_until(S.serving == ticket)
        # `ticket` was frozen into the predicate above; rebinding it here
        # before the shared-state update suggests the author expected the
        # predicate to track the new value
        ticket = ticket + 1
        self.serving = ticket
        self.done += 1
