"""Lint fixture: W012 — the sole satisfying write skipped on exception.

``load()`` holds the only write that can discharge ``consume()``'s
obligation, but it sits after a statement that can raise, inside a try
whose handler swallows the exception.  With ``poison_on_exception`` off,
a bad ``raw`` value means the section exits cleanly without writing
``loaded`` — and the consumer parks forever.
"""

from repro.core import Monitor, S


class Loader(Monitor):
    def __init__(self):
        super().__init__()
        self.raw = "0"
        self.loaded = False
        self.value = 0

    def load(self):
        try:
            self.value = int(self.raw)
            self.loaded = True
        except ValueError:
            pass  # swallowed: the write above never happened

    def consume(self):
        self.wait_until(S.loaded == True)  # noqa: E712 — DSL comparison
        return self.value
