"""Stateful model-based testing (hypothesis RuleBasedStateMachine).

Drives the AutoSynch bounded queue single-threadedly against a plain deque
model — puts/takes only when their guards hold (so nothing blocks) — and
checks FIFO content, counters, and metrics invariants after every step.
"""

from collections import deque

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.problems.bounded_buffer import AutoBoundedQueue

CAPACITY = 5


class BoundedQueueMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.queue = AutoBoundedQueue(CAPACITY)
        self.model: deque = deque()

    @precondition(lambda self: len(self.model) < CAPACITY)
    @rule(item=st.integers())
    def put(self, item):
        self.queue.put(item)
        self.model.append(item)

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def take(self):
        got = self.queue.take()
        want = self.model.popleft()
        assert got == want

    @invariant()
    def count_matches_model(self):
        assert self.queue.count == len(self.model)

    @invariant()
    def no_waiters_single_threaded(self):
        assert self.queue.waiting_count() == 0

    @invariant()
    def never_blocked(self):
        # single-threaded guarded driving ⇒ no waits, no signals needed
        snap = self.queue.metrics.snapshot()
        assert snap["waits"] == 0
        assert snap["futile_wakeups"] == 0


TestBoundedQueueModel = BoundedQueueMachine.TestCase
TestBoundedQueueModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class ParamQueueMachine(RuleBasedStateMachine):
    """Same idea for the parameterized queue (threshold-tag predicates)."""

    def __init__(self):
        super().__init__()
        from repro.problems.param_bounded_buffer import AutoParamQueue

        self.capacity = 20
        self.queue = AutoParamQueue(self.capacity)
        self.level = 0

    @rule(n=st.integers(1, 6))
    def put_batch(self, n):
        if self.level + n <= self.capacity:
            self.queue.put(n)
            self.level += n

    @rule(n=st.integers(1, 6))
    def take_batch(self, n):
        if self.level >= n:
            self.queue.take(n)
            self.level -= n

    @invariant()
    def count_in_bounds(self):
        assert self.queue.count == self.level
        assert 0 <= self.queue.count <= self.capacity


TestParamQueueModel = ParamQueueMachine.TestCase
TestParamQueueModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
