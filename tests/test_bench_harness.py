"""Unit tests for the bench harness and the CLI."""

import pytest

from repro.bench.harness import Series, scale, sim_thread_counts, table, thread_counts, work_scale


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert scale() == "quick"

    def test_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert scale() == "full"
        assert 256 in thread_counts()
        assert work_scale(1, 99) == 99

    def test_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        assert scale() == "quick"

    def test_quick_counts_small(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert max(thread_counts()) <= 8
        assert max(sim_thread_counts()) >= 32   # simulator scales regardless


class TestSeries:
    def test_render_contains_all_series(self, capsys):
        fig = Series("T", "x", [1, 2])
        fig.add("a", [0.5, 1.5])
        fig.add("b", [3, 4])
        text = fig.render()
        assert "T" in text and "a" in text and "b" in text
        assert "0.500" in text
        fig.show()
        assert "T" in capsys.readouterr().out

    def test_notes_rendered(self):
        fig = Series("T", "x", [1])
        fig.add("a", [1])
        fig.notes = "remember this"
        assert "remember this" in fig.render()

    def test_table_renders(self, capsys):
        text = table("My Table", ["col1", "col2"], [["a", 1], ["b", 2]])
        assert "My Table" in text and "col1" in text
        assert capsys.readouterr().out


class TestCLI:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2_4" in out and "sim_fig4_7" in out

    def test_unknown_target(self, capsys):
        from repro.bench.__main__ import main

        assert main(["not_a_fig"]) == 2

    def test_no_args_prints_help(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 2

    def test_runs_one_cheap_target(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table3_1_2"]) == 0
        assert "Table 3.1" in capsys.readouterr().out

    def test_report_combines_results(self, tmp_path, monkeypatch, capsys):
        from repro.bench.__main__ import main

        # point the report at a fabricated results directory
        import repro.bench.__main__ as cli
        import pathlib

        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "fig_test.txt").write_text("== Fig test ==\nrow 1\n")

        def fake_write_report():
            sections = sorted(results.glob("*.txt"))
            out = results / "REPORT.md"
            out.write_text("\n".join(p.read_text() for p in sections))
            print(f"wrote {out} ({len(sections)} sections)")
            return 0

        monkeypatch.setattr(cli, "write_report", fake_write_report)
        assert main(["--report"]) == 0
        assert (results / "REPORT.md").exists()

    def test_report_real_invocation(self, capsys):
        """--report against the actual results dir (created by bench runs)."""
        import pathlib

        from repro.bench.__main__ import write_report

        results = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        if not any(results.glob("*.txt")):
            import pytest as _pytest

            _pytest.skip("no recorded results yet")
        assert write_report() == 0
        assert (results / "REPORT.md").exists()
