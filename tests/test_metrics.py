"""Unit tests for the instrumentation substrate."""

import threading
import time

from repro.runtime.metrics import Metrics, PhaseTimer, global_metrics


class TestCounters:
    def test_bump_and_add(self):
        m = Metrics()
        m.bump("signals")
        m.add("signals", 2)
        assert m.signals == 3

    def test_snapshot_is_a_copy(self):
        m = Metrics()
        m.bump("waits")
        snap = m.snapshot()
        m.bump("waits")
        assert snap["waits"] == 1

    def test_reset_zeroes_everything(self):
        m = Metrics()
        m.bump("signals")
        m.add_time("tag_time", 1.5)
        m.reset()
        snap = m.snapshot()
        assert all(v == 0 for v in snap.values())

    def test_merge_from(self):
        a, b = Metrics(), Metrics()
        a.bump("signals", 2)
        b.bump("signals", 3)
        b.add_time("relay_time", 0.5)
        a.merge_from(b)
        assert a.signals == 5
        assert a.relay_time == 0.5

    def test_concurrent_add_is_safe(self):
        m = Metrics()

        def bump_many():
            for _ in range(1000):
                m.add("wakeups")

        threads = [threading.Thread(target=bump_many, daemon=True) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert m.wakeups == 4000


class TestPhaseTimer:
    def test_disabled_timer_is_noop(self):
        m = Metrics()
        with PhaseTimer(m, "lock_time", enabled=False):
            time.sleep(0.01)
        assert m.lock_time == 0.0

    def test_enabled_timer_accumulates(self):
        m = Metrics()
        with PhaseTimer(m, "lock_time", enabled=True):
            time.sleep(0.01)
        with PhaseTimer(m, "lock_time", enabled=True):
            time.sleep(0.01)
        assert m.lock_time >= 0.015

    def test_global_metrics_exists(self):
        assert isinstance(global_metrics, Metrics)
