"""Property tests for the relay search: the tag-accelerated search finds a
satisfied waiter exactly when one exists, for arbitrary predicate mixes.

Runs the ConditionManager sequentially (no threads): we register fabricated
waiters directly and invoke ``_find_satisfied_waiter`` against random monitor
states, comparing with brute force.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Monitor, S
from repro.core.condition_manager import ConditionManager
from repro.core.predicates import Predicate
from repro.core.tags import tag_predicate
from repro.core.waiter import Waiter
from repro.runtime.metrics import Metrics


class Plain:
    """Bare state object standing in for a monitor."""

    def __init__(self, x=0, y=0):
        self.x = x
        self.y = y


def _manager(mode: str) -> ConditionManager:
    return ConditionManager(Plain(), threading.RLock(), Metrics(), mode)


def _register(mgr: ConditionManager, condition) -> Waiter:
    waiter = Waiter(Predicate(condition), mgr.lock)
    mgr._register(waiter)
    return waiter


_atom_kinds = st.sampled_from(["eq_x", "eq_y", "ge_x", "le_x", "ge_y", "fn"])


def _make_condition(kind: str, const: int):
    if kind == "eq_x":
        return S.x == const
    if kind == "eq_y":
        return S.y == const
    if kind == "ge_x":
        return S.x >= const
    if kind == "le_x":
        return S.x <= const
    if kind == "ge_y":
        return S.y >= const
    return lambda m, const=const: (m.x + m.y) % 3 == const % 3


@settings(max_examples=150, deadline=None)
@given(
    mode=st.sampled_from(["autosynch", "autosynch_t"]),
    specs=st.lists(st.tuples(_atom_kinds, st.integers(-3, 3)), min_size=1, max_size=10),
    x=st.integers(-4, 4),
    y=st.integers(-4, 4),
)
def test_search_agrees_with_bruteforce(mode, specs, x, y):
    mgr = _manager(mode)
    waiters = [_register(mgr, _make_condition(k, c)) for k, c in specs]
    mgr.monitor.x = x
    mgr.monitor.y = y
    found = mgr._find_satisfied_waiter()
    satisfied = [w for w in waiters if w.predicate.evaluate(mgr.monitor)]
    if satisfied:
        assert found is not None
        assert found in satisfied
    else:
        assert found is None


@settings(max_examples=100, deadline=None)
@given(
    specs=st.lists(st.tuples(_atom_kinds, st.integers(-3, 3)), min_size=2, max_size=8),
    x=st.integers(-4, 4),
    y=st.integers(-4, 4),
)
def test_signaled_waiters_are_skipped(specs, x, y):
    """A waiter already signaled must never be chosen again before waking."""
    mgr = _manager("autosynch")
    waiters = [_register(mgr, _make_condition(k, c)) for k, c in specs]
    mgr.monitor.x = x
    mgr.monitor.y = y
    first = mgr._find_satisfied_waiter()
    if first is None:
        return
    first.signaled = True
    second = mgr._find_satisfied_waiter()
    assert second is not first
    if second is not None:
        assert second.predicate.evaluate(mgr.monitor)


@settings(max_examples=100, deadline=None)
@given(
    specs=st.lists(st.tuples(_atom_kinds, st.integers(-3, 3)), min_size=1, max_size=8),
    x=st.integers(-4, 4),
    y=st.integers(-4, 4),
)
def test_deregistration_removes_from_search(specs, x, y):
    mgr = _manager("autosynch")
    waiters = [_register(mgr, _make_condition(k, c)) for k, c in specs]
    for w in waiters:
        mgr._deregister(w)
    mgr.monitor.x = x
    mgr.monitor.y = y
    assert mgr._find_satisfied_waiter() is None
    assert mgr.waiting_count() == 0
