"""The asyncio frontend (repro.aio): waiterless waiters, the bridge, and
the differential property suite.

The load-bearing test mirrors ``test_aot_signal.py``'s harness: the same
randomized park/write/abandon/poison schedules are driven with threaded
waiters, with async (waiterless) waiters, and with a mixed population —
through both the dependency-tracked relay and the AOT direct-signal exit —
and the per-step wake sets must be identical.  That is the relay-invariance
argument for the frontend: an :class:`AsyncWaiter` occupies exactly a
threaded waiter's place in every search structure, so every signaling
discipline covers it with no special cases.

The real-loop half covers the bridge itself: ``LightFuture`` done
callbacks, ``as_asyncio`` result/failure/cancellation semantics,
``AsyncMonitorClient.wait_until`` (wake, timeout, cancel token, poison,
task cancellation), delegation via ``submit_nowait`` / ``call``, awaitable
composition, and — the cardinal rule, in debug mode — that a full
put/wait/take workload never blocks the event-loop thread long enough to
trip asyncio's slow-callback detector.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active.futures import LightFuture
from repro.aio import (
    AsyncMonitorClient,
    as_asyncio,
    async_and,
    async_or,
    await_future,
)
from repro.compose import bind
from repro.core.expressions import S
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import AsyncWaiter, Waiter
from repro.preprocess import monitor_compile
from repro.problems.bounded_buffer import ActiveBoundedQueue
from repro.resilience import CancelToken
from repro.runtime.config import get_config
from repro.runtime.errors import (
    BrokenMonitorError,
    MonitorError,
    TaskError,
    WaitCancelledError,
    WaitTimeoutError,
)

NV = 4  #: shared variables v0..v3 in the differential board


@pytest.fixture(autouse=True)
def _restore_config():
    cfg = get_config()
    prior_track = cfg.track_dependencies
    prior_aot = cfg.aot_signal
    yield
    cfg.track_dependencies = prior_track
    cfg.aot_signal = prior_aot


@monitor_compile
class Board(Monitor):
    """One public writer per shared variable (singleton AOT write sets)."""

    def __init__(self):
        super().__init__()
        self.v0 = 0
        self.v1 = 0
        self.v2 = 0
        self.v3 = 0

    def w0(self, val):
        self.v0 = val

    def w1(self, val):
        self.v1 = val

    def w2(self, val):
        self.v2 = val

    def w3(self, val):
        self.v3 = val

    def peek(self):
        return self.v0


PLANS = Board._repro_aot_plans


# ------------------------------------------------ differential (hypothesis)


def _build_pred(spec) -> Predicate:
    kind = spec[0]
    if kind == "ne":
        return Predicate(getattr(S, f"v{spec[1]}") != 0)
    if kind == "diff":
        return Predicate(getattr(S, f"v{spec[1]}") > getattr(S, f"v{spec[2]}"))
    if kind == "eq":
        return Predicate(getattr(S, f"v{spec[1]}") == spec[2])
    if kind == "opaque":
        i, k = spec[1], spec[2]
        return Predicate(lambda m: getattr(m, f"v{i}") >= k + 1)
    assert kind == "poison"
    i = spec[1]
    # raises while v_i == 0: the signaler must poison the waiter and
    # deliver the failure to it (threaded: absorbed signal; async: the
    # poison argument of the wake action)
    return Predicate(lambda m: 1 // getattr(m, f"v{i}") >= 0)


def _oracle_true(waiter, monitor) -> bool:
    try:
        return bool(waiter.eval_fn(monitor))
    except BaseException:
        return True  # a raising predicate owns the next signal


def _drive(ops, signaling: str, kind: str) -> list[frozenset]:
    """Apply one schedule through one (signaling, waiter-population) lane;
    return the set of waiters woken after each step.

    ``signaling``: ``tracked`` exits through the dependency-filtered
    relay, ``direct`` through the AOT direct-signal path.  ``kind``:
    ``threaded`` parks only classic waiters, ``async`` only waiterless
    ones, ``mixed`` alternates — one relay call may then wake several
    async waiters *and* hand the baton to one threaded waiter.
    """
    cfg = get_config()
    cfg.track_dependencies = True
    cfg.aot_signal = signaling == "direct"
    m = Board()
    mgr = m._cond_mgr

    def drain_step(plan):
        if signaling == "direct":
            return mgr.direct_signal(plan)
        return mgr.relay_signal()

    live: dict[int, Waiter] = {}
    delivered: list[int] = []
    log: list[frozenset] = []
    next_wid = 0

    def park(pred: Predicate) -> None:
        nonlocal next_wid
        wid = next_wid
        next_wid += 1
        use_async = kind == "async" or (kind == "mixed" and wid % 2 == 0)
        if use_async:
            w = AsyncWaiter(
                pred, lambda poison, wid=wid: delivered.append(wid))
            mgr.register_async(w)
        else:
            w = Waiter(pred, m._lock)
            mgr._register(w)
        live[wid] = w

    with m._lock:
        mgr.relay_signal()   # flush construction writes
        for op in ops:
            plan = PLANS["peek"]
            if op[0] == "park":
                park(_build_pred(op[1]))
            elif op[0] == "write":
                setattr(m, f"v{op[1]}", op[2])
                plan = PLANS[f"w{op[1]}"]
            elif op[0] == "write2":
                setattr(m, f"v{op[1]}", op[3])
                setattr(m, f"v{op[2]}", op[3])
                plan = PLANS[f"w{op[1]}"]
            elif op[0] == "abandon" and live:
                # the timeout/cancel shape for each population: threaded
                # waiters deregister under the lock, async waiters claim
                # through the flag and leave the unlink to the lazy reap
                wid = sorted(live)[op[1] % len(live)]
                w = live.pop(wid)
                if w.deliver is not None:
                    assert mgr.abandon_async(w)
                else:
                    mgr._deregister(w)
            woken: set[int] = set()
            for _ in range(len(live) + len(ops) + 2):
                mark = len(delivered)
                w = drain_step(plan)
                plan = PLANS["peek"]   # baton re-relay wrote nothing new
                progressed = False
                for wid in delivered[mark:]:
                    woken.add(wid)
                    live.pop(wid)
                    progressed = True
                del delivered[mark:]
                if w is not None:
                    wid = next(k for k, v in live.items() if v is w)
                    woken.add(wid)
                    live.pop(wid)
                    mgr._deregister(w)
                    progressed = True
                if not progressed:
                    break
            else:  # pragma: no cover - signal livelock
                raise AssertionError("signaling never quiesced")
            for wid, w in live.items():
                assert not _oracle_true(w, m), (
                    f"waiter {wid} satisfied but not woken "
                    f"(signaling={signaling}, kind={kind}, step {op})"
                )
            log.append(frozenset(woken))
    return log


_pred_spec = st.one_of(
    st.tuples(st.just("ne"), st.integers(0, NV - 1)),
    st.tuples(st.just("diff"), st.integers(0, NV - 1), st.integers(0, NV - 1)),
    st.tuples(st.just("eq"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("opaque"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("poison"), st.integers(0, NV - 1)),
)

_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("write2"), st.integers(0, NV - 1),
              st.integers(0, NV - 1), st.integers(0, 2)),
    st.tuples(st.just("park"), _pred_spec),
    st.tuples(st.just("abandon"), st.integers(0, 7)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_op, min_size=1, max_size=24))
def test_async_waiters_match_threaded_wake_sets(ops):
    """Waiterless waiters wake exactly when threaded waiters would, step
    for step, under both the tracked relay and the AOT direct exit."""
    base = _drive(ops, "tracked", "threaded")
    assert _drive(ops, "tracked", "async") == base
    assert _drive(ops, "direct", "async") == base
    assert _drive(ops, "direct", "mixed") == base


def test_abandoned_async_waiter_is_reaped_by_next_lock_holder():
    m = Board()
    mgr = m._cond_mgr
    with m._lock:
        mgr.relay_signal()
        w = AsyncWaiter(Predicate(S.v0 != 0), lambda poison: None)
        mgr.register_async(w)
    assert mgr.abandon_async(w)          # lock-free claim
    assert not mgr.abandon_async(w)      # second claim loses
    with m._lock:
        mgr.relay_signal()               # reap runs at the top
        assert mgr._async_reap == []
        assert not mgr.dump_waiters()


# --------------------------------------------------------- future callbacks


def test_done_callback_after_completion_fires_immediately():
    fut = LightFuture()
    fut.set_result(7)
    seen = []
    fut.add_done_callback(seen.append)
    assert seen == [fut]


def test_done_callbacks_fire_exactly_once():
    fut = LightFuture()
    calls = []
    fut.add_done_callback(lambda f: calls.append("a"))
    fut.add_done_callback(lambda f: calls.append("b"))
    fut.set_result(1)
    fut.add_done_callback(lambda f: calls.append("late"))
    assert calls == ["a", "b", "late"]


def test_done_callbacks_race_completion():
    """Concurrent installers and one completer: every callback runs
    exactly once, whichever side of the state flip it landed on."""
    for _ in range(50):
        fut = LightFuture()
        hits = []
        barrier = threading.Barrier(3)

        def install(tag):
            barrier.wait()
            fut.add_done_callback(lambda f, tag=tag: hits.append(tag))

        def complete():
            barrier.wait()
            fut.set_result(0)

        threads = [
            threading.Thread(target=install, args=(0,)),
            threading.Thread(target=install, args=(1,)),
            threading.Thread(target=complete),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(hits) == [0, 1]


# ------------------------------------------------------------ the bridge


def test_as_asyncio_result_and_failure():
    async def main():
        ok = LightFuture()
        threading.Timer(0.01, ok.set_result, (42,)).start()
        assert await as_asyncio(ok) == 42

        bad = LightFuture()
        threading.Timer(0.01, bad.set_exception, (ValueError("boom"),)).start()
        with pytest.raises(TaskError) as exc_info:
            await as_asyncio(bad)
        assert isinstance(exc_info.value.__cause__, ValueError)

    asyncio.run(main())


def test_as_asyncio_cancellation_drops_late_completion():
    async def main():
        fut = LightFuture()
        afut = as_asyncio(fut)
        afut.cancel()
        fut.set_result(1)          # fires the callback; _apply must bail
        await asyncio.sleep(0.01)  # let the scheduled callback run
        assert afut.cancelled()

    asyncio.run(main())


def test_await_future_timeout():
    async def main():
        with pytest.raises(asyncio.TimeoutError):
            await await_future(LightFuture(), timeout=0.02)

    asyncio.run(main())


# ------------------------------------------------------------- wait_until


class Gate(Monitor):
    def __init__(self):
        super().__init__()
        self.opened = 0

    def open(self):
        self.opened += 1


def test_wait_until_fast_path_when_already_true():
    async def main():
        gate = Gate()
        gate.open()
        await AsyncMonitorClient(gate).wait_until(S.opened > 0)

    asyncio.run(main())


def test_wait_until_woken_by_cross_thread_write():
    async def main():
        gate = Gate()
        client = AsyncMonitorClient(gate)
        threading.Timer(0.02, gate.open).start()
        await asyncio.wait_for(client.wait_until(S.opened > 0), timeout=2.0)

    asyncio.run(main())


def test_wait_until_timeout():
    async def main():
        gate = Gate()
        client = AsyncMonitorClient(gate)
        t0 = time.monotonic()
        with pytest.raises(WaitTimeoutError):
            await client.wait_until(S.opened > 3, timeout=0.05)
        assert time.monotonic() - t0 < 1.0
        assert gate.metrics.snapshot().get("wait_timeouts") == 1
        # the claim is lock-free; the unlink waits for the next holder
        gate.open()
        assert not gate.dump_waiters()

    asyncio.run(main())


def test_wait_until_cancel_token():
    async def main():
        gate = Gate()
        client = AsyncMonitorClient(gate)
        token = CancelToken()
        token.cancel_after(0.03, reason="drill")
        with pytest.raises(WaitCancelledError):
            await client.wait_until(S.opened > 0, cancel=token)

    asyncio.run(main())


def test_wait_until_precancelled_token():
    async def main():
        gate = Gate()
        token = CancelToken()
        token.cancel()
        with pytest.raises(WaitCancelledError):
            await AsyncMonitorClient(gate).wait_until(
                S.opened > 0, cancel=token)

    asyncio.run(main())


def test_wait_until_poisoned_monitor_propagates():
    async def main():
        gate = Gate()
        client = AsyncMonitorClient(gate)
        threading.Timer(
            0.02, gate.mark_broken, (RuntimeError("corrupt"),)).start()
        with pytest.raises(BrokenMonitorError):
            await asyncio.wait_for(
                client.wait_until(S.opened > 0), timeout=2.0)
        # and further registrations fail fast at entry
        with pytest.raises(BrokenMonitorError):
            await client.wait_until(S.opened > 0)

    asyncio.run(main())


def test_cancelling_the_waiting_task_abandons_the_registration():
    async def main():
        gate = Gate()
        client = AsyncMonitorClient(gate)
        task = asyncio.ensure_future(client.wait_until(S.opened > 5))
        await asyncio.sleep(0.02)   # let it park
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        gate.open()                 # next lock holder reaps the claim
        assert not gate.dump_waiters()

    asyncio.run(main())


# ------------------------------------------------------------- delegation


def test_call_and_wait_until_roundtrip():
    queue = ActiveBoundedQueue(4, mode="async")
    try:
        async def main():
            client = AsyncMonitorClient(queue)
            await client.call("put", 11)
            await client.wait_until(S.count > 0, timeout=2.0)
            assert await client.call("take_async") == 11

        asyncio.run(main())
    finally:
        queue.shutdown()


def test_submit_nowait_rejects_non_delegated_methods():
    queue = ActiveBoundedQueue(4, mode="async")
    try:
        with pytest.raises(MonitorError):
            queue.submit_nowait("take")        # @synchronous, not delegated
        with pytest.raises(MonitorError):
            queue.submit_nowait("no_such_op")
    finally:
        queue.shutdown()


def test_async_and_or_composition():
    q1 = ActiveBoundedQueue(4, mode="async")
    q2 = ActiveBoundedQueue(4, mode="async")
    try:
        async def main():
            results = await async_and(bind(q1.put, 1), bind(q2.put, 2))
            assert results == [None, None]
            idx, value = await async_or(
                bind(q1.take_async), bind(q2.take_async))
            assert (idx, value) in ((0, 1), (1, 2))

        asyncio.run(main())
    finally:
        q1.shutdown()
        q2.shutdown()


# ------------------------------------------------------------ cardinal rule


def test_no_slow_callbacks_in_debug_mode(caplog):
    """Debug-mode loop over a full put/wait/take workload: asyncio's
    slow-callback detector (100 ms) must stay silent — the loop thread
    never blocks on a monitor lock or a future."""
    queue = ActiveBoundedQueue(8, mode="async")
    try:
        async def main():
            client = AsyncMonitorClient(queue)
            for i in range(100):
                await client.call("put", i)
                await client.wait_until(S.count > 0, timeout=2.0)
                assert await client.call("take_async") == i

        with caplog.at_level(logging.WARNING, logger="asyncio"):
            asyncio.run(main(), debug=True)
    finally:
        queue.shutdown()
    slow = [r for r in caplog.records if "Executing" in r.getMessage()]
    assert slow == [], f"event loop blocked: {[r.getMessage() for r in slow]}"
