"""Edge-case coverage across subsystems."""

import threading
import time

import pytest

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.core import Monitor, S
from repro.core.predicates import MAX_DNF_CONJUNCTIONS, Or, Predicate
from repro.multi import local, multisynch
from repro.runtime.errors import PredicateError


class TestPredicateLimits:
    def test_dnf_explosion_guarded(self):
        # (a|b) & (c|d) & ... doubling conjunctions beyond the cap
        node = (S.a > 0) | (S.b > 0)
        clauses = []
        for i in range(12):
            clauses.append((S.__getattr__(f"x{i}") > 0) | (S.__getattr__(f"y{i}") > 0))
        big = clauses[0]
        for c in clauses[1:]:
            big = big & c
        with pytest.raises(PredicateError):
            Predicate(big)

    def test_wide_or_within_cap(self):
        atoms = [(S.__getattr__(f"v{i}") == i) for i in range(MAX_DNF_CONJUNCTIONS // 2)]
        pred = Predicate(Or(atoms))
        assert len(pred.conjunctions) == len(atoms)


class TestMonitorInheritance:
    def test_subclass_of_subclass_wraps_new_methods(self):
        class Base(Monitor):
            def __init__(self):
                super().__init__()
                self.x = 0

            def bump(self):
                self.x += 1

        class Child(Base):
            def double_bump(self):
                self.bump()      # reentrant call through the wrapper
                self.bump()

        c = Child()
        c.double_bump()
        assert c.x == 2

    def test_overridden_method_rewrapped(self):
        class Base(Monitor):
            def __init__(self):
                super().__init__()
                self.tag = "base"

            def who(self):
                return self.tag

        class Child(Base):
            def who(self):
                return "child:" + self.tag

        assert Child().who() == "child:base"

    def test_static_and_class_methods_untouched(self):
        class M(Monitor):
            @staticmethod
            def helper():
                return 1

            @classmethod
            def maker(cls):
                return cls()

        assert M.helper() == 1
        assert isinstance(M.maker(), M)


class TestMultisynchWithActiveMonitors:
    def test_global_condition_over_active_monitors(self):
        class Cell(ActiveMonitor):
            def __init__(self):
                super().__init__(mode="sync")
                self.v = 0

            @synchronous()
            def set(self, v):
                self.v = v

        a, b = Cell(), Cell()

        def feeder():
            time.sleep(0.05)
            a.set(1)
            b.set(2)

        t = threading.Thread(target=feeder, daemon=True)
        t.start()
        with multisynch(a, b) as ms:
            ms.wait_until(local(a, S.v > 0) & local(b, S.v > 0))
            assert (a.v, b.v) == (1, 2)
        t.join(5)

    def test_sequential_multisynch_blocks_reusable(self):
        class Cell(Monitor):
            def __init__(self):
                super().__init__()
                self.v = 0

        a, b = Cell(), Cell()
        for _ in range(3):
            with multisynch(a, b):
                a.v += 1
                b.v += 1
        assert (a.v, b.v) == (3, 3)


class TestActiveMonitorEdges:
    def test_sync_method_with_exception_propagates(self):
        class Boom(ActiveMonitor):
            @synchronous()
            def go(self):
                raise KeyError("sync boom")

        m = Boom(mode="sync")
        with pytest.raises(KeyError):
            m.go()

    def test_async_result_value_roundtrip(self):
        class Calc(ActiveMonitor):
            @asynchronous()
            def compute(self, a, b):
                return a * b

        m = Calc()
        try:
            assert m.compute(6, 7).get(timeout=10) == 42
        finally:
            m.shutdown()

    def test_start_server_false(self):
        class Quiet(ActiveMonitor):
            @asynchronous()
            def noop(self):
                return 1

        m = Quiet(start_server=False)
        assert not m.is_active
        assert m.noop().get(timeout=5) == 1


class TestBaselineModeMetrics:
    def test_futile_wakeups_tracked_in_baseline(self):
        class Gate(Monitor):
            def __init__(self):
                super().__init__(signaling="baseline")
                self.level = 0

            def bump(self):
                self.level += 1

            def wait_for(self, k):
                self.wait_until(S.level >= k)

        g = Gate()
        highs = [threading.Thread(target=g.wait_for, args=(3,), daemon=True)
                 for _ in range(3)]
        for t in highs:
            t.start()
        time.sleep(0.05)
        g.bump()    # broadcast wakes all three; all futile
        g.bump()
        g.bump()
        for t in highs:
            t.join(10)
        snap = g.metrics.snapshot()
        assert snap["broadcasts"] >= 3
        assert snap["futile_wakeups"] >= 1


class TestFaultInjection:
    def test_raising_predicate_poisons_its_owner_not_the_signaler(self):
        """A predicate that raises during relay evaluation must crash the
        thread that *owns* it, not whichever thread happened to exit the
        monitor at that moment."""
        class Trap(Monitor):
            def __init__(self):
                super().__init__()
                self.level = 0
                self.arm = False

            def bump(self):
                self.level += 1

            def wait_trapped(self):
                def bad(m):
                    if m.arm:
                        raise ZeroDivisionError("broken predicate")
                    return m.level >= 99

                self.wait_until(bad)

            def arm_trap(self):
                self.arm = True

        trap = Trap()
        failures = []

        def waiter():
            try:
                trap.wait_trapped()
            except ZeroDivisionError as exc:
                failures.append(exc)

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        trap.arm_trap()     # exit triggers relay → predicate raises
        trap.bump()         # signaler must survive and keep working
        t.join(10)
        assert not t.is_alive()
        assert len(failures) == 1
        assert trap.level == 1          # the signaling thread was unharmed

    def test_healthy_waiters_unaffected_by_poisoned_neighbour(self):
        class Trap(Monitor):
            def __init__(self):
                super().__init__()
                self.level = 0
                self.arm = False

            def bump(self):
                self.level += 1

            def wait_bad(self):
                def bad(m):
                    if m.arm:
                        raise RuntimeError("boom")
                    return False

                self.wait_until(bad)

            def wait_good(self, k):
                self.wait_until(lambda m: m.level >= k)

        trap = Trap()
        outcomes = []

        def bad_waiter():
            try:
                trap.wait_bad()
            except RuntimeError:
                outcomes.append("bad-raised")

        def good_waiter():
            trap.wait_good(1)
            outcomes.append("good-woke")

        tb = threading.Thread(target=bad_waiter, daemon=True)
        tg = threading.Thread(target=good_waiter, daemon=True)
        tb.start()
        tg.start()
        time.sleep(0.05)
        trap.arm = True      # not a monitor method; next exit arms relay
        trap.bump()
        tb.join(10)
        tg.join(10)
        assert sorted(outcomes) == ["bad-raised", "good-woke"]
