"""Stress tests for the explicit atomics layer (repro.runtime.atomics).

Both implementations of every primitive are hammered from 8+ threads on
whatever build is running — the locked forms must be correct everywhere,
and the GIL forms must be correct wherever they are selected (a regular
build; on a free-threaded build ``AtomicCounter`` *is* the locked class,
so the Gil* stress here only documents the GIL build's guarantee).

The forced-locked subprocess tests at the bottom re-run the scqueue
linearizability suite and the relay-differential suites with
``REPRO_ATOMICS=locked`` so ordinary GIL builds exercise exactly the code
the free-threaded lane will run.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.runtime.atomics import (
    FORCED_LOCKED,
    GIL_ENABLED,
    AtomicCounter,
    AtomicFlag,
    AtomicRef,
    GilAtomicCounter,
    LockedAtomicCounter,
    build_info,
)

REPO = Path(__file__).resolve().parent.parent

N_THREADS = 8
DRAWS = 2000


def hammer(n_threads, fn):
    """Run ``fn(thread_index)`` on ``n_threads`` threads with a start barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def body(i):
        barrier.wait()
        try:
            fn(i)
        except Exception as exc:  # pragma: no cover — only on bugs
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


# ------------------------------------------------------------------ counters
@pytest.mark.parametrize("impl", [GilAtomicCounter, LockedAtomicCounter])
class TestCounterStress:
    def test_no_duplicate_draws_from_8_threads(self, impl):
        counter = impl()
        drawn = [[] for _ in range(N_THREADS)]
        hammer(N_THREADS, lambda i: drawn[i].extend(
            counter.next() for _ in range(DRAWS)))
        flat = [v for chunk in drawn for v in chunk]
        assert sorted(flat) == list(range(N_THREADS * DRAWS))

    def test_per_thread_draws_are_monotonic(self, impl):
        counter = impl()
        drawn = [[] for _ in range(N_THREADS)]
        hammer(N_THREADS, lambda i: drawn[i].extend(
            counter.next() for _ in range(DRAWS)))
        for chunk in drawn:
            assert chunk == sorted(chunk)

    def test_initial_and_step_sequence(self, impl):
        counter = impl(10, 3)
        assert [counter.next() for _ in range(4)] == [10, 13, 16, 19]

    def test_peek_is_next_value_without_advancing(self, impl):
        counter = impl(5)
        assert counter.peek() == 5
        assert counter.peek() == 5
        assert counter.next() == 5
        assert counter.peek() == 6


def test_both_impls_produce_identical_sequences():
    for initial, step in [(0, 1), (1, 1), (2, 2), (7, -3)]:
        gil = GilAtomicCounter(initial, step)
        locked = LockedAtomicCounter(initial, step)
        assert [gil.next() for _ in range(6)] == [locked.next() for _ in range(6)]


def test_build_selection_is_consistent():
    expected = GilAtomicCounter if GIL_ENABLED else LockedAtomicCounter
    assert AtomicCounter is expected


# -------------------------------------------------------------------- flags
def test_flag_test_and_set_elects_exactly_one_winner():
    flag = AtomicFlag()
    winners = []
    losses = []
    hammer(N_THREADS, lambda i: (winners if not flag.test_and_set()
                                 else losses).append(i))
    assert len(winners) == 1
    assert len(losses) == N_THREADS - 1


def test_flag_repeated_elections():
    flag = AtomicFlag()
    wins = [0] * N_THREADS
    rounds = 200
    start = threading.Barrier(N_THREADS)
    done = threading.Barrier(N_THREADS)

    def body(i):
        for _ in range(rounds):
            start.wait()
            if not flag.test_and_set():
                wins[i] += 1
            done.wait()
            if i == 0:
                flag.clear()

    hammer(N_THREADS, body)
    assert sum(wins) == rounds


def test_flag_plain_ops():
    flag = AtomicFlag()
    assert not flag
    flag.set()
    assert flag
    flag.clear()
    assert not flag
    assert AtomicFlag(True)


# --------------------------------------------------------------------- refs
def test_ref_update_is_a_correct_rmw():
    ref = AtomicRef(0)
    hammer(N_THREADS, lambda i: [ref.update(lambda v: v + 1)
                                 for _ in range(DRAWS)])
    assert ref.get() == N_THREADS * DRAWS


def test_ref_compare_and_swap_single_winner():
    sentinel = object()
    ref = AtomicRef(sentinel)
    outcomes = []
    hammer(N_THREADS, lambda i: outcomes.append(ref.compare_and_swap(sentinel, i)))
    assert outcomes.count(True) == 1
    assert ref.get() in range(N_THREADS)


def test_ref_cas_uses_identity_not_equality():
    a, b = [1], [1]  # equal but distinct
    ref = AtomicRef(a)
    assert not ref.compare_and_swap(b, "new")
    assert ref.compare_and_swap(a, "new")
    assert ref.get() == "new"


def test_ref_swap_returns_previous():
    ref = AtomicRef("old")
    assert ref.swap("new") == "old"
    assert ref.get() == "new"


# ------------------------------------------------------------- probe / info
def test_gil_probe_matches_interpreter():
    is_enabled = getattr(sys, "_is_gil_enabled", None)
    actual = True if is_enabled is None else bool(is_enabled())
    assert GIL_ENABLED == (actual and not FORCED_LOCKED)


def test_build_info_shape():
    info = build_info()
    for key in ("python", "implementation", "free_threading_build",
                "gil_enabled", "atomics", "platform", "machine", "cpu_count"):
        assert key in info, key
    assert info["atomics"] == ("gil" if GIL_ENABLED else "locked")
    assert info["cpu_count"] >= 1
    # a non-free-threading build can never be running without the GIL
    if not info["free_threading_build"] and not FORCED_LOCKED:
        assert info["gil_enabled"]


# ----------------------------------------------- forced-locked subprocess runs
def _run_locked(*pytest_args):
    env = dict(os.environ, REPRO_ATOMICS="locked",
               PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-x", *pytest_args],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=600,
    )


@pytest.mark.skipif(FORCED_LOCKED, reason="already running forced-locked")
def test_locked_lane_smoke():
    """The forced-locked build flag actually flips the implementation."""
    code = ("from repro.runtime.atomics import GIL_ENABLED, AtomicCounter, "
            "LockedAtomicCounter\n"
            "assert not GIL_ENABLED\n"
            "assert AtomicCounter is LockedAtomicCounter\n")
    env = dict(os.environ, REPRO_ATOMICS="locked",
               PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr


@pytest.mark.slow
@pytest.mark.skipif(FORCED_LOCKED, reason="already running forced-locked")
def test_scqueue_linearizability_survives_locked_lane():
    """Full scqueue suite (incl. MPSC stress) on the locked implementations."""
    proc = _run_locked("tests/test_scqueue.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(FORCED_LOCKED, reason="already running forced-locked")
def test_relay_differential_survives_locked_lane():
    """Relay search differential suites on the locked implementations."""
    proc = _run_locked(
        "tests/test_relay_search_properties.py",
        "tests/test_dependency_tracking.py::test_filtered_relay_matches_exhaustive_search",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
