"""Unit tests for the discrete-event multicore simulator."""

import pytest

from repro.sim import Kernel, SimMonitor
from repro.sim.workloads import (
    sim_bounded_buffer,
    sim_param_bounded_buffer,
    sim_round_robin,
)


class TestKernelPrimitives:
    def test_compute_advances_clock(self):
        k = Kernel(n_cores=1, ctx_switch_cost=0)

        def job():
            yield ("compute", 10)
            yield 5

        k.spawn(job())
        assert k.run() == 15

    def test_parallel_compute_across_cores(self):
        k = Kernel(n_cores=4, ctx_switch_cost=0)
        for _ in range(4):
            k.spawn(iter([("compute", 10)]))
        assert k.run() == 10

    def test_serialized_when_one_core(self):
        k = Kernel(n_cores=1, ctx_switch_cost=0)
        for _ in range(4):
            k.spawn(iter([("compute", 10)]))
        assert k.run() == 40

    def test_lock_mutual_exclusion(self):
        k = Kernel(n_cores=4, ctx_switch_cost=0)
        lock = k.lock()
        log = []

        def job(name):
            yield ("acquire", lock)
            log.append((name, "in"))
            yield ("compute", 10)
            log.append((name, "out"))
            yield ("release", lock)

        for n in ("a", "b", "c"):
            k.spawn(job(n))
        k.run()
        # entries and exits strictly alternate (no overlap in the CS)
        for i in range(0, len(log), 2):
            assert log[i][0] == log[i + 1][0]
            assert log[i][1] == "in" and log[i + 1][1] == "out"

    def test_lock_fifo_by_arrival_time(self):
        k = Kernel(n_cores=4, ctx_switch_cost=0)
        lock = k.lock()
        order = []

        def job(name, delay):
            yield ("compute", delay)
            yield ("acquire", lock)
            order.append(name)
            yield ("compute", 100)
            yield ("release", lock)

        k.spawn(job("late", 50))
        k.spawn(job("early", 10))
        k.spawn(job("mid", 30))
        k.run()
        assert order == ["early", "mid", "late"]

    def test_condvar_wait_signal(self):
        k = Kernel(n_cores=2, ctx_switch_cost=1)
        lock = k.lock()
        cv = k.condvar(lock)
        state = {"ready": False}
        log = []

        def waiter():
            yield ("acquire", lock)
            while not state["ready"]:
                yield ("wait", cv)
            log.append("woke")
            yield ("release", lock)

        def signaler():
            yield ("compute", 10)
            yield ("acquire", lock)
            state["ready"] = True
            yield ("signal", cv)
            yield ("release", lock)

        k.spawn(waiter())
        k.spawn(signaler())
        k.run()
        assert log == ["woke"]
        assert k.all_done()

    def test_determinism(self):
        r1 = sim_round_robin("autosynch", 16, 10)
        r2 = sim_round_robin("autosynch", 16, 10)
        assert r1 == r2

    def test_context_switch_cost_charged(self):
        k = Kernel(n_cores=1, ctx_switch_cost=7)
        lock = k.lock()

        def holder():
            yield ("acquire", lock)
            yield ("compute", 10)
            yield ("release", lock)

        k.spawn(holder())
        k.spawn(holder())
        k.run()
        assert k.context_switches == 1   # second thread's lock grant

    def test_bad_request_rejected(self):
        k = Kernel()
        k.spawn(iter([("fly_to_moon",)]))
        with pytest.raises(ValueError):
            k.run()

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            Kernel(n_cores=0)

    def test_max_time_cutoff(self):
        k = Kernel(n_cores=1, ctx_switch_cost=0)

        def forever():
            while True:
                yield ("compute", 1000)

        k.spawn(forever())
        # one compute segment completes; the cutoff stops further events
        assert k.run(max_time=500) <= 1000


class TestSimMonitor:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            SimMonitor(Kernel(), mode="bogus")

    @pytest.mark.parametrize("mode", ["baseline", "autosynch_t", "autosynch"])
    def test_workloads_complete(self, mode):
        result = sim_bounded_buffer(mode, 4, 4, 10)
        assert result["time"] > 0

    def test_relay_counts_signals(self):
        result = sim_round_robin("autosynch", 8, 5)
        assert result["signals"] > 0
        assert result["broadcasts"] == 0

    def test_baseline_counts_broadcasts(self):
        result = sim_round_robin("baseline", 8, 5)
        assert result["broadcasts"] > 0
        assert result["signals"] == 0


class TestPaperShapes:
    """The qualitative claims each simulated figure must reproduce."""

    def test_baseline_blowup_round_robin(self):
        base = sim_round_robin("baseline", 48, 10)["time"]
        auto = sim_round_robin("autosynch", 48, 10)["time"]
        assert base > 2 * auto

    def test_tags_beat_linear_scan(self):
        t_scan = sim_round_robin("autosynch_t", 48, 10)
        t_tags = sim_round_robin("autosynch", 48, 10)
        assert t_tags["time"] < t_scan["time"]
        assert t_tags["predicate_evals"] < t_scan["predicate_evals"] / 5

    def test_explicit_optimal_for_round_robin(self):
        exp = sim_round_robin("explicit", 48, 10)["time"]
        auto = sim_round_robin("autosynch", 48, 10)["time"]
        assert exp <= auto                 # hand-tuned CVs win
        assert auto < 20 * exp             # but autosynch stays in range

    def test_signalall_context_switch_gap(self):
        exp = sim_param_bounded_buffer("explicit", 32, 8)
        auto = sim_param_bounded_buffer("autosynch", 32, 8)
        assert exp["context_switches"] > 3 * auto["context_switches"]
        assert exp["time"] > auto["time"]


class TestSimDelegation:
    def test_queue_balances(self):
        from repro.sim import sim_active_queue

        result = sim_active_queue("am", 8, 15, capacity=8)
        assert result["ops"] == 8 // 2 * 15 * 2

    def test_delegation_wins_at_scale(self):
        from repro.sim import sim_active_queue

        lk = sim_active_queue("lk", 32, 15, capacity=8)["time"]
        am = sim_active_queue("am", 32, 15, capacity=8)["time"]
        assert am < lk

    def test_locking_competitive_at_tiny_scale(self):
        from repro.sim import sim_active_queue

        lk = sim_active_queue("lk", 2, 15, capacity=8)["time"]
        am = sim_active_queue("am", 2, 15, capacity=8)["time"]
        assert lk < am       # too few threads to amortize delegation

    def test_unknown_variant_rejected(self):
        import pytest as _pytest

        from repro.sim import sim_active_queue

        with _pytest.raises(ValueError):
            sim_active_queue("??", 2, 5)


class TestSimMultiObject:
    def test_pizza_completes_both_variants(self):
        from repro.sim import sim_pizza_store

        for variant in ("gl", "cc"):
            result = sim_pizza_store(variant, 6, 6)
            assert result["completed"], variant

    def test_cc_beats_gl_at_scale(self):
        from repro.sim import sim_pizza_store

        gl = sim_pizza_store("gl", 16, 6)
        cc = sim_pizza_store("cc", 16, 6)
        assert cc["time"] < gl["time"]
        assert cc["evals"] < gl["evals"]

    def test_deterministic(self):
        from repro.sim import sim_pizza_store

        assert sim_pizza_store("cc", 8, 5) == sim_pizza_store("cc", 8, 5)

    def test_unknown_variant_rejected(self):
        import pytest as _pytest

        from repro.sim import sim_pizza_store

        with _pytest.raises(ValueError):
            sim_pizza_store("??", 2, 2)


class TestSimMulticast:
    def test_all_requests_served(self):
        from repro.sim import sim_multicast

        for variant in ("gl", "so"):
            result = sim_multicast(variant, 6, 8)
            assert result["completed"], variant
            assert result["served"] == 48

    def test_selectone_beats_coarse_lock(self):
        from repro.sim import sim_multicast

        gl = sim_multicast("gl", 24, 8)["time"]
        so = sim_multicast("so", 24, 8)["time"]
        assert so < gl

    def test_deterministic(self):
        from repro.sim import sim_multicast

        assert sim_multicast("so", 8, 6) == sim_multicast("so", 8, 6)

    def test_unknown_variant_rejected(self):
        import pytest as _pytest

        from repro.sim import sim_multicast

        with _pytest.raises(ValueError):
            sim_multicast("??", 2, 2)


class TestSimCh2Workloads:
    def test_h2o_completes_all_modes(self):
        from repro.sim import sim_h2o

        for mode in ("explicit", "baseline", "autosynch_t", "autosynch"):
            result = sim_h2o(mode, 6, 10)
            assert result["time"] > 0, mode

    def test_dining_completes_all_modes(self):
        from repro.sim import sim_dining

        for mode in ("explicit", "autosynch_t", "autosynch"):
            result = sim_dining(mode, 5, 6)
            assert result["time"] > 0, mode

    def test_readers_writers_completes_all_modes(self):
        from repro.sim import sim_readers_writers

        for mode in ("explicit", "autosynch_t", "autosynch"):
            result = sim_readers_writers(mode, 2, 6, 5)
            assert result["time"] > 0, mode

    def test_h2o_deterministic(self):
        from repro.sim import sim_h2o

        assert sim_h2o("autosynch", 8, 10) == sim_h2o("autosynch", 8, 10)

    def test_dining_autosynch_tracks_explicit(self):
        """Fig. 2.8's shape: the explicit/autosynch gap stays a small,
        thread-count-independent factor (neighbour contention only)."""
        from repro.sim import sim_dining

        explicit = sim_dining("explicit", 8, 10)["time"]
        autosynch = sim_dining("autosynch", 8, 10)["time"]
        assert autosynch < 4 * explicit
        # and eating overlaps across cores: total time beats one-core serial
        one_core = sim_dining("autosynch", 8, 10, n_cores=1)["time"]
        assert autosynch < one_core


class TestSimPizzaStrategies:
    def test_all_strategies_complete(self):
        from repro.sim import sim_pizza_store

        for v in ("gl", "as", "av", "cc"):
            assert sim_pizza_store(v, 6, 5)["completed"], v

    def test_false_signal_ordering_at_scale(self):
        """Fig. 4.8's shape: GL's broadcasts produce the most futile wakeups;
        AS blind-signals more than AV/CC."""
        from repro.sim import sim_pizza_store

        runs = {v: sim_pizza_store(v, 24, 8) for v in ("gl", "as", "av", "cc")}
        assert runs["gl"]["false_signals"] > runs["as"]["false_signals"]
        assert runs["as"]["false_signals"] >= runs["av"]["false_signals"]
        assert runs["as"]["false_signals"] >= runs["cc"]["false_signals"]

    def test_monitor_strategies_beat_gl_at_scale(self):
        from repro.sim import sim_pizza_store

        gl = sim_pizza_store("gl", 24, 8)["time"]
        for v in ("as", "av", "cc"):
            assert sim_pizza_store(v, 24, 8)["time"] < gl, v


class TestSimFutures:
    def test_future_roundtrip(self):
        from repro.sim import Kernel
        from repro.sim.active import SimFuture

        k = Kernel(n_cores=2, ctx_switch_cost=1)
        future = SimFuture(k)
        got = []

        def consumer():
            value = yield from future.get()
            got.append(value)

        def producer():
            yield ("compute", 10)
            yield from future.complete(99)

        k.spawn(consumer())
        k.spawn(producer())
        k.run()
        assert got == [99]
        assert k.all_done()

    def test_rule2_worker_serializes_async_puts(self):
        from repro.sim import Kernel, SimActiveMonitor
        from repro.sim.active import Rule2Worker

        k = Kernel(n_cores=4, ctx_switch_cost=1)
        monitor = SimActiveMonitor(k)
        order = []

        def effect(tag):
            def run():
                order.append(tag)
            return run

        def worker():
            w = Rule2Worker(monitor)
            for tag in ("a", "b", "c"):
                yield from w.put_async(None, 1.0, effect(tag))

        k.spawn(monitor.server(expected_tasks=3))
        k.spawn(worker())
        k.run()
        assert order == ["a", "b", "c"]


class TestSimTakeAndPut:
    def test_items_conserved(self):
        from repro.sim import sim_take_and_put

        for v in ("gl", "fg"):
            result = sim_take_and_put(v, 8, 10)
            assert result["moves"] == 80, v

    def test_fine_grained_beats_global_lock(self):
        from repro.sim import sim_take_and_put

        gl = sim_take_and_put("gl", 32, 10)["time"]
        fg = sim_take_and_put("fg", 32, 10)["time"]
        assert fg < gl

    def test_id_ordered_locking_never_deadlocks(self):
        from repro.sim import sim_take_and_put

        # adversarial seed sweep: overlapping random pairs, all must finish
        for seed in range(5):
            result = sim_take_and_put("fg", 12, 12, seed=seed)
            assert result["moves"] == 144

    def test_unknown_variant_rejected(self):
        import pytest as _pytest

        from repro.sim import sim_take_and_put

        with _pytest.raises(ValueError):
            sim_take_and_put("??", 2, 2)
