"""genome+ — Fig. 4.4 (the STAMP-style genome assembly workload).

Structure of the STAMP ``genome`` benchmark, rebuilt synthetically:

1. generate a random genome string and shred it into overlapping segments;
2. **phase 1 (dedup)** — threads insert segments into a shared hash set;
3. **phase 2 (overlap matching)** — threads repeatedly try to link segments
   whose suffix matches another segment's prefix, shrinking the match
   length until the genome chain is rebuilt.

The synchronization the paper contrasts lives in the shared hash-set
buckets and the per-segment link records:

* ``fl`` — fine-grained locking: one lock per bucket stripe / per segment;
* ``tm`` — buckets and link records in TVars, each operation a transaction;
* ``ms`` — buckets and segments as monitor objects under ``multisynch``.
"""

from __future__ import annotations

import random
import threading
from typing import Optional

from repro.core import Monitor
from repro.multi import multisynch
from repro.problems.common import RunResult, run_threads
from repro.stm import TVar, atomic

ALPHABET = "ACGT"


def make_genome(length: int, segment_length: int, seed: int = 9) -> tuple[str, list[str]]:
    """Generate a genome and its overlapping segment shreds."""
    rng = random.Random(seed)
    genome = "".join(rng.choice(ALPHABET) for _ in range(length))
    step = max(1, segment_length // 2)
    segments = [
        genome[i : i + segment_length]
        for i in range(0, length - segment_length + 1, step)
    ]
    rng.shuffle(segments)
    # duplicates are the point of the dedup phase
    segments += [rng.choice(segments) for _ in range(len(segments) // 4)]
    rng.shuffle(segments)
    return genome, segments


class _Buckets:
    """Shared-hash-set shape common to all variants."""

    def __init__(self, n_buckets: int):
        self.n_buckets = n_buckets

    def index(self, segment: str) -> int:
        return hash(segment) % self.n_buckets


class FLHashSet(_Buckets):
    """Fine-grained: one lock per bucket."""

    def __init__(self, n_buckets: int = 64):
        super().__init__(n_buckets)
        self.buckets: list[set[str]] = [set() for _ in range(n_buckets)]
        self.locks = [threading.Lock() for _ in range(n_buckets)]

    def add(self, segment: str) -> bool:
        i = self.index(segment)
        with self.locks[i]:
            if segment in self.buckets[i]:
                return False
            self.buckets[i].add(segment)
            return True

    def contents(self) -> set[str]:
        out: set[str] = set()
        for bucket in self.buckets:
            out |= bucket
        return out


class TMHashSet(_Buckets):
    """Transactional: each bucket is a TVar holding a frozenset."""

    def __init__(self, n_buckets: int = 64):
        super().__init__(n_buckets)
        self.buckets = [TVar(frozenset()) for _ in range(n_buckets)]

    def add(self, segment: str) -> bool:
        i = self.index(segment)

        def txn():
            current = self.buckets[i].get()
            if segment in current:
                return False
            self.buckets[i].set(current | {segment})
            return True

        return atomic(txn)

    def contents(self) -> set[str]:
        out: set[str] = set()
        for var in self.buckets:
            out |= var.get()
        return out


class BucketMonitor(Monitor):
    """One hash bucket as a monitor object (MS variant)."""

    def __init__(self):
        super().__init__()
        self.entries: set[str] = set()

    def add(self, segment: str) -> bool:
        if segment in self.entries:
            return False
        self.entries.add(segment)
        return True


class MSHashSet(_Buckets):
    def __init__(self, n_buckets: int = 64):
        super().__init__(n_buckets)
        self.buckets = [BucketMonitor() for _ in range(n_buckets)]

    def add(self, segment: str) -> bool:
        return self.buckets[self.index(segment)].add(segment)

    def contents(self) -> set[str]:
        out: set[str] = set()
        for bucket in self.buckets:
            out |= bucket.entries
        return out


class SegmentMonitor(Monitor):
    """A segment's link record as a monitor (MS overlap phase)."""

    def __init__(self, segment: str):
        super().__init__()
        self.segment = segment
        self.next: Optional[str] = None    # linked successor
        self.taken = False                  # already some predecessor's next


def _overlap(a: str, b: str, k: int) -> bool:
    return a[-k:] == b[:k]


def run_genome(
    variant: str,
    n_threads: int,
    genome_length: int = 512,
    segment_length: int = 16,
    seed: int = 9,
) -> RunResult:
    """Fig. 4.4's workload: dedup phase + overlap-link phase."""
    genome, segments = make_genome(genome_length, segment_length, seed)
    if variant == "fl":
        table = FLHashSet()
    elif variant == "tm":
        table = TMHashSet()
    elif variant == "ms":
        table = MSHashSet()
    else:
        raise ValueError(f"unknown variant {variant!r}")

    # ---- phase 1: dedup -----------------------------------------------------
    chunk = (len(segments) + n_threads - 1) // n_threads
    shards = [segments[i * chunk : (i + 1) * chunk] for i in range(n_threads)]

    def dedup(shard):
        for segment in shard:
            table.add(segment)

    elapsed1 = run_threads([(lambda s=s: dedup(s)) for s in shards], timeout=300.0)
    unique = sorted(table.contents())

    # ---- phase 2: overlap matching ------------------------------------------
    step = max(1, segment_length // 2)
    match_len = segment_length - step
    if variant == "fl":
        links: dict[str, Optional[str]] = {s: None for s in unique}
        taken: dict[str, bool] = {s: False for s in unique}
        link_locks = [threading.Lock() for _ in range(64)]

        def try_link(a: str, b: str) -> bool:
            i, j = hash(a) % 64, hash(b) % 64
            first, second = min(i, j), max(i, j)
            with link_locks[first]:
                if first != second:
                    link_locks[second].acquire()
                try:
                    if links[a] is None and not taken[b] and _overlap(a, b, match_len):
                        links[a] = b
                        taken[b] = True
                        return True
                    return False
                finally:
                    if first != second:
                        link_locks[second].release()

    elif variant == "tm":
        links_tm = {s: TVar(None) for s in unique}
        taken_tm = {s: TVar(False) for s in unique}

        def try_link(a: str, b: str) -> bool:
            def txn():
                if (
                    links_tm[a].get() is None
                    and not taken_tm[b].get()
                    and _overlap(a, b, match_len)
                ):
                    links_tm[a].set(b)
                    taken_tm[b].set(True)
                    return True
                return False

            return atomic(txn)

    else:  # ms
        records = {s: SegmentMonitor(s) for s in unique}

        def try_link(a: str, b: str) -> bool:
            ra, rb = records[a], records[b]
            if ra is rb:
                return False
            with multisynch(ra, rb):
                if ra.next is None and not rb.taken and _overlap(a, b, match_len):
                    ra.next = b
                    rb.taken = True
                    return True
                return False

    pairs = [
        (a, b) for a in unique for b in unique if a != b and _overlap(a, b, match_len)
    ]
    pair_chunk = (len(pairs) + n_threads - 1) // n_threads
    pair_shards = [
        pairs[i * pair_chunk : (i + 1) * pair_chunk] for i in range(n_threads)
    ]
    linked = [0] * n_threads

    def link(tid: int, shard):
        for a, b in shard:
            if try_link(a, b):
                linked[tid] += 1

    elapsed2 = run_threads(
        [(lambda t=t, s=s: link(t, s)) for t, s in enumerate(pair_shards)],
        timeout=300.0,
    )
    return RunResult(
        elapsed1 + elapsed2,
        len(segments) + len(pairs),
        {},
        extra={"unique": len(unique), "linked": sum(linked), "genome": len(genome)},
    )
