"""Ticket readers/writers — Figs. 2.7 / 2.12 (FIFO fairness via tickets).

Every arriving reader or writer draws a ticket; access is granted strictly
in ticket order (readers additionally overlap with the current reader
batch).  Each waiter blocks on an equivalence predicate over its own ticket
number — like round-robin, a workload where equivalence tags shine and a
hand-written array-of-conditions explicit monitor is the optimum.
"""

from __future__ import annotations

import threading

from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads, spin_delay


class TicketReadersWriters(Monitor):
    """AutoSynch ticket readers/writers monitor (paper Fig. A.3)."""

    def __init__(self, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.reader_count = 0
        self.tickets = 0
        self.serving = 0

    def start_read(self) -> None:
        ticket = self.tickets
        self.tickets += 1
        self.wait_until(S.serving == ticket)
        self.reader_count += 1
        self.serving += 1

    def end_read(self) -> None:
        self.reader_count -= 1

    def start_write(self) -> None:
        ticket = self.tickets
        self.tickets += 1
        self.wait_until((S.serving == ticket) & (S.reader_count == 0))
        # hold `serving` at our ticket until end_write so later arrivals wait

    def end_write(self) -> None:
        self.serving += 1


class ExplicitTicketReadersWriters:
    """Explicit-signal version: per-waiter condition keyed by ticket."""

    def __init__(self):
        self.reader_count = 0
        self.tickets = 0
        self.serving = 0
        self._mutex = threading.Lock()
        self._conds: dict[int, threading.Condition] = {}

    def _cond_for(self, ticket: int) -> threading.Condition:
        cond = self._conds.get(ticket)
        if cond is None:
            cond = threading.Condition(self._mutex)
            self._conds[ticket] = cond
        return cond

    def _signal_next(self) -> None:
        cond = self._conds.get(self.serving)
        if cond is not None:
            cond.notify()

    def start_read(self) -> None:
        with self._mutex:
            ticket = self.tickets
            self.tickets += 1
            while self.serving != ticket:
                self._cond_for(ticket).wait()
            self._conds.pop(ticket, None)
            self.reader_count += 1
            self.serving += 1
            self._signal_next()

    def end_read(self) -> None:
        with self._mutex:
            self.reader_count -= 1
            if self.reader_count == 0:
                self._signal_next()

    def start_write(self) -> None:
        with self._mutex:
            ticket = self.tickets
            self.tickets += 1
            while self.serving != ticket or self.reader_count != 0:
                self._cond_for(ticket).wait()
            self._conds.pop(ticket, None)

    def end_write(self) -> None:
        with self._mutex:
            self.serving += 1
            self._signal_next()


def run_readers_writers(
    mechanism: str,
    n_writers: int,
    n_readers: int,
    rounds: int,
    delay: float = 0.0,
) -> RunResult:
    """Figs. 2.7/2.12 workload: readers:writers at the paper's 5:1 ratio by
    default (callers pass n_readers = 5 * n_writers)."""
    if mechanism == "explicit":
        monitor = ExplicitTicketReadersWriters()
    else:
        monitor = TicketReadersWriters(signaling=mechanism)

    def reader():
        for _ in range(rounds):
            monitor.start_read()
            monitor.end_read()
            spin_delay(delay)

    def writer():
        for _ in range(rounds):
            monitor.start_write()
            monitor.end_write()
            spin_delay(delay)

    targets = [reader] * n_readers + [writer] * n_writers
    elapsed = run_threads(targets, timeout=300.0)
    metrics = monitor.metrics.snapshot() if isinstance(monitor, Monitor) else {}
    return RunResult(elapsed, (n_readers + n_writers) * rounds, metrics)
