"""The H2O problem — Fig. 2.5 (shared-predicate synchronization).

Hydrogen threads wait until an oxygen and another hydrogen are available;
the oxygen thread waits for two hydrogens (the paper's Fig. A.1 barrier).
All conditions are shared predicates, so every signaling mechanism can in
principle be efficient here — the figure's point is that the broadcast
baseline alone falls off a cliff.
"""

from __future__ import annotations

import threading

from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads


class H2OBarrier(Monitor):
    """AutoSynch H2O barrier (paper Fig. A.1)."""

    def __init__(self, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.available_o = 0
        self.available_h = 0
        self.waiting_o = 0
        self.waiting_h = 0

    def o_ready(self) -> None:
        self.waiting_o += 1
        self.wait_until((S.available_o > 0) | (S.waiting_h >= 2))
        if self.available_o == 0:
            self.waiting_h -= 2
            self.available_h += 2
            self.waiting_o -= 1
        else:
            self.available_o -= 1

    def h_ready(self) -> None:
        self.waiting_h += 1
        self.wait_until(
            (S.available_h > 0) | ((S.waiting_o >= 1) & (S.waiting_h >= 2))
        )
        if self.available_h == 0:
            self.waiting_h -= 2
            self.available_h += 1
            self.waiting_o -= 1
            self.available_o += 1
        else:
            self.available_h -= 1


class ExplicitH2OBarrier:
    """Explicit-signal H2O barrier: broadcast whenever the pool changes
    (hand-optimizing which waiter to wake needs per-thread CVs)."""

    def __init__(self):
        self.available_o = 0
        self.available_h = 0
        self.waiting_o = 0
        self.waiting_h = 0
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)

    def o_ready(self) -> None:
        with self._mutex:
            self.waiting_o += 1
            while not (self.available_o > 0 or self.waiting_h >= 2):
                self._cond.wait()
            if self.available_o == 0:
                self.waiting_h -= 2
                self.available_h += 2
                self.waiting_o -= 1
            else:
                self.available_o -= 1
            self._cond.notify_all()

    def h_ready(self) -> None:
        with self._mutex:
            self.waiting_h += 1
            while not (
                self.available_h > 0 or (self.waiting_o >= 1 and self.waiting_h >= 2)
            ):
                self._cond.wait()
            if self.available_h == 0:
                self.waiting_h -= 2
                self.available_h += 1
                self.waiting_o -= 1
                self.available_o += 1
            else:
                self.available_h -= 1
            self._cond.notify_all()


def run_h2o(mechanism: str, n_hydrogen: int, molecules: int) -> RunResult:
    """Fig. 2.5's workload: one O thread, ``n_hydrogen`` H threads, forming
    ``molecules`` water molecules total (each = 1 O + 2 H arrivals)."""
    if n_hydrogen < 2:
        raise ValueError("need at least two hydrogen threads")
    if mechanism == "explicit":
        barrier = ExplicitH2OBarrier()
    else:
        barrier = H2OBarrier(signaling=mechanism)

    # H arrivals are claimed from a shared ticket pool rather than split into
    # fixed per-thread quotas: with quotas, one thread can end up holding all
    # remaining arrivals and strand (a lone H has no partner).  With a pool,
    # the terminal in-flight count is even (completed arrivals come in pairs),
    # so two waiting H threads always exist for the last molecule.
    tickets = [2 * molecules]
    ticket_lock = threading.Lock()

    def claim() -> bool:
        with ticket_lock:
            if tickets[0] == 0:
                return False
            tickets[0] -= 1
            return True

    def oxygen():
        for _ in range(molecules):
            barrier.o_ready()

    def hydrogen():
        while claim():
            barrier.h_ready()

    targets = [oxygen] + [hydrogen] * n_hydrogen
    elapsed = run_threads(targets, timeout=300.0)
    metrics = barrier.metrics.snapshot() if isinstance(barrier, Monitor) else {}
    return RunResult(elapsed, 3 * molecules, metrics)
