"""Problem inventory — regenerates Tables 3.1 and 3.2.

Each entry records the paper's short description and critical-section
classification so the bench layer can print the tables verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProblemInfo:
    name: str
    description: str           # Table 3.1's "Short Description"
    cs_work: str               # Table 3.2's "CS Work [Type]"
    details: str               # Table 3.2's "Details"
    module: str                # where this repo implements it


PROBLEMS: dict[str, ProblemInfo] = {
    "PSSSP": ProblemInfo(
        "PSSSP",
        "Parallel Dijkstra's single-source-shortest-path algorithm",
        "O(log n) [Heavy]",
        "(a) road-network-style grids  (b) R-MAT graphs",
        "repro.problems.psssp",
    ),
    "BQ": ProblemInfo(
        "BQ",
        "Bounded FIFO queue of plain objects",
        "O(1) [Light]",
        "capacity varied from 4 to 64 (# enqueuers = # dequeuers)",
        "repro.problems.bounded_buffer",
    ),
    "SLL": ProblemInfo(
        "SLL",
        "Non-decreasing sorted linked-list of integers",
        "O(n) [Heavy]",
        "read-heavy 90/9/1; write-heavy 0/50/50; mixed 70/20/10",
        "repro.problems.sorted_list",
    ),
    "RR": ProblemInfo(
        "RR",
        "Round-robin monitor access",
        "O(1) [Light]",
        "each thread accesses the monitor in round-robin order by id",
        "repro.problems.round_robin",
    ),
}


def table_3_1_rows() -> list[tuple[str, str]]:
    return [(p.name, p.description) for p in PROBLEMS.values()]


def table_3_2_rows() -> list[tuple[str, str, str]]:
    return [(p.name, p.cs_work, p.details) for p in PROBLEMS.values()]
