"""Parallel SSSP (Dijkstra with a shared priority queue) — Fig. 3.3.

The paper parallelizes Dijkstra by sharing one blocking priority queue
among worker threads: each worker pops the globally smallest tentative
distance, relaxes its edges, and pushes improved neighbours.  The three
variants mirror the figure's series:

* ``lk``  — explicit-lock blocking priority queue;
* ``am``  — ActiveMonitor priority queue with *asynchronous* ``put`` (the
  only change the paper makes);
* ``ams`` — same monitor, synchronous delegation.

Termination uses an in-flight counter: the algorithm is done when the queue
is empty and no worker is mid-relaxation.  Distances are tracked in a
per-slot-locked array (the relaxation CAS loop of the original).
"""

from __future__ import annotations

import heapq
import threading
from typing import Optional

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.problems.common import RunResult, run_threads
from repro.problems.graphs import Adjacency, edge_count


class LockPriorityQueue:
    """Blocking priority queue: one mutex + one condition (LK variant)."""

    def __init__(self):
        self._heap: list[tuple[float, int]] = []
        self._mutex = threading.Lock()
        self._nonempty = threading.Condition(self._mutex)
        self._closed = False

    def put(self, item: tuple[float, int]) -> None:
        with self._mutex:
            heapq.heappush(self._heap, item)
            self._nonempty.notify()

    def take(self) -> Optional[tuple[float, int]]:
        with self._mutex:
            while not self._heap and not self._closed:
                self._nonempty.wait()
            if self._heap:
                return heapq.heappop(self._heap)
            return None

    def close(self) -> None:
        with self._mutex:
            self._closed = True
            self._nonempty.notify_all()


class ActivePriorityQueue(ActiveMonitor):
    """ActiveMonitor priority queue: asynchronous put (AM / AMS variants)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.heap: list[tuple[float, int]] = []
        self.closed = False

    @asynchronous()
    def put(self, item: tuple[float, int]) -> None:
        heapq.heappush(self.heap, item)

    @synchronous(pre=lambda self: bool(self.heap) or self.closed)
    def take(self) -> Optional[tuple[float, int]]:
        if self.heap:
            return heapq.heappop(self.heap)
        return None

    @synchronous()
    def close(self) -> None:
        self.closed = True


class _DistanceTable:
    """Tentative distances with a striped-lock relax operation."""

    STRIPES = 64

    def __init__(self, n: int, source: int):
        self.dist = [float("inf")] * n
        self.dist[source] = 0.0
        self._locks = [threading.Lock() for _ in range(self.STRIPES)]

    def relax(self, v: int, candidate: float) -> bool:
        with self._locks[v % self.STRIPES]:
            if candidate < self.dist[v]:
                self.dist[v] = candidate
                return True
            return False


def parallel_sssp(
    graph: Adjacency,
    source: int,
    variant: str,
    n_threads: int,
) -> tuple[list[float], float]:
    """Run one PSSSP computation; returns (distances, elapsed_seconds)."""
    if variant == "lk":
        queue = LockPriorityQueue()
    elif variant == "am":
        queue = ActivePriorityQueue(mode="async")
    elif variant == "ams":
        queue = ActivePriorityQueue(mode="delegate")
    else:
        raise ValueError(f"unknown variant {variant!r}")

    table = _DistanceTable(len(graph), source)
    pending = _PendingCounter()

    pending.increment()
    queue.put((0.0, source))

    def worker():
        while True:
            item = queue.take()
            if item is None:
                return
            d, u = item
            try:
                if d <= table.dist[u]:
                    for v, w in graph[u]:
                        nd = d + w
                        if table.relax(v, nd):
                            pending.increment()
                            queue.put((nd, v))
            finally:
                if pending.decrement() == 0:
                    queue.close()

    targets = [worker] * n_threads
    try:
        elapsed = run_threads(targets, timeout=300.0)
    finally:
        if isinstance(queue, ActiveMonitor):
            queue.shutdown()
    return table.dist, elapsed


class _PendingCounter:
    """Counts queue items not yet fully processed (termination detection)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def increment(self) -> None:
        with self._lock:
            self._value += 1

    def decrement(self) -> int:
        with self._lock:
            self._value -= 1
            return self._value


def run_psssp(graph: Adjacency, variant: str, n_threads: int,
              source: int = 0) -> RunResult:
    """Fig. 3.3's measurement: throughput in edges traversed per second."""
    dist, elapsed = parallel_sssp(graph, source, variant, n_threads)
    edges = edge_count(graph)
    return RunResult(elapsed, edges, {}, extra={"distances": dist})
