"""Concurrent sorted linked list (SLL) — Fig. 3.5's heavy-critical-section
workload.

The list is a non-decreasing singly linked list of integers protected by one
monitor; every operation walks the list inside the critical section (the
paper classifies SLL as *heavy*, O(n) work under the lock).  Variants:

* ``lk``  — reentrant-lock monitor (read/write via one mutex);
* ``am``  — ActiveMonitor: inserts/deletes asynchronous, searches synchronous;
* ``ams`` — same tasks but every call blocks on its future (delegation only).

Workload mixes follow Table 3.2: read-heavy (90/9/1), write-heavy (0/50/50),
mixed (70/20/10); operands uniform in [0, 2000); pre-populated with 1000
entries so ~half the operations succeed.
"""

from __future__ import annotations

import random
import threading

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.problems.common import RunResult, run_threads

MIXES = {
    "read-heavy": (0.90, 0.09, 0.01),
    "write-heavy": (0.00, 0.50, 0.50),
    "mixed": (0.70, 0.20, 0.10),
}

VALUE_RANGE = 2000
PREPOPULATE = 1000


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: int, nxt: "_Node | None" = None):
        self.value = value
        self.next = nxt


def _insert(head: _Node, value: int) -> bool:
    node = head
    while node.next is not None and node.next.value < value:
        node = node.next
    if node.next is not None and node.next.value == value:
        return False
    node.next = _Node(value, node.next)
    return True


def _delete(head: _Node, value: int) -> bool:
    node = head
    while node.next is not None and node.next.value < value:
        node = node.next
    if node.next is None or node.next.value != value:
        return False
    node.next = node.next.next
    return True


def _contains(head: _Node, value: int) -> bool:
    node = head.next
    while node is not None and node.value < value:
        node = node.next
    return node is not None and node.value == value


class LockSortedList:
    """Plain mutex-protected sorted list (the LK comparator)."""

    def __init__(self):
        self._head = _Node(-1)
        self._mutex = threading.Lock()

    def insert(self, value: int) -> bool:
        with self._mutex:
            return _insert(self._head, value)

    def delete(self, value: int) -> bool:
        with self._mutex:
            return _delete(self._head, value)

    def contains(self, value: int) -> bool:
        with self._mutex:
            return _contains(self._head, value)

    def snapshot(self) -> list[int]:
        with self._mutex:
            out, node = [], self._head.next
            while node is not None:
                out.append(node.value)
                node = node.next
            return out


class ActiveSortedList(ActiveMonitor):
    """ActiveMonitor sorted list: asynchronous mutators, synchronous reads."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.head = _Node(-1)

    @asynchronous()
    def insert(self, value: int) -> bool:
        return _insert(self.head, value)

    @asynchronous()
    def delete(self, value: int) -> bool:
        return _delete(self.head, value)

    @synchronous()
    def contains(self, value: int) -> bool:
        return _contains(self.head, value)

    @synchronous()
    def snapshot(self) -> list[int]:
        out, node = [], self.head.next
        while node is not None:
            out.append(node.value)
            node = node.next
        return out


def run_sorted_list(
    variant: str,
    mix: str,
    n_threads: int,
    ops_per_thread: int,
    seed: int = 7,
) -> RunResult:
    """Fig. 3.5's SLL workload."""
    p_read, p_ins, _p_del = MIXES[mix]
    rng = random.Random(seed)
    if variant == "lk":
        lst = LockSortedList()
    elif variant == "am":
        lst = ActiveSortedList(mode="async")
    elif variant == "ams":
        lst = ActiveSortedList(mode="delegate")
    else:
        raise ValueError(f"unknown variant {variant!r}")

    base = rng.sample(range(VALUE_RANGE), PREPOPULATE)
    if isinstance(lst, ActiveSortedList):
        for v in base:
            lst.insert(v)
        lst.flush()
    else:
        for v in base:
            lst.insert(v)

    plans = []
    for _ in range(n_threads):
        plan = []
        for _ in range(ops_per_thread):
            roll = rng.random()
            value = rng.randrange(VALUE_RANGE)
            if roll < p_read:
                plan.append(("contains", value))
            elif roll < p_read + p_ins:
                plan.append(("insert", value))
            else:
                plan.append(("delete", value))
        plans.append(plan)

    def worker(plan):
        for op, value in plan:
            getattr(lst, op)(value)

    targets = [(lambda p=plan: worker(p)) for plan in plans]
    try:
        elapsed = run_threads(targets, timeout=300.0)
        if isinstance(lst, ActiveSortedList):
            lst.flush()
    finally:
        if isinstance(lst, ActiveSortedList):
            lst.shutdown()
    return RunResult(elapsed, n_threads * ops_per_thread, {})
