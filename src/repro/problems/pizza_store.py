"""The pizza-store problem — Figs. 4.7 / 4.8 (global AND conditions).

Cooks wait until every ingredient they need is in stock (a conjunction of
per-ingredient thresholds spanning several monitors), then consume; suppliers
restock.  Variants:

* ``gl`` — one coarse-grained lock + one condition variable over the whole
  store (cooks needing disjoint ingredients still serialize);
* ``tm`` — ingredient quantities as TVars; a cook's acquire is one
  transaction that ``retry()``s until stocked;
* ``as`` / ``av`` / ``cc`` — each ingredient its own monitor; the cook uses
  ``multisynch`` + a global conjunction, under the three signaling
  strategies.  Fig. 4.8's *false evaluations* = waiter wakeups whose global
  predicate re-check failed.
"""

from __future__ import annotations

import random
import threading

import time

from repro.core import Monitor, S
from repro.multi import local, manager, multisynch
from repro.problems.common import RunResult, run_threads
from repro.runtime.errors import WaitTimeoutError
from repro.stm import TVar, atomic, retry

N_INGREDIENTS = 15
N_RECIPES = 15
MAX_NEED = 6
#: one restock enables roughly one cook — keeps ingredients scarce enough
#: that cooks actually block (the regime Figs. 4.7/4.8 measure)
RESTOCK = 6
CAPACITY = 60


def make_recipes(seed: int = 11) -> list[dict[int, int]]:
    """One recipe per pizza type: 3 ingredients, quantities 1..MAX_NEED."""
    rng = random.Random(seed)
    recipes = []
    for _ in range(N_RECIPES):
        chosen = rng.sample(range(N_INGREDIENTS), 3)
        recipes.append({i: rng.randint(1, MAX_NEED) for i in chosen})
    return recipes


class Ingredient(Monitor):
    """One ingredient as a monitor object."""

    def __init__(self, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.quantity = 0

    def consume(self, n: int) -> None:
        self.quantity -= n

    def produce(self, n: int) -> None:
        self.quantity = min(CAPACITY, self.quantity + n)


class CoarseStore:
    """GL variant: one lock, one broadcast condition, a plain dict."""

    def __init__(self):
        self.quantity = [0] * N_INGREDIENTS
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)

    def cook(self, recipe: dict[int, int]) -> None:
        with self._mutex:
            while not all(self.quantity[i] >= n for i, n in recipe.items()):
                self._cond.wait()
            for i, n in recipe.items():
                self.quantity[i] -= n

    def supply(self, ingredient: int, n: int) -> None:
        with self._mutex:
            self.quantity[ingredient] = min(CAPACITY, self.quantity[ingredient] + n)
            self._cond.notify_all()


class TMStore:
    """TM variant: quantities in TVars, conditional acquire via retry()."""

    def __init__(self):
        self.quantity = [TVar(0) for _ in range(N_INGREDIENTS)]

    def cook(self, recipe: dict[int, int]) -> None:
        def txn():
            for i, n in recipe.items():
                if self.quantity[i].get() < n:
                    retry()
            for i, n in recipe.items():
                self.quantity[i].set(self.quantity[i].get() - n)

        atomic(txn)

    def supply(self, ingredient: int, n: int) -> None:
        atomic(lambda: self.quantity[ingredient].set(
            min(CAPACITY, self.quantity[ingredient].get() + n)))


class MonitorStore:
    """AS/AV/CC variants: one monitor per ingredient + multisynch."""

    def __init__(self, strategy: str):
        self.ingredients = [Ingredient() for _ in range(N_INGREDIENTS)]
        self.strategy = strategy

    def cook(self, recipe: dict[int, int]) -> None:
        objs = [self.ingredients[i] for i in recipe]
        condition = None
        for i, n in recipe.items():
            atom = local(self.ingredients[i], S.quantity >= n)
            condition = atom if condition is None else (condition & atom)
        with multisynch(objs, strategy=self.strategy) as ms:
            ms.wait_until(condition)
            for i, n in recipe.items():
                self.ingredients[i].consume(n)

    def cook_until(self, recipe: dict[int, int],
                   deadline: float | None = None, cancel=None) -> None:
        """Deadline-bounded cook (repro.loadsim service facade).

        The per-request deadline rides on the multisynch global wait;
        a cook whose deadline already passed before it won the ingredient
        locks fails fast with :class:`WaitTimeoutError` instead of
        consuming stock it no longer has time to use.
        """
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("cook deadline expired before acquisition")
        objs = [self.ingredients[i] for i in recipe]
        condition = None
        for i, n in recipe.items():
            atom = local(self.ingredients[i], S.quantity >= n)
            condition = atom if condition is None else (condition & atom)
        with multisynch(objs, strategy=self.strategy) as ms:
            ms.wait_until(condition, deadline=deadline, cancel=cancel)
            for i, n in recipe.items():
                self.ingredients[i].consume(n)

    def supply(self, ingredient: int, n: int) -> None:
        self.ingredients[ingredient].produce(n)


def make_store(variant: str):
    if variant == "gl":
        return CoarseStore()
    if variant == "tm":
        return TMStore()
    if variant in ("as", "av", "cc"):
        return MonitorStore(variant.upper())
    raise ValueError(f"unknown variant {variant!r}")


def run_pizza_store(
    variant: str,
    n_cooks: int,
    pizzas_per_cook: int,
    n_suppliers: int = 1,
    seed: int = 11,
) -> RunResult:
    """Figs. 4.7/4.8 workload: cooks make random pizza types; suppliers
    restock every ingredient round-robin until all cooks finish."""
    store = make_store(variant)
    recipes = make_recipes(seed)
    rng = random.Random(seed + 1)
    plans = [
        [recipes[rng.randrange(N_RECIPES)] for _ in range(pizzas_per_cook)]
        for _ in range(n_cooks)
    ]
    done = threading.Event()
    finished = [0]
    finished_lock = threading.Lock()
    manager.global_condition_metrics.reset()

    def cook(plan):
        for recipe in plan:
            store.cook(recipe)
        with finished_lock:
            finished[0] += 1
            if finished[0] == n_cooks:
                done.set()

    def supplier(offset: int):
        i = offset
        while not done.is_set():
            store.supply(i % N_INGREDIENTS, RESTOCK)
            i += 1
        # top everything up so no cook is stranded mid-exit
        for j in range(N_INGREDIENTS):
            store.supply(j, RESTOCK)

    targets = [(lambda p=plan: cook(p)) for plan in plans] + [
        (lambda o=o: supplier(o)) for o in range(n_suppliers)
    ]
    elapsed = run_threads(targets, timeout=300.0)
    metrics = manager.global_condition_metrics.snapshot()
    return RunResult(elapsed, n_cooks * pizzas_per_cook, metrics)
