"""Dining philosophers — Fig. 2.8 (single monitor) and Fig. 4.3 (multisynch).

Chapter 2 (Fig. 2.8) models the table as *one* monitor: a philosopher waits
until both neighbouring forks are free.  Mechanisms: explicit (per-
philosopher condition variables), baseline, autosynch_t, autosynch.

Chapter 4 (Fig. 4.3) makes each fork its own object:

* **FL** — fine-grained locking with the textbook asymmetric acquisition
  (odd philosophers pick left first, even pick right first);
* **TM** — each fork is a transactional boolean; pick both atomically;
* **MS** — each fork is a monitor; ``multisynch(left, right)`` (the paper's
  Fig. 1.4), with the system choosing the lock order.
"""

from __future__ import annotations

import threading

from repro.core import Monitor, S
from repro.multi import multisynch
from repro.problems.common import RunResult, run_threads, spin_delay
from repro.stm import TVar, atomic, retry


# --------------------------------------------------------------- Chapter 2
class DiningTableMonitor(Monitor):
    """Single-monitor philosophers: wait until both forks free (Fig. 2.8)."""

    def __init__(self, n: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.n = n
        self.forks = [True] * n  # True = free

    def pick_up(self, i: int) -> None:
        left, right = i, (i + 1) % self.n
        self.wait_until(lambda: self.forks[left] and self.forks[right])
        self.forks[left] = self.forks[right] = False

    def put_down(self, i: int) -> None:
        left, right = i, (i + 1) % self.n
        self.forks[left] = self.forks[right] = True


class ExplicitDiningTable:
    """Explicit-signal single-monitor philosophers: notify both neighbours."""

    def __init__(self, n: int):
        self.n = n
        self.forks = [True] * n
        self._mutex = threading.Lock()
        self._conds = [threading.Condition(self._mutex) for _ in range(n)]

    def pick_up(self, i: int) -> None:
        left, right = i, (i + 1) % self.n
        with self._mutex:
            while not (self.forks[left] and self.forks[right]):
                self._conds[i].wait()
            self.forks[left] = self.forks[right] = False

    def put_down(self, i: int) -> None:
        left, right = i, (i + 1) % self.n
        with self._mutex:
            self.forks[left] = self.forks[right] = True
            self._conds[(i - 1) % self.n].notify()
            self._conds[(i + 1) % self.n].notify()


def run_dining_monitor(mechanism: str, n_philosophers: int, meals: int) -> RunResult:
    """Fig. 2.8's workload: each philosopher eats ``meals`` times."""
    if mechanism == "explicit":
        table = ExplicitDiningTable(n_philosophers)
    else:
        table = DiningTableMonitor(n_philosophers, signaling=mechanism)

    def philosopher(i: int):
        for _ in range(meals):
            table.pick_up(i)
            table.put_down(i)

    targets = [(lambda i=i: philosopher(i)) for i in range(n_philosophers)]
    elapsed = run_threads(targets, timeout=300.0)
    metrics = table.metrics.snapshot() if isinstance(table, Monitor) else {}
    return RunResult(elapsed, n_philosophers * meals, metrics)


# --------------------------------------------------------------- Chapter 4
class ForkMonitor(Monitor):
    """One fork as a monitor object (for the MS variant, Fig. 1.4)."""

    def __init__(self, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.free = True

    def pick(self) -> None:
        self.wait_until(S.free == True)  # noqa: E712 — DSL comparison
        self.free = False

    def put(self) -> None:
        self.free = True


def run_dining_multi(
    variant: str,
    n_philosophers: int,
    meals: int,
    think: float = 0.0,
) -> RunResult:
    """Fig. 4.3's saturation workload over FL / TM / MS fork objects."""
    n = n_philosophers

    if variant == "fl":
        forks = [threading.Lock() for _ in range(n)]

        def eat(i: int):
            left, right = i, (i + 1) % n
            # asymmetric order avoids deadlock
            first, second = (left, right) if i % 2 == 0 else (right, left)
            with forks[first]:
                with forks[second]:
                    pass

    elif variant == "tm":
        forks = [TVar(True) for _ in range(n)]

        def eat(i: int):
            left, right = i, (i + 1) % n

            def grab():
                if not (forks[left].get() and forks[right].get()):
                    retry()
                forks[left].set(False)
                forks[right].set(False)

            def release():
                forks[left].set(True)
                forks[right].set(True)

            atomic(grab)
            atomic(release)

    elif variant == "ms":
        forks = [ForkMonitor() for _ in range(n)]

        def eat(i: int):
            left, right = forks[i], forks[(i + 1) % n]
            with multisynch(left, right):
                left.pick()
                right.pick()
                left.put()
                right.put()

    else:
        raise ValueError(f"unknown variant {variant!r}")

    def philosopher(i: int):
        for _ in range(meals):
            eat(i)
            spin_delay(think)

    targets = [(lambda i=i: philosopher(i)) for i in range(n)]
    elapsed = run_threads(targets, timeout=300.0)
    return RunResult(elapsed, n * meals, {})
