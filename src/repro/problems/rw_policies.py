"""Readers/writers with pluggable preference — the paper's Fig. 6.1.

Chapter 6 argues one readers/writers monitor should serve as fair,
reader-preference, or writer-preference *without code changes*, by choosing
an execution policy.  Here the lock phases are delegated guarded tasks, so
:class:`~repro.active.policies.Policy` decides which parked request runs
first whenever the monitor frees up:

* ``Policy.FAIRNESS``  — strict arrival order (no starvation);
* ``Policy.PRIORITY`` with writer methods annotated higher — writer
  preference (readers still batch between writers);
* swap the annotations for reader preference.
"""

from __future__ import annotations

from repro.active import ActiveMonitor, Policy, asynchronous, synchronous
from repro.problems.common import RunResult, run_threads


class PolicyReadersWriters(ActiveMonitor):
    """Readers/writers monitor whose preference is the execution policy.

    ``writer_priority`` > ``reader_priority`` gives writer preference under
    ``Policy.PRIORITY``; the reverse gives reader preference; priorities are
    ignored by ``Policy.FAIRNESS`` / ``Policy.SAFE``.
    """

    def __init__(self, policy: Policy = Policy.FAIRNESS,
                 writer_priority: int = 2, reader_priority: int = 1):
        super().__init__(policy=policy)
        self.reader_count = 0
        self.writing = False
        self.history: list[str] = []
        # per-instance priorities require rebinding the guarded methods
        self._writer_priority = writer_priority
        self._reader_priority = reader_priority

    @asynchronous(pre=lambda self: not self.writing, priority=1)
    def start_read(self) -> None:
        self.reader_count += 1
        self.history.append("R")

    @asynchronous(priority=1)
    def end_read(self) -> None:
        self.reader_count -= 1

    @asynchronous(pre=lambda self: not self.writing and self.reader_count == 0,
                  priority=2)
    def start_write(self) -> None:
        self.writing = True
        self.history.append("W")

    @asynchronous(priority=2)
    def end_write(self) -> None:
        self.writing = False


def run_rw_policy(
    policy: Policy,
    n_readers: int,
    n_writers: int,
    rounds: int,
) -> RunResult:
    """Drive the monitor and report the interleaving history."""
    monitor = PolicyReadersWriters(policy=policy)

    def reader():
        for _ in range(rounds):
            monitor.start_read().get(timeout=60)
            monitor.end_read().get(timeout=60)

    def writer():
        for _ in range(rounds):
            monitor.start_write().get(timeout=60)
            monitor.end_write().get(timeout=60)

    targets = [reader] * n_readers + [writer] * n_writers
    try:
        elapsed = run_threads(targets, timeout=120.0)
        monitor.flush()
        history = list(monitor.history)
    finally:
        monitor.shutdown()
    return RunResult(elapsed, (n_readers + n_writers) * rounds,
                     extra={"history": history})
