"""Multicast channels communication — Fig. 5.2 (the paper's Fig. 5.1).

A server drains requests from one bounded queue per client using
``selectone`` (take a message from *any* non-empty queue).  Variants:

* ``gl`` — one coarse lock + broadcast condition over all queues;
* ``tm`` — per-queue counts in TVars, server transaction retries until some
  queue is non-empty;
* ``as`` / ``av`` / ``cc`` — synchronous ``select_one`` over per-queue
  monitors under each global-condition strategy;
* ``am`` — asynchronous ``async_select_one`` on ActiveMonitor queues
  (§5.3's delegated composition — slower, as Fig. 5.2 shows, because task
  creation overhead offsets the parallelism).
"""

from __future__ import annotations

import threading
import time

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.compose import async_select_one, bind, select_one
from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads
from repro.runtime.errors import WaitTimeoutError


class ChannelQueue(ActiveMonitor):
    """A client's request queue (usable in both sync and async variants)."""

    def __init__(self, capacity: int, **kwargs):
        super().__init__(**kwargs)
        self.items: list[int] = []
        self.capacity = capacity
        self.count = 0

    @synchronous(pre=lambda self, item: self.count < self.capacity)
    def put(self, item: int) -> None:
        self.items.append(item)
        self.count += 1

    @synchronous(pre=lambda self: self.count > 0)
    def take(self) -> int:
        self.count -= 1
        return self.items.pop(0)

    # Deadline-bounded service facade (repro.loadsim).  A request that
    # burned its whole deadline queueing for the channel lock — e.g.
    # because the channel's shard is partitioned — fails fast on entry,
    # which is what lets a frozen shard *drain* (as timeouts) on heal.
    def put_until(self, item: int, deadline: float | None = None,
                  cancel=None) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("put deadline expired before channel entry")
        self.wait_until(S.count < S.capacity, deadline=deadline, cancel=cancel)
        self.items.append(item)
        self.count += 1

    def take_until(self, deadline: float | None = None, cancel=None) -> int:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("take deadline expired before channel entry")
        self.wait_until(S.count > 0, deadline=deadline, cancel=cancel)
        self.count -= 1
        return self.items.pop(0)


class AsyncChannelQueue(ActiveMonitor):
    """Async variant: the put is delegated too."""

    def __init__(self, capacity: int, **kwargs):
        super().__init__(**kwargs)
        self.items: list[int] = []
        self.capacity = capacity
        self.count = 0

    @asynchronous(pre=lambda self, item: self.count < self.capacity)
    def put(self, item: int) -> None:
        self.items.append(item)
        self.count += 1

    @synchronous(pre=lambda self: self.count > 0)
    def take(self) -> int:
        self.count -= 1
        return self.items.pop(0)

    # Deadline-bounded take for the loadsim drainers: the delegated ``put``
    # side is deadline-bounded on its future instead.
    def take_until(self, deadline: float | None = None, cancel=None) -> int:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("take deadline expired before channel entry")
        self.wait_until(S.count > 0, deadline=deadline, cancel=cancel)
        self.count -= 1
        return self.items.pop(0)


def run_multicast(
    variant: str,
    n_clients: int,
    requests_per_client: int,
    capacity: int = 64,
) -> RunResult:
    """Fig. 5.2's workload: clients enqueue; the server selectones until all
    requests are handled."""
    total = n_clients * requests_per_client

    if variant == "gl":
        queues_gl: list[list[int]] = [[] for _ in range(n_clients)]
        mutex = threading.Lock()
        cond = threading.Condition(mutex)

        def client(i: int):
            for r in range(requests_per_client):
                with mutex:
                    while len(queues_gl[i]) >= capacity:
                        cond.wait()
                    queues_gl[i].append(r)
                    cond.notify_all()

        def server():
            for _ in range(total):
                with mutex:
                    while not any(queues_gl):
                        cond.wait()
                    q = next(q for q in queues_gl if q)
                    q.pop(0)
                    cond.notify_all()

    elif variant == "tm":
        from repro.stm import TVar, atomic, retry

        counts = [TVar(0) for _ in range(n_clients)]
        payloads: list[list[int]] = [[] for _ in range(n_clients)]
        payload_lock = threading.Lock()

        def client(i: int):
            for r in range(requests_per_client):
                def put_txn():
                    c = counts[i].get()
                    if c >= capacity:
                        retry()
                    counts[i].set(c + 1)

                atomic(put_txn)
                with payload_lock:
                    payloads[i].append(r)

        def server():
            for _ in range(total):
                def take_txn():
                    for i in range(n_clients):
                        c = counts[i].get()
                        if c > 0:
                            counts[i].set(c - 1)
                            return i
                    retry()

                i = atomic(take_txn)
                with payload_lock:
                    if payloads[i]:
                        payloads[i].pop(0)

    elif variant in ("as", "av", "cc"):
        strategy = variant.upper()
        queues = [ChannelQueue(capacity, mode="sync") for _ in range(n_clients)]

        def client(i: int):
            for r in range(requests_per_client):
                queues[i].put(r)

        def server():
            for _ in range(total):
                select_one([bind(q.take) for q in queues], strategy=strategy)

    elif variant == "am":
        from repro.runtime import get_config

        cfg = get_config()
        saved_cap = cfg.max_server_threads
        cfg.max_server_threads = n_clients + 2  # every channel needs a server
        try:
            queues = [AsyncChannelQueue(capacity, mode="async") for _ in range(n_clients)]
        finally:
            cfg.max_server_threads = saved_cap

        def client(i: int):
            for r in range(requests_per_client):
                queues[i].put(r)

        def server():
            for _ in range(total):
                async_select_one([bind(q.take) for q in queues])

    else:
        raise ValueError(f"unknown variant {variant!r}")

    targets = [(lambda i=i: client(i)) for i in range(n_clients)] + [server]
    try:
        elapsed = run_threads(targets, timeout=300.0)
    finally:
        if variant == "am":
            for q in queues:
                q.shutdown()
    return RunResult(elapsed, total, {})
