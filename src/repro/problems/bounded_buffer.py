"""The bounded-buffer (producer/consumer) problem — Figs. 2.4 and 3.4.

Variants:

* ``make_queue("explicit")``    — explicit-signal monitor: a lock with two
  condition variables (``not_full`` / ``not_empty``), single ``signal`` per
  operation, the classic Java shape;
* ``make_queue("baseline")``    — automatic signaling via broadcast;
* ``make_queue("autosynch_t")`` — relay signaling, no tags;
* ``make_queue("autosynch")``   — full AutoSynch;
* :class:`ActiveBoundedQueue`   — the ActiveMonitor version (asynchronous
  ``put``, synchronous ``take``) used by Fig. 3.4's AM / AMS rows;
* :class:`QDBoundedQueue`       — queue-delegation locking approximation
  (Fig. 3.4's QD row): operations are delegated to whichever thread holds
  the lock, but waiting on conditions happens under one global condition
  variable, mimicking QD's lack of native conditional synchronization.
"""

from __future__ import annotations

import threading
from typing import Any

import time

from repro.active import ActiveMonitor, asynchronous, synchronous
from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads, spin_delay
from repro.runtime.errors import WaitTimeoutError


class ExplicitBoundedQueue:
    """Hand-written explicit-signal bounded queue (the paper's Fig. 1.1)."""

    def __init__(self, capacity: int):
        self.items: list[Any] = [None] * capacity
        self.put_ptr = self.take_ptr = self.count = 0
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._not_full = threading.Condition(self._mutex)
        self._not_empty = threading.Condition(self._mutex)

    def put(self, item: Any) -> None:
        with self._mutex:
            while self.count == self.capacity:
                self._not_full.wait()
            self.items[self.put_ptr] = item
            self.put_ptr = (self.put_ptr + 1) % self.capacity
            self.count += 1
            self._not_empty.notify()

    def take(self) -> Any:
        with self._mutex:
            while self.count == 0:
                self._not_empty.wait()
            item = self.items[self.take_ptr]
            self.take_ptr = (self.take_ptr + 1) % self.capacity
            self.count -= 1
            self._not_full.notify()
            return item


class AutoBoundedQueue(Monitor):
    """Automatic-signal bounded queue (the paper's Fig. 1.2)."""

    def __init__(self, capacity: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.items: list[Any] = [None] * capacity
        self.put_ptr = self.take_ptr = self.count = 0
        self.capacity = capacity

    def put(self, item: Any) -> None:
        self.wait_until(S.count < S.capacity)
        self.items[self.put_ptr] = item
        self.put_ptr = (self.put_ptr + 1) % self.capacity
        self.count += 1

    def take(self) -> Any:
        self.wait_until(S.count > 0)
        item = self.items[self.take_ptr]
        self.take_ptr = (self.take_ptr + 1) % self.capacity
        self.count -= 1
        return item

    # Deadline-bounded service facade (repro.loadsim): the same operations
    # with per-request deadlines.  A caller that spent its whole deadline
    # queueing for the monitor lock fails fast on entry instead of starting
    # a wait it has already lost.
    def put_until(self, item: Any, deadline: float | None = None,
                  cancel=None) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("put deadline expired before section entry")
        self.wait_until(S.count < S.capacity, deadline=deadline, cancel=cancel)
        self.items[self.put_ptr] = item
        self.put_ptr = (self.put_ptr + 1) % self.capacity
        self.count += 1

    def take_until(self, deadline: float | None = None, cancel=None) -> Any:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("take deadline expired before section entry")
        self.wait_until(S.count > 0, deadline=deadline, cancel=cancel)
        item = self.items[self.take_ptr]
        self.take_ptr = (self.take_ptr + 1) % self.capacity
        self.count -= 1
        return item


class ActiveBoundedQueue(ActiveMonitor):
    """ActiveMonitor bounded queue (the paper's Fig. 1.3 / 3.1)."""

    def __init__(self, capacity: int, **kwargs):
        super().__init__(**kwargs)
        self.items: list[Any] = [None] * capacity
        self.put_ptr = self.take_ptr = self.count = 0
        self.capacity = capacity

    @asynchronous(pre=lambda self, item: self.count < self.capacity)
    def put(self, item: Any) -> None:
        self.items[self.put_ptr] = item
        self.put_ptr = (self.put_ptr + 1) % self.capacity
        self.count += 1

    @synchronous(pre=lambda self: self.count > 0)
    def take(self) -> Any:
        item = self.items[self.take_ptr]
        self.take_ptr = (self.take_ptr + 1) % self.capacity
        self.count -= 1
        return item

    @asynchronous(pre=lambda self: self.count > 0)
    def take_async(self) -> Any:
        """Delegated take: the item arrives through the returned future.

        The asyncio frontend's take path — a ``@synchronous`` take parks
        the calling thread under the monitor lock, which an event-loop
        thread must never do; this variant waits in the server's pending
        set instead, guarded by the same precondition.
        """
        item = self.items[self.take_ptr]
        self.take_ptr = (self.take_ptr + 1) % self.capacity
        self.count -= 1
        return item

    # Deadline-bounded take for the loadsim service facade.  ``put`` stays
    # delegated (its deadline is enforced on the returned future's ``get``);
    # the take side waits under the monitor lock, so the deadline must ride
    # on the wait itself.
    def take_until(self, deadline: float | None = None, cancel=None) -> Any:
        if deadline is not None and time.monotonic() >= deadline:
            raise WaitTimeoutError("take deadline expired before section entry")
        self.wait_until(S.count > 0, deadline=deadline, cancel=cancel)
        item = self.items[self.take_ptr]
        self.take_ptr = (self.take_ptr + 1) % self.capacity
        self.count -= 1
        return item


class QDBoundedQueue:
    """Queue-delegation-style bounded queue (Fig. 3.4's QD comparator).

    Operations enqueue closures onto a delegation queue; the lock holder
    drains it.  Conditional waiting (absent from QD proper) is grafted on
    with one broadcast condition variable — which is exactly why it loses to
    ActiveMonitor's automatic signaling in the paper's measurements.
    """

    def __init__(self, capacity: int):
        self.items: list[Any] = [None] * capacity
        self.put_ptr = self.take_ptr = self.count = 0
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)

    def put(self, item: Any) -> None:
        with self._mutex:
            while self.count == self.capacity:
                self._cond.wait()
            self.items[self.put_ptr] = item
            self.put_ptr = (self.put_ptr + 1) % self.capacity
            self.count += 1
            self._cond.notify_all()

    def take(self) -> Any:
        with self._mutex:
            while self.count == 0:
                self._cond.wait()
            item = self.items[self.take_ptr]
            self.take_ptr = (self.take_ptr + 1) % self.capacity
            self.count -= 1
            self._cond.notify_all()
            return item


def make_queue(mechanism: str, capacity: int):
    """Factory over the Fig. 2.4 mechanisms."""
    if mechanism == "explicit":
        return ExplicitBoundedQueue(capacity)
    if mechanism in ("baseline", "autosynch_t", "autosynch"):
        return AutoBoundedQueue(capacity, signaling=mechanism)
    if mechanism == "qd":
        return QDBoundedQueue(capacity)
    raise ValueError(f"unknown mechanism {mechanism!r}")


def run_bounded_buffer(
    mechanism: str,
    n_producers: int,
    n_consumers: int,
    items_per_producer: int,
    capacity: int = 16,
    delay: float = 0.0,
) -> RunResult:
    """Drive the Fig. 2.4 workload: equal put/take volume, optional
    out-of-monitor delay between operations."""
    queue = make_queue(mechanism, capacity)
    total = n_producers * items_per_producer
    per_consumer, leftover = divmod(total, n_consumers)

    def producer():
        for i in range(items_per_producer):
            queue.put(i)
            spin_delay(delay)

    def consumer(extra: int):
        for _ in range(per_consumer + extra):
            queue.take()
            spin_delay(delay)

    targets = [producer] * n_producers + [
        (lambda extra=(1 if i < leftover else 0): consumer(extra))
        for i in range(n_consumers)
    ]
    elapsed = run_threads(targets)
    metrics = queue.metrics.snapshot() if isinstance(queue, Monitor) else {}
    return RunResult(elapsed, 2 * total, metrics)


def run_active_queue(
    variant: str,
    n_threads: int,
    ops_per_thread: int,
    capacity: int,
) -> RunResult:
    """Drive Fig. 3.4: half the threads enqueue, half dequeue.

    ``variant``: ``"lk"`` (explicit reentrant-lock monitor), ``"am"``
    (asynchronous ActiveMonitor), ``"ams"`` (synchronous delegation),
    ``"qd"`` (queue-delegation comparator).
    """
    n_producers = max(1, n_threads // 2)
    n_consumers = max(1, n_threads - n_producers)
    if variant == "lk":
        queue: Any = ExplicitBoundedQueue(capacity)
    elif variant == "am":
        queue = ActiveBoundedQueue(capacity, mode="async")
    elif variant == "ams":
        queue = ActiveBoundedQueue(capacity, mode="delegate")
    elif variant == "qd":
        queue = QDBoundedQueue(capacity)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    total_in = n_producers * ops_per_thread
    per_consumer, leftover = divmod(total_in, n_consumers)

    def producer():
        for i in range(ops_per_thread):
            queue.put(i)

    def consumer(extra: int):
        for _ in range(per_consumer + extra):
            queue.take()

    targets = [producer] * n_producers + [
        (lambda extra=(1 if i < leftover else 0): consumer(extra))
        for i in range(n_consumers)
    ]
    try:
        elapsed = run_threads(targets)
    finally:
        if isinstance(queue, ActiveMonitor):
            queue.shutdown()
    metrics = queue.metrics.snapshot() if isinstance(queue, Monitor) else {}
    return RunResult(elapsed, 2 * total_in, metrics)
