"""Distributed discrete-event simulation — Fig. 4.9 (the paper's Fig. 4.5).

A process has one event queue per incoming neighbour and may only execute an
event once every (non-exhausted) queue is non-empty, so the globally
smallest timestamp is known.  The wait condition is a conjunction of
per-queue non-emptiness — a global condition over all neighbour monitors.
Variants: gl / tm / as / av / cc (as in the pizza store).

The paper's observation reproduced here: with few threads the coarse lock
wins (the process locks everything anyway), while at higher thread counts
the per-queue monitors with AV/CC overtake it.
"""

from __future__ import annotations

import random
import threading

from repro.core import Monitor, S
from repro.multi import local, manager, multisynch
from repro.problems.common import RunResult, run_threads
from repro.stm import TVar, atomic, retry


class EventQueue(Monitor):
    """One neighbour's event queue (timestamps arrive in increasing order)."""

    def __init__(self, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.events: list[float] = []
        self.count = 0

    def push(self, ts: float) -> None:
        self.events.append(ts)
        self.count += 1

    def head(self) -> float:
        return self.events[0]

    def pop(self) -> float:
        self.count -= 1
        return self.events.pop(0)


def _make_streams(n_neighbors: int, events_per_neighbor: int, seed: int):
    rng = random.Random(seed)
    streams = []
    for _ in range(n_neighbors):
        ts, stream = 0.0, []
        for _ in range(events_per_neighbor):
            ts += rng.random()
            stream.append(ts)
        streams.append(stream)
    return streams


def run_des(
    variant: str,
    n_neighbors: int,
    events_per_neighbor: int,
    seed: int = 5,
) -> RunResult:
    """Fig. 4.9's workload: ``n_neighbors`` generator threads feed one
    process thread that must always execute the globally-earliest event."""
    streams = _make_streams(n_neighbors, events_per_neighbor, seed)
    total_events = n_neighbors * events_per_neighbor
    executed: list[float] = []
    remaining = [events_per_neighbor] * n_neighbors  # not yet executed
    manager.global_condition_metrics.reset()

    if variant == "gl":
        feed, process = _build_gl(streams, remaining, executed, total_events)
    elif variant == "tm":
        feed, process = _build_tm(streams, remaining, executed, total_events)
    elif variant in ("as", "av", "cc"):
        feed, process = _build_ms(
            streams, remaining, executed, total_events, variant.upper()
        )
    else:
        raise ValueError(f"unknown variant {variant!r}")

    targets = [(lambda i=i: feed(i)) for i in range(len(streams))] + [process]
    elapsed = run_threads(targets, timeout=300.0)
    ordered = all(executed[i] <= executed[i + 1] for i in range(len(executed) - 1))
    return RunResult(
        elapsed,
        total_events,
        manager.global_condition_metrics.snapshot(),
        extra={"in_order": ordered, "executed": len(executed)},
    )


def _pop_smallest(queues: list[list[float]], remaining: list[int]) -> float:
    best = min((i for i, q in enumerate(queues) if q), key=lambda i: queues[i][0])
    remaining[best] -= 1
    return queues[best].pop(0)


def _build_gl(streams, remaining, executed, total_events):
    n = len(streams)
    queues: list[list[float]] = [[] for _ in range(n)]
    mutex = threading.Lock()
    cond = threading.Condition(mutex)

    def feed(i: int):
        for ts in streams[i]:
            with mutex:
                queues[i].append(ts)
                cond.notify_all()

    def process():
        for _ in range(total_events):
            with mutex:
                while not all(queues[i] or remaining[i] == 0 for i in range(n)):
                    cond.wait()
                executed.append(_pop_smallest(queues, remaining))

    return feed, process


def _build_tm(streams, remaining, executed, total_events):
    n = len(streams)
    counts = [TVar(0) for _ in range(n)]
    queues: list[list[float]] = [[] for _ in range(n)]
    data_lock = threading.Lock()  # protects the payload lists; TVars carry counts

    def feed(i: int):
        for ts in streams[i]:
            with data_lock:
                queues[i].append(ts)
            atomic(lambda: counts[i].set(counts[i].get() + 1))

    def process():
        for _ in range(total_events):
            def wait_all():
                for i in range(n):
                    if counts[i].get() == 0 and remaining[i] > 0:
                        retry()

            atomic(wait_all)
            with data_lock:
                best = min(
                    (i for i in range(n) if queues[i]), key=lambda i: queues[i][0]
                )
                executed.append(queues[best].pop(0))
                remaining[best] -= 1
            atomic(lambda: counts[best].set(counts[best].get() - 1))

    return feed, process


def _build_ms(streams, remaining, executed, total_events, strategy: str):
    n = len(streams)
    queues = [EventQueue() for _ in range(n)]

    def feed(i: int):
        for ts in streams[i]:
            queues[i].push(ts)

    def process():
        for _ in range(total_events):
            live = [i for i in range(n) if remaining[i] > 0]
            condition = None
            for i in live:
                atom = local(queues[i], S.count > 0)
                condition = atom if condition is None else (condition & atom)
            with multisynch(queues, strategy=strategy) as ms:
                if condition is not None:
                    ms.wait_until(condition)
                best = min(
                    (i for i in range(n) if queues[i].count > 0),
                    key=lambda i: queues[i].head(),
                )
                executed.append(queues[best].pop())
                remaining[best] -= 1

    return feed, process
