"""Atomic take-and-put across two queues — Fig. 4.6 (the paper's Fig. 1.5).

Threads atomically move an item from a random source queue to a random
destination queue, waiting on the global condition
``!src.isEmpty() && !dst.isFull()``.  The paper uses 80 queues × 2048 slots
(large buffers → the global condition is almost always true, which is why
the always-signal strategy *wins* this figure: it skips the bookkeeping that
AV/CC pay and false signals are rare).
"""

from __future__ import annotations

import random
import threading

from repro.core import Monitor, S
from repro.multi import local, manager, multisynch
from repro.problems.common import RunResult, run_threads
from repro.stm import TVar, atomic, retry


class MQueue(Monitor):
    """A bounded queue as a monitor (state only; moves run under multisynch)."""

    def __init__(self, capacity: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.items: list[int] = []
        self.capacity = capacity
        self.count = 0

    def put(self, item: int) -> None:
        self.items.append(item)
        self.count += 1

    def take(self) -> int:
        self.count -= 1
        return self.items.pop(0)


def move_ms(src: MQueue, dst: MQueue, strategy: str) -> None:
    """The paper's takeAndPut (Fig. 1.5) under a given strategy."""
    with multisynch(src, dst, strategy=strategy) as ms:
        ms.wait_until(local(src, S.count > 0) & local(dst, S.count < S.capacity))
        dst.put(src.take())


class CoarseQueues:
    """GL variant: all queues under one lock + one broadcast condition."""

    def __init__(self, n_queues: int, capacity: int):
        self.counts = [0] * n_queues
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)

    def move(self, src: int, dst: int) -> None:
        with self._mutex:
            while not (self.counts[src] > 0 and self.counts[dst] < self.capacity):
                self._cond.wait()
            self.counts[src] -= 1
            self.counts[dst] += 1
            self._cond.notify_all()


class TMQueues:
    """TM variant: per-queue counts in TVars; move is one transaction."""

    def __init__(self, n_queues: int, capacity: int):
        self.counts = [TVar(0) for _ in range(n_queues)]
        self.capacity = capacity

    def move(self, src: int, dst: int) -> None:
        def txn():
            s, d = self.counts[src].get(), self.counts[dst].get()
            if not (s > 0 and d < self.capacity):
                retry()
            self.counts[src].set(s - 1)
            self.counts[dst].set(d + 1)

        atomic(txn)


def run_take_and_put(
    variant: str,
    n_threads: int,
    moves_per_thread: int,
    n_queues: int = 16,
    capacity: int | None = None,
    prefill: int | None = None,
    seed: int = 3,
) -> RunResult:
    """Fig. 4.6's workload: random (src, dst) pairs per move.

    Defaults mirror the paper's generously-sized buffers (80 queues × 2048):
    each queue is prefilled with more items than the total move count, so no
    source can drain and no fixed random plan can strand — the regime where
    the always-signal strategy wins because conditions are almost always
    true.  Pass explicit ``prefill``/``capacity`` to force waiting (and
    accept the stranding risk of a fixed plan)."""
    rng = random.Random(seed)
    total_moves = n_threads * moves_per_thread
    if prefill is None:
        prefill = total_moves + 1
    if capacity is None:
        capacity = prefill + total_moves + 1
    plans = [
        [
            tuple(rng.sample(range(n_queues), 2))
            for _ in range(moves_per_thread)
        ]
        for _ in range(n_threads)
    ]
    manager.global_condition_metrics.reset()

    if variant == "gl":
        system = CoarseQueues(n_queues, capacity)
        for i in range(n_queues):
            system.counts[i] = prefill
        move = system.move
    elif variant == "tm":
        system = TMQueues(n_queues, capacity)
        for var in system.counts:
            var._value = prefill
        move = system.move
    elif variant in ("as", "av", "cc"):
        queues = [MQueue(capacity) for _ in range(n_queues)]
        for q in queues:
            for i in range(prefill):
                q.put(i)
        strategy = variant.upper()

        def move(src: int, dst: int) -> None:
            move_ms(queues[src], queues[dst], strategy)

    else:
        raise ValueError(f"unknown variant {variant!r}")

    def worker(plan):
        for src, dst in plan:
            move(src, dst)

    targets = [(lambda p=plan: worker(p)) for plan in plans]
    elapsed = run_threads(targets, timeout=300.0)
    return RunResult(
        elapsed,
        n_threads * moves_per_thread,
        manager.global_condition_metrics.snapshot(),
    )
