"""Parameterized bounded-buffer — Figs. 2.9 / 2.10 (the signalAll stressor).

Producers put *batches* of items, consumers take *num* items at a time, so
each thread waits on its own threshold (``count + k <= capacity`` /
``count >= num``).  Explicit-signal code cannot know which waiter to wake
and must ``notify_all`` on every operation; AutoSynch's threshold tags find
the (unique) satisfiable waiter and signal exactly one — this is the
experiment where the paper measures a 26.9× speedup at 256 consumers and a
~500× reduction in context switches.
"""

from __future__ import annotations

import random
import threading
from typing import Any

from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads


class ExplicitParamQueue:
    """Explicit-signal parameterized queue (Fig. 2.1 shape: signalAll)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.count = 0
        self._mutex = threading.Lock()
        self._insufficient_space = threading.Condition(self._mutex)
        self._insufficient_items = threading.Condition(self._mutex)
        self.broadcasts = 0
        self.wakeups = 0

    def put(self, n_items: int) -> None:
        with self._mutex:
            while self.count + n_items > self.capacity:
                self._insufficient_space.wait()
                self.wakeups += 1
            self.count += n_items
            self._insufficient_items.notify_all()
            self.broadcasts += 1

    def take(self, num: int) -> None:
        with self._mutex:
            while self.count < num:
                self._insufficient_items.wait()
                self.wakeups += 1
            self.count -= num
            self._insufficient_space.notify_all()
            self.broadcasts += 1


class AutoParamQueue(Monitor):
    """AutoSynch parameterized queue (Fig. 2.3 shape: threshold tags)."""

    def __init__(self, capacity: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.capacity = capacity
        self.count = 0

    def put(self, n_items: int) -> None:
        self.wait_until(S.count + n_items <= S.capacity)
        self.count += n_items

    def take(self, num: int) -> None:
        self.wait_until(S.count >= num)
        self.count -= num


def run_param_bounded_buffer(
    mechanism: str,
    n_consumers: int,
    batches: int,
    capacity: int = 512,
    max_batch: int = 128,
    seed: int = 42,
) -> RunResult:
    """Fig. 2.9's workload: one producer, ``n_consumers`` consumers, random
    batch sizes in [1, max_batch]."""
    rng = random.Random(seed)
    if mechanism == "explicit":
        queue: Any = ExplicitParamQueue(capacity)
    elif mechanism in ("autosynch", "autosynch_t", "baseline"):
        queue = AutoParamQueue(capacity, signaling=mechanism)
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")

    # pre-plan batch sizes so producer volume == consumer volume exactly
    consumer_plans = [
        [rng.randint(1, max_batch) for _ in range(batches)]
        for _ in range(n_consumers)
    ]
    producer_plan: list[int] = []
    for plan in consumer_plans:
        producer_plan.extend(plan)
    rng.shuffle(producer_plan)

    def producer():
        for n in producer_plan:
            queue.put(n)

    def consumer(plan):
        for num in plan:
            queue.take(num)

    targets = [producer] + [
        (lambda p=plan: consumer(p)) for plan in consumer_plans
    ]
    elapsed = run_threads(targets, timeout=300.0)
    ops = len(producer_plan) * 2
    if isinstance(queue, Monitor):
        metrics = queue.metrics.snapshot()
    else:
        metrics = {"broadcasts": queue.broadcasts, "wakeups": queue.wakeups}
    # "context switches" = total thread wakeups caused by signaling
    metrics.setdefault("wakeups", 0)
    return RunResult(elapsed, ops, metrics)
