"""Graph generators for the PSSSP benchmark (Fig. 3.3).

The paper evaluates on two USA road-network graphs (NY, FLA) and three
R-MAT synthetic graphs (R16, R128, R512, average degree 16/128/512).  The
road networks are not shipped here, so:

* :func:`road_network` builds a sparse planar-ish grid with perturbed edge
  weights and a few long-range shortcuts — the same structural regime
  (low degree, large diameter) that makes road graphs priority-queue-bound;
* :func:`rmat` implements the standard R-MAT recursive quadrant sampler
  with the GTgraph default parameters (a=0.45, b=0.15, c=0.15, d=0.25),
  at the three densities the paper uses.

Graphs are adjacency lists: ``graph[u] = [(v, weight), ...]``.
"""

from __future__ import annotations

import random

Adjacency = list[list[tuple[int, float]]]


def road_network(side: int, seed: int = 0) -> Adjacency:
    """A ``side × side`` grid road network with weight jitter + shortcuts."""
    rng = random.Random(seed)
    n = side * side
    graph: Adjacency = [[] for _ in range(n)]

    def add_edge(u: int, v: int, w: float) -> None:
        graph[u].append((v, w))
        graph[v].append((u, w))

    for row in range(side):
        for col in range(side):
            u = row * side + col
            if col + 1 < side:
                add_edge(u, u + 1, 1.0 + rng.random())
            if row + 1 < side:
                add_edge(u, u + side, 1.0 + rng.random())
    # sparse long-range "highways"
    for _ in range(max(1, n // 50)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            add_edge(u, v, 5.0 + 10.0 * rng.random())
    return graph


def rmat(n_vertices: int, n_edges: int, seed: int = 0,
         a: float = 0.45, b: float = 0.15, c: float = 0.15) -> Adjacency:
    """R-MAT generator: recursively pick a quadrant per edge endpoint bit."""
    rng = random.Random(seed)
    bits = max(1, (n_vertices - 1).bit_length())
    size = 1 << bits
    graph: Adjacency = [[] for _ in range(n_vertices)]
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(seen) < n_edges and attempts < 20 * n_edges:
        attempts += 1
        u = v = 0
        span = size
        while span > 1:
            span //= 2
            roll = rng.random()
            if roll < a:
                pass
            elif roll < a + b:
                v += span
            elif roll < a + b + c:
                u += span
            else:
                u += span
                v += span
        u %= n_vertices
        v %= n_vertices
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        w = 1.0 + rng.random() * 9.0
        graph[u].append((v, w))
        graph[v].append((u, w))
    # guarantee connectivity with a cheap spanning chain
    for u in range(1, n_vertices):
        v = rng.randrange(u)
        graph[u].append((v, 10.0 + rng.random()))
        graph[v].append((u, 10.0 + rng.random()))
    return graph


#: the paper's graph suite, scaled to laptop size (quick) by the bench layer
PAPER_GRAPHS = {
    "NY": lambda scale=1.0: road_network(max(8, int(24 * scale)), seed=1),
    "FLA": lambda scale=1.0: road_network(max(8, int(32 * scale)), seed=2),
    "R16": lambda scale=1.0: rmat(max(64, int(512 * scale)), max(512, int(4096 * scale)), seed=3),
    "R128": lambda scale=1.0: rmat(max(64, int(256 * scale)), max(2048, int(16384 * scale)), seed=4),
    "R512": lambda scale=1.0: rmat(max(64, int(128 * scale)), max(4096, int(32768 * scale)), seed=5),
}


def edge_count(graph: Adjacency) -> int:
    return sum(len(adj) for adj in graph) // 2


def sequential_dijkstra(graph: Adjacency, source: int) -> list[float]:
    """Reference single-threaded Dijkstra (oracle for correctness tests)."""
    import heapq

    dist = [float("inf")] * len(graph)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
