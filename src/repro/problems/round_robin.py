"""Round-robin access pattern — Figs. 2.6 / 2.11, Table 2.1, Fig. 3.5's RR.

Each of N threads may only enter the monitor when it is its turn
(``current == my_id``); leaving advances the turn.  Every waiter blocks on
an *equivalence* predicate with a distinct key, making this the showcase for
equivalence-tag hashing: AutoSynch finds the unique next thread in O(1),
AutoSynch-T scans all N waiters, and the explicit version (an array of
per-thread condition variables) is the hand-tuned optimum.
"""

from __future__ import annotations

import threading

from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads, spin_delay


class RoundRobinMonitor(Monitor):
    """AutoSynch round-robin monitor (paper Fig. A.2)."""

    def __init__(self, n_threads: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.n_threads = n_threads
        self.current = 0

    def access(self, my_id: int) -> None:
        self.wait_until(S.current == my_id)
        self.current = (self.current + 1) % self.n_threads


class ExplicitRoundRobin:
    """Explicit-signal round robin: one condition variable per thread, each
    exit signals exactly the successor (the paper's best case for explicit)."""

    def __init__(self, n_threads: int):
        self.n_threads = n_threads
        self.current = 0
        self._mutex = threading.Lock()
        self._turn = [threading.Condition(self._mutex) for _ in range(n_threads)]

    def access(self, my_id: int) -> None:
        with self._mutex:
            while self.current != my_id:
                self._turn[my_id].wait()
            self.current = (self.current + 1) % self.n_threads
            self._turn[self.current].notify()


def run_round_robin(
    mechanism: str,
    n_threads: int,
    rounds: int,
    delay: float = 0.0,
) -> RunResult:
    """Figs. 2.6/2.11 workload: every thread takes ``rounds`` turns; with
    ``delay`` seconds of out-of-monitor spinning between turns."""
    if mechanism == "explicit":
        monitor = ExplicitRoundRobin(n_threads)
    else:
        monitor = RoundRobinMonitor(n_threads, signaling=mechanism)

    def worker(my_id: int):
        for _ in range(rounds):
            monitor.access(my_id)
            spin_delay(delay)

    targets = [(lambda i=i: worker(i)) for i in range(n_threads)]
    elapsed = run_threads(targets, timeout=300.0)
    metrics = monitor.metrics.snapshot() if isinstance(monitor, Monitor) else {}
    return RunResult(elapsed, n_threads * rounds, metrics)
