"""Shared driver utilities for the evaluation workloads.

Every problem module exposes ``run_*`` functions that spin up worker
threads, run a fixed amount of work (or a fixed duration), and return a
:class:`RunResult` with wall-clock time, operation counts, and the monitor
metrics the paper's figures report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class RunResult:
    """Outcome of one workload run."""

    elapsed: float                      #: wall-clock seconds
    operations: int                     #: total completed operations
    metrics: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Operations per second."""
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0


def run_threads(
    targets: Sequence[Callable[[], Any]],
    timeout: float = 120.0,
) -> float:
    """Run one thread per target behind a start barrier; return elapsed time.

    Raises if any worker raised or failed to finish within ``timeout``
    (silent hangs must fail tests loudly, not stall them).
    """
    barrier = threading.Barrier(len(targets) + 1)
    errors: list[BaseException] = []

    def runner(fn: Callable[[], Any]) -> None:
        try:
            barrier.wait()
            fn()
        except BaseException as exc:  # noqa: BLE001 — reported to the caller
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(fn,), daemon=True) for fn in targets
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    deadline = start + timeout
    for t in threads:
        t.join(max(0.0, deadline - time.perf_counter()))
    elapsed = time.perf_counter() - start
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise TimeoutError(
            f"{len(alive)} worker(s) still running after {timeout}s "
            f"(likely a lost signal / deadlock)"
        )
    if errors:
        raise errors[0]
    return elapsed


def spin_delay(seconds: float) -> None:
    """Busy-wait for ``seconds`` — the paper's "delay time" between monitor
    operations (work performed *outside* the monitor).  Spinning (not
    sleeping) mirrors the original methodology of simulating computation."""
    if seconds <= 0:
        return
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class StopFlag:
    """Cooperative cancellation for duration-bounded throughput runs."""

    __slots__ = ("_event",)

    def __init__(self):
        self._event = threading.Event()

    def stop(self) -> None:
        self._event.set()

    def __bool__(self) -> bool:
        return not self._event.is_set()

    def run_for(self, seconds: float) -> None:
        timer = threading.Timer(seconds, self.stop)
        timer.daemon = True
        timer.start()


class OpCounter:
    """Per-thread operation counter aggregated at the end (no contention)."""

    def __init__(self, n_threads: int):
        self.counts = [0] * n_threads

    def total(self) -> int:
        return sum(self.counts)
