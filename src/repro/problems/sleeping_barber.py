"""The sleeping-barber problem — appendix Fig. A.4 (extra example workload).

The barber waits until a customer occupies a waiting-room seat; customers
with no free seat leave immediately.  A compact exercise of ``wait_until``
with mixed outcomes (blocking vs balking)."""

from __future__ import annotations

from repro.core import Monitor, S
from repro.problems.common import RunResult, run_threads


class BarberShop(Monitor):
    """AutoSynch sleeping-barber monitor (paper Fig. A.4)."""

    def __init__(self, max_seats: int, signaling: str = "autosynch"):
        super().__init__(signaling=signaling)
        self.max_seats = max_seats
        self.free_seats = max_seats
        self.available_barbers = 0

    def cut_hair(self) -> None:
        """Barber side: wait for a seated customer, then serve them."""
        self.wait_until(S.free_seats < S.max_seats)
        self.free_seats += 1
        self.available_barbers += 1

    def wait_to_cut(self) -> bool:
        """Customer side: take a seat if one is free; balk otherwise."""
        if self.free_seats == 0:
            return False
        self.free_seats -= 1
        self.wait_until(S.available_barbers > 0)
        self.available_barbers -= 1
        return True


def run_sleeping_barber(
    n_customers: int,
    visits_per_customer: int,
    seats: int = 4,
    signaling: str = "autosynch",
) -> RunResult:
    shop = BarberShop(seats, signaling=signaling)
    served = [0]
    import threading

    served_lock = threading.Lock()
    done = threading.Event()

    def barber():
        while not done.is_set() or shop.free_seats < shop.max_seats:
            # keep cutting while customers remain; exit via the poison seat
            shop.cut_hair()

    def customer():
        for _ in range(visits_per_customer):
            if shop.wait_to_cut():
                with served_lock:
                    served[0] += 1

    def closer():
        # after all customers finish, seat one phantom so the barber wakes
        # and can observe the shop closing
        for t in customer_threads:
            t.join()
        done.set()
        shop.wait_to_cut()

    import threading as _t

    customer_threads = [
        _t.Thread(target=customer, daemon=True) for _ in range(n_customers)
    ]
    barber_thread = _t.Thread(target=barber, daemon=True)
    import time

    start = time.perf_counter()
    barber_thread.start()
    for t in customer_threads:
        t.start()
    closer()
    barber_thread.join(30)
    elapsed = time.perf_counter() - start
    if barber_thread.is_alive():
        raise TimeoutError("barber never observed shop closing")
    return RunResult(elapsed, served[0], shop.metrics.snapshot())
