"""The evaluation workload zoo: every problem the paper benchmarks."""

from repro.problems.common import OpCounter, RunResult, StopFlag, run_threads, spin_delay
from repro.problems.registry import PROBLEMS, ProblemInfo

__all__ = [
    "RunResult",
    "run_threads",
    "spin_delay",
    "StopFlag",
    "OpCounter",
    "PROBLEMS",
    "ProblemInfo",
]
