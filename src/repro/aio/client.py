"""AsyncMonitorClient: coroutine-side access to monitors and delegation.

One client per (monitor, loop) pair; any number of coroutines share it.
Everything here observes the frontend's cardinal rule — the event-loop
thread never *blocks* on a monitor lock:

* :meth:`AsyncMonitorClient.wait_until` registers a waiterless
  :class:`~repro.core.waiter.AsyncWaiter` under the monitor lock taken
  with a **bounded trylock** (predicate evaluation plus list appends, no
  parking); when the lock is contended, the registration runs on an
  executor thread instead, and the coroutine awaits either way.
* Timeout and cancellation *abandon* the waiter from the loop (or
  canceller) thread without the monitor lock, through the claim flag —
  see :meth:`ConditionManager.abandon_async`.
* :meth:`AsyncMonitorClient.call` submits delegated methods with
  :meth:`ActiveMonitor.submit_nowait` (nonblocking enqueue, no combining
  on the submitting thread) and backs off with ``asyncio.sleep`` when the
  task queue is full — awaitable backpressure instead of a parked thread.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from repro.active.activemonitor import ActiveMonitor
from repro.aio.futures import as_asyncio
from repro.compose.async_ops import submit_select_all, submit_select_one
from repro.core.monitor import Monitor
from repro.core.predicates import Predicate
from repro.core.waiter import AsyncWaiter
from repro.runtime.errors import (
    BrokenMonitorError,
    TaskQueueFull,
    WaitCancelledError,
    WaitTimeoutError,
)

#: initial / maximum backoff while the task queue rejects submissions
_BACKOFF_MIN_S = 0.0005
_BACKOFF_MAX_S = 0.05


class AsyncMonitorClient:
    """Awaitable frontend over one monitor (threaded backend unchanged)."""

    def __init__(self, monitor: Monitor,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self._monitor = monitor
        self._mgr = monitor._cond_mgr
        self._loop = loop

    @property
    def monitor(self) -> Monitor:
        return self._monitor

    def _running_loop(self) -> asyncio.AbstractEventLoop:
        return self._loop if self._loop is not None \
            else asyncio.get_running_loop()

    # ------------------------------------------------------------ wait_until
    async def wait_until(self, condition, *,
                         timeout: Optional[float] = None,
                         deadline: Optional[float] = None,
                         cancel=None) -> None:
        """Awaitable ``waituntil(P)`` — PR-4 semantics, no parked thread.

        Registers a waiterless waiter in the monitor's condition manager
        (dependency buckets, tag records, AOT direct coverage — identical
        to a threaded ``wait_until``) whose wake action resolves an
        ``asyncio.Future`` via ``loop.call_soon_threadsafe``.  ``timeout``
        / ``deadline`` raise :class:`WaitTimeoutError`, a fired ``cancel``
        token raises :class:`WaitCancelledError`, and a poisoned monitor
        raises :class:`BrokenMonitorError` — exactly the threaded
        contract.  Cancelling the awaiting task abandons the waiter the
        same way a timeout does.

        One deliberate difference from the threaded form: a monitor method
        returns from ``wait_until`` still *holding* the lock, so the
        predicate holds when its code runs.  Here the predicate held under
        the lock at the instant of delivery, but the coroutine resumes
        lockless — pair the wait with guarded delegation
        (:meth:`call` on an ``@asynchronous`` method, whose precondition
        the server re-checks under the lock) for state-consuming actions.
        """
        loop = self._running_loop()
        monitor = self._monitor
        mgr = self._mgr
        predicate = condition if isinstance(condition, Predicate) \
            else Predicate(condition)

        if timeout is not None:
            t = time.monotonic() + timeout
            deadline = t if deadline is None else min(deadline, t)
        if cancel is not None and cancel.cancelled():
            raise WaitCancelledError(
                f"wait on {predicate!r} cancelled", cancel.reason)

        afut: "asyncio.Future[None]" = loop.create_future()

        def _resolve(poison: Optional[BaseException]) -> None:
            # always invoked on the loop thread
            if afut.done():
                return
            if poison is None:
                afut.set_result(None)
            else:
                afut.set_exception(poison)

        def _deliver(poison: Optional[BaseException]) -> None:
            # invoked by the signaler (server/worker thread) under the
            # monitor lock — or synchronously during registration
            try:
                loop.call_soon_threadsafe(_resolve, poison)
            except RuntimeError:
                pass  # loop closed while a signal was in flight

        def _register_locked() -> Optional[AsyncWaiter]:
            # caller holds the monitor lock; bounded work only
            broken = monitor._broken
            if broken is not None:
                raise BrokenMonitorError(f"{monitor!r} is broken", broken)
            ev = predicate._evaluator
            result = ev(monitor) if ev is not None \
                else predicate.fast_eval(monitor)
            monitor._metrics.predicate_evals += 1
            if result:
                return None
            # No baton pass is owed here: the registering context wrote
            # nothing (closed predicates are side-effect free), so no other
            # waiter's predicate can have flipped under this lock hold.
            waiter = AsyncWaiter(predicate, _deliver)
            mgr.register_async(waiter)
            return waiter

        def _register_blocking() -> Optional[AsyncWaiter]:
            # executor-thread fallback: may park on the lock, off-loop
            with monitor._lock:  # monlint: disable=W004 — registration runs off-loop here
                return _register_locked()

        # fast path: a bounded trylock from the loop thread (never parks);
        # under contention the registration hops to an executor thread
        lock = monitor._lock  # monlint: disable=W004 — trylock only on the loop thread
        if lock.acquire(blocking=False):
            try:
                waiter = _register_locked()
            finally:
                lock.release()
        else:
            waiter = await loop.run_in_executor(None, _register_blocking)

        if waiter is None:
            return  # predicate already true at registration

        timer = None
        if deadline is not None:
            def _on_timeout() -> None:
                if mgr.abandon_async(waiter):
                    monitor._metrics.bump("wait_timeouts")
                    _resolve(WaitTimeoutError(
                        f"wait on {predicate!r} timed out"))
            timer = loop.call_later(
                max(0.0, deadline - time.monotonic()), _on_timeout)

        cancel_cb = None
        if cancel is not None:
            def cancel_cb() -> None:
                # canceller thread: claim without the monitor lock, then
                # hop onto the loop to resolve
                if mgr.abandon_async(waiter):
                    monitor._metrics.bump("wait_cancels")
                    try:
                        loop.call_soon_threadsafe(
                            _resolve, WaitCancelledError(
                                f"wait on {predicate!r} cancelled",
                                cancel.reason))
                    except RuntimeError:
                        pass
            cancel.add_callback(cancel_cb)

        try:
            await afut
        finally:
            if timer is not None:
                timer.cancel()
            if cancel_cb is not None:
                cancel.remove_callback(cancel_cb)
            if not afut.done() or afut.cancelled():
                # the awaiting task was cancelled while parked: abandon the
                # registration exactly like a timeout (claim, lazy reap)
                mgr.abandon_async(waiter)

    # ------------------------------------------------------------ delegation
    def submit(self, method: str, /, *args, **kwargs) -> "asyncio.Future[Any]":
        """Submit an ``@asynchronous`` method; return an awaitable future.

        Nonblocking: raises :class:`TaskQueueFull` when the server's task
        queue is full (use :meth:`call` for awaitable backpressure).
        """
        lf = self._monitor.submit_nowait(method, *args, **kwargs)
        return as_asyncio(lf, self._running_loop())

    async def call(self, method: str, /, *args, **kwargs) -> Any:
        """Await a delegated ``@asynchronous`` method end to end.

        Backs off with ``asyncio.sleep`` while the task queue is full, so
        queue pressure suspends the coroutine instead of any thread.
        Bound the total wait with ``asyncio.wait_for`` / ``asyncio.timeout``
        at the call site.
        """
        monitor = self._monitor
        if not isinstance(monitor, ActiveMonitor):
            raise TypeError(f"call() needs an ActiveMonitor, got {monitor!r}")
        delay = _BACKOFF_MIN_S
        while True:
            try:
                lf = monitor.submit_nowait(method, *args, **kwargs)
                break
            except TaskQueueFull:
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, _BACKOFF_MAX_S)
        return await as_asyncio(lf, self._running_loop())


# ---------------------------------------------------------------- composition
async def async_and(*operands) -> list:
    """Awaitable §5.3 AND: delegate every operand, await all results.

    Submission runs on an executor thread (the blocking submit path may
    combine — execute task bodies on the submitting thread — which must
    never happen on the loop); the per-operand futures resolve on the loop.
    """
    loop = asyncio.get_running_loop()
    futures = await loop.run_in_executor(
        None, submit_select_all, list(operands))
    return list(await asyncio.gather(
        *(as_asyncio(f, loop) for f in futures)))


async def async_or(*operands) -> tuple:
    """Awaitable §5.3.1 OR: exactly one operand executes; awaits
    ``(index, result)`` from the shared winner future."""
    loop = asyncio.get_running_loop()
    winner = await loop.run_in_executor(
        None, submit_select_one, list(operands))
    return await as_asyncio(winner, loop)
