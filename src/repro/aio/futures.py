"""Awaitable views of delegated-call futures.

A :class:`~repro.active.futures.LightFuture` completes on the server (or
combiner) thread; :func:`as_asyncio` bridges that completion into an
``asyncio.Future`` with a single done callback that hops onto the loop via
``call_soon_threadsafe`` — no polling task, no executor thread parked in
``get``.  Failure semantics mirror ``LightFuture.get`` exactly: a failed
task resolves the asyncio future with :class:`~repro.runtime.errors.TaskError`
wrapping the original exception.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.active.futures import LightFuture
from repro.runtime.errors import TaskError


def as_asyncio(future: LightFuture,
               loop: Optional[asyncio.AbstractEventLoop] = None,
               ) -> "asyncio.Future[Any]":
    """Return an ``asyncio.Future`` that resolves when ``future`` completes.

    Must be called with a running loop (or an explicit ``loop``).  The
    completion hand-off is push-based: ``add_done_callback`` fires on the
    completing thread — already on the loop thread when the future is done
    at call time — and schedules the resolution with
    ``loop.call_soon_threadsafe``.  Cancelling the *asyncio* future does
    not cancel the delegated task (the critical section may already be
    running); the late completion is simply dropped.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    afut: "asyncio.Future[Any]" = loop.create_future()

    def _apply() -> None:
        if afut.cancelled():
            return
        err = future.exception()
        if err is not None:
            wrapped = TaskError("asynchronous monitor task failed", err)
            wrapped.__cause__ = err  # same chaining as LightFuture.get
            afut.set_exception(wrapped)
        else:
            afut.set_result(future.get())  # done ⇒ returns without blocking

    def _on_done(_fut: LightFuture) -> None:
        try:
            loop.call_soon_threadsafe(_apply)
        except RuntimeError:
            pass  # loop already closed — nobody is left to observe this

    future.add_done_callback(_on_done)
    return afut


async def await_future(future: LightFuture,
                       timeout: float | None = None) -> Any:
    """Await a delegated call's future; ``asyncio.TimeoutError`` on expiry."""
    afut = as_asyncio(future)
    if timeout is None:
        return await afut
    return await asyncio.wait_for(afut, timeout)
