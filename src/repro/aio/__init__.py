"""repro.aio — asyncio frontend for the monitor/delegation stack.

One event-loop thread multiplexes thousands of *logical* clients onto the
same monitors, servers and signaling machinery the threaded frontend uses:

* :func:`as_asyncio` / :func:`await_future` — awaitable views of a
  delegated call's :class:`~repro.active.futures.LightFuture`, resolved by
  a done callback through ``loop.call_soon_threadsafe`` (zero polling);
* :class:`AsyncMonitorClient` — per-monitor client whose
  :meth:`~AsyncMonitorClient.wait_until` parks a **waiterless waiter**
  (:class:`~repro.core.waiter.AsyncWaiter`): registered in the condition
  manager's dependency buckets and AOT direct-signal plans exactly like a
  threaded waiter, but woken by a threadsafe loop callback instead of a
  condition-variable notify — and whose :meth:`~AsyncMonitorClient.call`
  awaits delegated ``@asynchronous`` methods;
* :func:`async_and` / :func:`async_or` — awaitable versions of the
  Chapter-5 asynchronous composition operators.

The cardinal rule, asserted by the benchmark's loop-responsiveness probe:
**the event-loop thread never blocks on a monitor lock.**  Submission is
nonblocking (:meth:`ActiveMonitor.submit_nowait`), registration uses a
bounded trylock with an executor-thread fallback, and timeout/cancel
abandonment claims the waiter through its own micro-lock flag, leaving the
unlink to the next monitor-lock holder.
"""

from repro.aio.client import AsyncMonitorClient, async_and, async_or
from repro.aio.futures import as_asyncio, await_future

__all__ = [
    "AsyncMonitorClient",
    "as_asyncio",
    "await_future",
    "async_and",
    "async_or",
]
