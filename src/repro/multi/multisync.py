"""The ``multisynch`` statement: multi-object mutual exclusion (§4.1).

``multisynch(a, b, c)`` acquires the monitor locks of ``a``, ``b`` and ``c``
in ascending monitor-id order — the system, not the programmer, decides the
locking order, eliminating deadlocks from inconsistent ordering (assuming,
as the paper does, that all multi-object acquisitions go through multisynch
and blocks do not nest).

Inside the block, :meth:`Multisynch.wait_until` accepts a *global predicate*
(a boolean combination of per-monitor local predicates, see
:mod:`repro.multi.global_predicates`).  While parked, the thread holds no
locks; re-acquisition follows the same ascending order.  Signaling follows
the configured strategy (AS / AV / CC).

Fast-path structure (the same monitor sets are re-acquired in loops):

* ``_flatten`` caches the flattened, dedup-checked, id-sorted monitor tuple
  keyed by the object identities of the collected arguments, so a repeated
  ``multisynch(a, b)`` skips the dedupe/sort entirely.  Cached values hold
  strong references, which pins the ``id()`` keys for the entry's lifetime
  (no stale-identity hits); the cache is bounded and cleared on overflow.
* :class:`MonitorSet` (``monitor_set(a, b)``) makes the caching explicit:
  flatten once, then ``with ms.synch():`` re-acquires the precomputed tuple
  with no argument walking at all.
* ``wait_until`` evaluates through a
  :class:`~repro.multi.global_predicates.GenerationEvaluator`: monitors
  are generation-stamped on every exit, so a woken waiter re-evaluates
  only the atoms whose monitors actually changed — and skips evaluation
  entirely when none did.

Example (the paper's Fig. 1.5)::

    with multisynch(src, dst) as ms:
        ms.wait_until(local(src, S.count > 0) & local(dst, S.count < S.capacity))
        dst.put(src.take())
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Iterator, Optional

from repro.analysis import runtime as _monlint
from repro.core.monitor import Monitor
from repro.multi import manager
from repro.multi.global_predicates import GenerationEvaluator, GlobalNode
from repro.multi.strategies import GlobalWaiter
from repro.resilience import chaos as _chaos
from repro.runtime.config import config_snapshot
from repro.runtime.errors import (
    BrokenMonitorError,
    MonitorError,
    NestedMultisynchError,
    PredicateError,
    WaitCancelledError,
    WaitTimeoutError,
)

_active = threading.local()

#: local bind of the strategy names — the __init__ hot path checks
#: membership on every block construction
_STRATEGIES = manager.STRATEGIES

#: identity-keyed flatten cache: tuple(id(arg monitors) in arg order) →
#: ``(ascending, descending)`` id-sorted monitor tuples.  Values hold strong
#: refs, so the id() keys stay pinned to these exact objects while the entry
#: lives.
_flatten_cache: dict[tuple, tuple] = {}
_FLATTEN_CACHE_CAP = 1024
#: benchmarks/tests flip this off to measure the uncached path
_cache_enabled = True


def _collect(objs: Iterable, out: list[Monitor]) -> None:
    """Recursively gather monitors from (nested) sequences into ``out``."""
    for obj in objs:
        if isinstance(obj, Monitor):
            out.append(obj)
        elif isinstance(obj, (list, tuple)):
            _collect(obj, out)
        else:
            raise TypeError(f"multisynch expects Monitor objects, got {obj!r}")


def _flatten(objs: Iterable) -> tuple[tuple, tuple]:
    """Accept monitors and (nested) sequences of monitors, as the paper
    allows arrays of monitor objects as multisynch parameters.  Duplicate
    references to the same monitor collapse to one acquisition; the result
    is ``(ascending, descending)`` tuples sorted by monitor id (acquisition
    / release order, §4.1), cached by the collected objects' identities.

    The hot shape — every argument already a Monitor — keys the cache
    straight off the argument identities, so a repeated ``multisynch(a, b)``
    is one tuple build and one dict probe.  Keying by the id of a *sequence*
    argument would be unsound (the container can die and its id be reused);
    monitor ids are pinned by the strong refs in the cached value.
    """
    enabled = _cache_enabled
    key = None
    collected: list[Monitor] | None = None
    if enabled:
        for obj in objs:
            if not isinstance(obj, Monitor):
                break
        else:
            key = tuple(map(id, objs))
            cached = _flatten_cache.get(key)
            if cached is not None:
                return cached
            collected = list(objs)
    if collected is None:
        collected = []
        _collect(objs, collected)
        if enabled:
            key = tuple(map(id, collected))
            cached = _flatten_cache.get(key)
            if cached is not None:
                return cached
    seen: dict[int, Monitor] = {}
    for m in collected:
        prior = seen.setdefault(m.monitor_id, m)
        if prior is not m:
            raise MonitorError(
                f"distinct monitors share id {m.monitor_id}: "
                f"{prior!r} and {m!r}"
            )
    ascending = tuple(seen[k] for k in sorted(seen))
    pair = (ascending, ascending[::-1])
    if enabled and ascending:   # never cache the empty (error) shape
        if len(_flatten_cache) >= _FLATTEN_CACHE_CAP:
            _flatten_cache.clear()
        _flatten_cache[key] = pair
    return pair


class MonitorSet:
    """A pre-flattened, id-sorted monitor set for repeated acquisition.

    ``monitor_set(a, b)`` pays the flatten/dedupe/sort once; each
    ``ms.synch()`` (or ``multisynch(ms)``) then builds its block straight
    from the cached tuple.  Acquisitions still follow the global
    ascending-id order of §4.1 — a MonitorSet changes *cost*, never order.
    """

    __slots__ = ("monitors", "_rev")

    def __init__(self, *objs):
        self.monitors, self._rev = _flatten(objs)
        if not self.monitors:
            raise ValueError("monitor_set needs at least one monitor")

    def synch(self, strategy: str = "CC") -> "Multisynch":
        """Build a multisynch block over this set (use with ``with``)."""
        return Multisynch(self, strategy=strategy)

    def __len__(self) -> int:
        return len(self.monitors)

    def __iter__(self) -> Iterator[Monitor]:
        return iter(self.monitors)

    def __repr__(self):
        return f"<monitor_set {[m.monitor_id for m in self.monitors]}>"


def monitor_set(*objs) -> MonitorSet:
    """Build a :class:`MonitorSet` (sugar, mirroring :func:`multisynch`)."""
    return MonitorSet(*objs)


class Multisynch:
    """Context manager holding several monitors at once."""

    __slots__ = ("monitors", "_rev", "strategy", "_held")

    def __init__(self, *objs, strategy: str = "CC"):
        # hot shape: all-monitor args already in the flatten cache — probe
        # inline so the repeated case pays one tuple build and one dict get
        if _cache_enabled:
            for obj in objs:
                if not isinstance(obj, Monitor):
                    break
            else:
                pair = _flatten_cache.get(tuple(map(id, objs)))
                if pair is not None:
                    self.monitors, self._rev = pair
                    self.strategy = (
                        strategy if strategy in _STRATEGIES
                        else manager.validate_strategy(strategy)
                    )
                    self._held = False
                    return
        if len(objs) == 1 and isinstance(objs[0], MonitorSet):
            ms = objs[0]                   # precomputed fast path
            self.monitors = ms.monitors
            self._rev = ms._rev
        else:
            self.monitors, self._rev = _flatten(objs)
        if not self.monitors:
            raise ValueError("multisynch needs at least one monitor")
        self.strategy = (strategy if strategy in _STRATEGIES
                         else manager.validate_strategy(strategy))
        self._held = False

    # ------------------------------------------------------------- lock mgmt
    #
    # The loops below inline Monitor._monitor_enter/_monitor_exit for the
    # common configuration (monlint runtime pass off, phase timing off):
    # acquire = lock + depth bump; release = depth drop, generation bump,
    # exit hooks, relay signal, unlock.  Any change to the canonical methods
    # in repro.core.monitor must be mirrored here; the guarded slow path
    # keeps behavior identical when either instrument is enabled.
    def _acquire_all(self) -> None:
        """Re-acquire every lock (wait-loop path) — deliberately infallible.

        A waiter returning from a global-condition park still has its
        :class:`GlobalWaiter` registered, and deregistration requires all
        locks; so even a monitor that broke while we were parked is
        re-acquired here, and its brokenness surfaces *after* deregistration
        (in ``wait_until``), where the block's ``__exit__`` can release
        everything cleanly.
        """
        if _monlint.enabled or _chaos.enabled or config_snapshot().phase_timing:
            for m in self.monitors:       # ascending id
                try:
                    m._monitor_enter()
                except BrokenMonitorError:
                    # enter released before raising; re-take raw (monlint's
                    # on_acquire/on_release stayed balanced across the raise)
                    if _monlint.enabled:
                        _monlint.on_acquire(m)
                    m._lock.acquire()  # monlint: disable=W004
                    m._depth += 1
        else:
            for m in self.monitors:
                m._lock.acquire()  # monlint: disable=W004
                m._depth += 1
        self._held = True

    def _release_all(self) -> None:
        self._held = False
        if _monlint.enabled or _chaos.enabled:
            for m in self._rev:           # descending id
                m._monitor_exit()
            return
        for m in self._rev:
            depth = m._depth - 1
            m._depth = depth
            # bump before the lock release so waiters sampling generations
            # under the locks never miss a mutation
            m._generation += 1
            if depth == 0:
                try:
                    hooks = m._exit_hooks
                    if hooks:
                        for hook in hooks:
                            hook(m)
                    cm = m._cond_mgr
                    # _dirty forces the call even with nobody waiting: the
                    # relay flush is what advances per-variable write
                    # generations, and memoized values are revalidated
                    # against those
                    if cm.waiters or m._dirty or cm.mode == "baseline":
                        cm.relay_signal()
                finally:
                    m._lock.release()  # monlint: disable=W004
            else:
                m._lock.release()  # monlint: disable=W004

    def __enter__(self) -> "Multisynch":
        if getattr(_active, "block", None) is not None:
            raise NestedMultisynchError(
                "nested multisynch blocks are not supported; pass all "
                "monitors to one multisynch"
            )
        _active.block = self
        # inline _acquire_all (one frame fewer on the block-cycle hot path)
        monitors = self.monitors
        if _monlint.enabled or _chaos.enabled or config_snapshot().phase_timing:
            acquired = 0
            try:
                for m in monitors:        # ascending id
                    m._monitor_enter()
                    acquired += 1
            except BaseException:
                # a broken monitor (or injected fault) part-way through the
                # set: unwind what we hold, in descending order, so a failed
                # entry never leaves a lock behind
                for j in range(acquired - 1, -1, -1):
                    monitors[j]._monitor_exit()
                _active.block = None
                raise
        else:
            for idx, m in enumerate(monitors):
                m._lock.acquire()  # monlint: disable=W004
                m._depth += 1
                broken = m._broken
                if broken is not None:
                    # raw unwind: nothing was mutated, so no generation
                    # bump, hooks, or relay — just undo the acquisitions
                    for j in range(idx, -1, -1):
                        mm = monitors[j]
                        mm._depth -= 1
                        mm._lock.release()  # monlint: disable=W004
                    _active.block = None
                    raise BrokenMonitorError(f"{m!r} is broken", broken)
        self._held = True
        return self

    def __exit__(self, *exc) -> None:
        # inline _release_all (mirrors the loop above; one frame fewer)
        try:
            self._held = False
            if _monlint.enabled or _chaos.enabled:
                for m in self._rev:       # descending id
                    m._monitor_exit()
                return
            for m in self._rev:
                depth = m._depth - 1
                m._depth = depth
                m._generation += 1
                if depth == 0:
                    try:
                        hooks = m._exit_hooks
                        if hooks:
                            for hook in hooks:
                                hook(m)
                        cm = m._cond_mgr
                        # _dirty: flush write generations even when nobody
                        # waits locally (see _release_all)
                        if cm.waiters or m._dirty or cm.mode == "baseline":
                            cm.relay_signal()
                    finally:
                        m._lock.release()  # monlint: disable=W004
                else:
                    m._lock.release()  # monlint: disable=W004
        finally:
            _active.block = None

    # -------------------------------------------------------- global waiting
    def wait_until(self, condition: GlobalNode,
                   *,
                   timeout: Optional[float] = None,
                   deadline: Optional[float] = None,
                   cancel=None) -> None:
        """Block until the global condition holds (no global lock needed).

        The condition's monitors must all be covered by this multisynch
        block — otherwise its evaluation under the held locks would be
        unsound.

        ``timeout``/``deadline``/``cancel`` carry the same semantics as
        :meth:`Monitor.wait_until`.  Abandoning a global wait is simpler
        than the local case: the manager signals *every* waiter whose
        strategy check passes (no exclusive relay baton), so a timed-out
        waiter only needs to deregister — after re-acquiring all locks,
        which is also when a monitor poisoned during the park is detected
        and surfaced as :class:`BrokenMonitorError`.
        """
        if not self._held:
            raise PredicateError("wait_until outside the multisynch block")
        if not isinstance(condition, GlobalNode):
            raise PredicateError(
                "multisynch.wait_until takes a global predicate; build one "
                "with local(monitor, ...) / complex_pred(...)"
            )
        held = set(self.monitors)
        if not condition.monitors() <= held:
            missing = [m.monitor_id for m in condition.monitors() - held]
            raise PredicateError(
                f"global predicate involves monitors {missing} not held by "
                "this multisynch block"
            )
        gm = manager.global_condition_metrics
        evaluator = GenerationEvaluator(condition, gm)
        if evaluator.evaluate():
            return
        if timeout is not None:
            t = time.monotonic() + timeout
            deadline = t if deadline is None else min(deadline, t)
        if cancel is not None and cancel.cancelled():
            gm.add("wait_cancels")
            raise WaitCancelledError(
                "global wait cancelled before parking", cancel.reason)
        waiter = GlobalWaiter(condition, self.strategy)
        wake_cb = None
        if cancel is not None:
            # Event.set is safe from any thread and idempotent; the woken
            # loop observes the token after deregistering.
            wake_cb = waiter.event.set
            cancel.add_callback(wake_cb)
        try:
            while True:
                manager.register(waiter)
                # our own release bumps each involved monitor exactly once;
                # credit it so "nobody else touched anything" reads as
                # unchanged
                evaluator.credit_own_release()
                self._release_all()
                if deadline is None:
                    waiter.event.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        waiter.event.wait(remaining)
                self._acquire_all()
                manager.deregister(waiter)
                broken = next(
                    (m for m in self.monitors if m._broken is not None), None)
                if broken is not None:
                    raise BrokenMonitorError(
                        f"{broken!r} was marked broken during a global wait",
                        broken._broken)
                if evaluator.evaluate():
                    return
                gm.false_evals += 1
                if cancel is not None and cancel.cancelled():
                    gm.add("wait_cancels")
                    raise WaitCancelledError(
                        "global wait cancelled", cancel.reason)
                if deadline is not None and time.monotonic() >= deadline:
                    gm.add("wait_timeouts")
                    raise WaitTimeoutError(
                        f"global wait on {condition!r} timed out")
        finally:
            if wake_cb is not None:
                cancel.remove_callback(wake_cb)

    def __repr__(self):
        ids = [m.monitor_id for m in self.monitors]
        return f"<multisynch {ids} strategy={self.strategy}>"


#: Build a :class:`Multisynch` block (use with ``with``).  An alias of the
#: class, not a wrapper function, so the block-cycle hot path pays no extra
#: call frame.
multisynch = Multisynch


def current_multisynch() -> Multisynch | None:
    """The multisynch block active on this thread, if any."""
    return getattr(_active, "block", None)
