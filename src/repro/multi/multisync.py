"""The ``multisynch`` statement: multi-object mutual exclusion (§4.1).

``multisynch(a, b, c)`` acquires the monitor locks of ``a``, ``b`` and ``c``
in ascending monitor-id order — the system, not the programmer, decides the
locking order, eliminating deadlocks from inconsistent ordering (assuming,
as the paper does, that all multi-object acquisitions go through multisynch
and blocks do not nest).

Inside the block, :meth:`Multisynch.wait_until` accepts a *global predicate*
(a boolean combination of per-monitor local predicates, see
:mod:`repro.multi.global_predicates`).  While parked, the thread holds no
locks; re-acquisition follows the same ascending order.  Signaling follows
the configured strategy (AS / AV / CC).

Example (the paper's Fig. 1.5)::

    with multisynch(src, dst) as ms:
        ms.wait_until(local(src, S.count > 0) & local(dst, S.count < S.capacity))
        dst.put(src.take())
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.core.monitor import Monitor
from repro.multi import manager
from repro.multi.global_predicates import GlobalNode
from repro.multi.strategies import GlobalWaiter
from repro.runtime.errors import (
    MonitorError,
    NestedMultisynchError,
    PredicateError,
)

_active = threading.local()


def _collect(objs: Iterable, out: list[Monitor]) -> None:
    """Recursively gather monitors from (nested) sequences into ``out``."""
    for obj in objs:
        if isinstance(obj, Monitor):
            out.append(obj)
        elif isinstance(obj, (list, tuple)):
            _collect(obj, out)
        else:
            raise TypeError(f"multisynch expects Monitor objects, got {obj!r}")


def _flatten(objs: Iterable) -> list[Monitor]:
    """Accept monitors and (nested) sequences of monitors, as the paper
    allows arrays of monitor objects as multisynch parameters.  Duplicate
    references to the same monitor collapse to one acquisition; the result
    is sorted by monitor id (the acquisition order, §4.1)."""
    collected: list[Monitor] = []
    _collect(objs, collected)
    seen: dict[int, Monitor] = {}
    for m in collected:
        prior = seen.setdefault(m.monitor_id, m)
        if prior is not m:
            raise MonitorError(
                f"distinct monitors share id {m.monitor_id}: "
                f"{prior!r} and {m!r}"
            )
    return [seen[k] for k in sorted(seen)]


class Multisynch:
    """Context manager holding several monitors at once."""

    def __init__(self, *objs, strategy: str = "CC"):
        self.monitors: list[Monitor] = _flatten(objs)
        if not self.monitors:
            raise ValueError("multisynch needs at least one monitor")
        self.strategy = manager.validate_strategy(strategy)
        self._held = False

    # ------------------------------------------------------------- lock mgmt
    def _acquire_all(self) -> None:
        for m in self.monitors:           # ascending id
            m._monitor_enter()
        self._held = True

    def _release_all(self) -> None:
        self._held = False
        for m in reversed(self.monitors):  # descending id
            m._monitor_exit()

    def __enter__(self) -> "Multisynch":
        if getattr(_active, "block", None) is not None:
            raise NestedMultisynchError(
                "nested multisynch blocks are not supported; pass all "
                "monitors to one multisynch"
            )
        _active.block = self
        self._acquire_all()
        return self

    def __exit__(self, *exc) -> None:
        try:
            self._release_all()
        finally:
            _active.block = None

    # -------------------------------------------------------- global waiting
    def wait_until(self, condition: GlobalNode) -> None:
        """Block until the global condition holds (no global lock needed).

        The condition's monitors must all be covered by this multisynch
        block — otherwise its evaluation under the held locks would be
        unsound.
        """
        if not self._held:
            raise PredicateError("wait_until outside the multisynch block")
        if not isinstance(condition, GlobalNode):
            raise PredicateError(
                "multisynch.wait_until takes a global predicate; build one "
                "with local(monitor, ...) / complex_pred(...)"
            )
        held = set(self.monitors)
        if not condition.monitors() <= held:
            missing = [m.monitor_id for m in condition.monitors() - held]
            raise PredicateError(
                f"global predicate involves monitors {missing} not held by "
                "this multisynch block"
            )
        if condition.evaluate():
            return
        waiter = GlobalWaiter(condition, self.strategy)
        while True:
            manager.register(waiter)
            self._release_all()
            waiter.event.wait()
            self._acquire_all()
            manager.deregister(waiter)
            if condition.evaluate():
                return
            manager.global_condition_metrics.false_evals += 1

    def __repr__(self):
        ids = [m.monitor_id for m in self.monitors]
        return f"<multisynch {ids} strategy={self.strategy}>"


def multisynch(*objs, strategy: str = "CC") -> Multisynch:
    """Build a :class:`Multisynch` block (use with ``with``)."""
    return Multisynch(*objs, strategy=strategy)


def current_multisynch() -> Multisynch | None:
    """The multisynch block active on this thread, if any."""
    return getattr(_active, "block", None)
