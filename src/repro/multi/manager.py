"""Per-monitor registry of global-condition waiters + the signaling rule.

Each monitor keeps a list of all related global conditions (Algorithm 4's
table).  The manager installs an exit hook on every involved monitor; the
hook runs while the exiting thread still holds that monitor's lock, asks
each registered waiter's strategy whether to wake (AS / AV / CC), and
signals at most the waiters whose check passes.  Evaluations that come back
false are counted as *false evaluations* only on the waiter side (a wakeup
whose full predicate re-check fails), which is the quantity Fig. 4.8 plots.
"""

from __future__ import annotations

import threading
from repro.core.monitor import Monitor
from repro.multi.strategies import STRATEGIES, GlobalWaiter
from repro.runtime.config import config_snapshot
from repro.runtime.metrics import Metrics

#: process-global aggregate of global-condition activity
global_condition_metrics = Metrics()

_HOOK_ATTR = "_repro_global_hook_installed"
_TABLE_ATTR = "_repro_global_waiters"


def _table(monitor: Monitor) -> list[GlobalWaiter]:
    table = getattr(monitor, _TABLE_ATTR, None)
    if table is None:
        table = []
        setattr(monitor, _TABLE_ATTR, table)
    return table


def _ensure_hook(monitor: Monitor) -> None:
    if getattr(monitor, _HOOK_ATTR, False):
        return
    setattr(monitor, _HOOK_ATTR, True)
    monitor._exit_hooks.append(_on_monitor_exit)
    monitor._break_hooks.append(_on_monitor_broken)


def _on_monitor_exit(monitor: Monitor) -> None:
    """Algorithm 4: before releasing Mᵢ, check related global conditions.

    Exit hooks run *before* the relay flush, so ``monitor._dirty`` is still
    exactly the exiting section's write set: a waiter whose per-monitor read
    set is disjoint from it cannot have been enabled by this exit (no atom
    local to the monitor changed value), and is skipped without a strategy
    check — under AS this eliminates the wakeup (and its false evaluation)
    outright.
    """
    table = getattr(monitor, _TABLE_ATTR, None)
    if not table:
        return
    m = global_condition_metrics
    me = threading.get_ident()
    dirty = monitor._dirty
    track = config_snapshot().track_dependencies
    for waiter in list(table):
        if waiter.owner == me:
            # a thread releasing its own locks on the way into a wait must
            # not signal itself (would livelock the AS strategy)
            continue
        if track:
            reads = waiter.reads_by_monitor.get(monitor)
            if reads is not None and (not dirty or reads.isdisjoint(dirty)):
                m.relay_dirty_skips += 1
                continue
        m.predicate_evals += 1  # direct increment: runs on every monitor exit
        if waiter.check_on_exit(monitor):
            waiter.signal()
            m.bump("signals")


def _on_monitor_broken(monitor: Monitor) -> None:
    """Poisoning hook: wake every global waiter involving this monitor.

    Runs under the broken monitor's lock (from ``mark_broken``).  The woken
    threads re-acquire their full lock set, deregister, observe the broken
    monitor, and raise :class:`BrokenMonitorError` — instead of sleeping on
    a condition that can no longer legally become true.
    """
    table = getattr(monitor, _TABLE_ATTR, None)
    if not table:
        return
    for waiter in list(table):
        waiter.signal()


def register(waiter: GlobalWaiter) -> None:
    """Install ``waiter`` on every involved monitor.

    Caller holds all involved locks (so each per-monitor table mutation is
    protected by that monitor's own lock)."""
    waiter.prepare()
    for monitor in waiter.monitors:
        _ensure_hook(monitor)
        _table(monitor).append(waiter)


def deregister(waiter: GlobalWaiter) -> None:
    """Remove ``waiter`` from every table (caller holds all locks)."""
    for monitor in waiter.monitors:
        table = getattr(monitor, _TABLE_ATTR, None)
        if table is not None:
            try:
                table.remove(waiter)
            except ValueError:
                pass


def validate_strategy(strategy: str) -> str:
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    return strategy
