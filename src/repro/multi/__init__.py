"""Multi-object synchronization (Chapter 4): multisynch + global conditions."""

from repro.multi.global_predicates import (
    ComplexPredicate,
    GAnd,
    GlobalAtom,
    GlobalNode,
    GOr,
    LocalPredicate,
    complex_pred,
    compute_critical,
    group_by_monitor,
    local,
)
from repro.multi.manager import global_condition_metrics
from repro.multi.multisync import Multisynch, current_multisynch, multisynch
from repro.multi.strategies import STRATEGIES, GlobalWaiter

__all__ = [
    "multisynch",
    "Multisynch",
    "current_multisynch",
    "local",
    "complex_pred",
    "LocalPredicate",
    "ComplexPredicate",
    "GlobalNode",
    "GlobalAtom",
    "GAnd",
    "GOr",
    "compute_critical",
    "group_by_monitor",
    "GlobalWaiter",
    "STRATEGIES",
    "global_condition_metrics",
]
