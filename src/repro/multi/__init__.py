"""Multi-object synchronization (Chapter 4): multisynch + global conditions."""

from repro.multi.global_predicates import (
    ComplexPredicate,
    GAnd,
    GenerationEvaluator,
    GlobalAtom,
    GlobalNode,
    GOr,
    LocalPredicate,
    complex_pred,
    compute_critical,
    group_by_monitor,
    local,
)
from repro.multi.manager import global_condition_metrics
from repro.multi.multisync import (
    MonitorSet,
    Multisynch,
    current_multisynch,
    monitor_set,
    multisynch,
)
from repro.multi.strategies import STRATEGIES, GlobalWaiter

__all__ = [
    "multisynch",
    "Multisynch",
    "monitor_set",
    "MonitorSet",
    "current_multisynch",
    "GenerationEvaluator",
    "local",
    "complex_pred",
    "LocalPredicate",
    "ComplexPredicate",
    "GlobalNode",
    "GlobalAtom",
    "GAnd",
    "GOr",
    "compute_critical",
    "group_by_monitor",
    "GlobalWaiter",
    "STRATEGIES",
    "global_condition_metrics",
]
