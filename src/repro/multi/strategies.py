"""Global-condition signaling strategies: AS, AV, CC (§4.2–4.3).

When a thread blocks on a global condition it registers a
:class:`GlobalWaiter` with every monitor the condition involves.  Whenever a
thread exits one of those monitors (hook installed by the manager), the
configured strategy decides whether to wake the waiter:

* **AS** (always-signal, the evaluation's naive strawman): every exit of a
  related monitor signals every related waiter.  Never misses a signal;
  maximal false signals.
* **AV** (atomic-variable, §4.2.2): each local atom of the predicate is
  mirrored into an atomic boolean cell; on exit of monitor Mᵢ the exiting
  thread refreshes the cells of atoms local to Mᵢ (safe: it holds Mᵢ's
  lock), then evaluates the mirrored formula P̂ over cells only — if true,
  signal (Prop. 3 gives no-missed-signal).
* **CC** (critical-clause, §4.2.3): the waiter computes a critical clause
  C = ∨ Cᵢ (Algorithm 3) and installs the per-monitor local clauses; on
  exit of Mᵢ the exiting thread evaluates only Cᵢ — a pure disjunction of
  Mᵢ-local atoms — and signals when it is true (Algorithm 4, Prop. 5).

Complex atoms are handled conservatively in AV and CC: any exit of a
related monitor counts as potentially-true (§4.2.4).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.monitor import Monitor
from repro.multi.global_predicates import (
    ComplexPredicate,
    GAnd,
    GlobalAtom,
    GlobalNode,
    LocalPredicate,
    compute_critical,
    group_by_monitor,
)

STRATEGIES = ("AS", "AV", "CC")

#: "reads nothing yet" seed for the per-monitor read-set union
_NO_READS: frozenset = frozenset()


class GlobalWaiter:
    """One thread blocked on one global condition."""

    __slots__ = ("predicate", "strategy", "event", "monitors",
                 "cells", "mirror", "local_clauses", "signaled", "owner",
                 "reads_by_monitor")

    def __init__(self, predicate: GlobalNode, strategy: str):
        self.predicate = predicate
        self.strategy = strategy
        self.event = threading.Event()
        self.owner = threading.get_ident()
        self.monitors = sorted(predicate.monitors(), key=lambda m: m.monitor_id)
        #: AV state: atom -> boolean cell index; mirror formula over cells
        self.cells: dict[int, bool] = {}
        self.mirror: Optional["_MirrorNode"] = None
        #: CC state: monitor -> list of atoms (the local clause Cᵢ)
        self.local_clauses: dict[Monitor, list[GlobalAtom]] = {}
        self.signaled = False
        #: monitor -> union of the read sets of atoms involving it, or None
        #: when some such atom is opaque/complex.  The manager's exit hook
        #: skips this waiter entirely when the exiting section's dirty set
        #: is disjoint from the exit monitor's entry — no atom local to the
        #: monitor can have changed value, under any strategy.
        self.reads_by_monitor = reads = {}
        for atom in predicate.atoms():
            if isinstance(atom, LocalPredicate):
                rs = atom.predicate.read_set()
                cur = reads.get(atom.monitor, _NO_READS)
                reads[atom.monitor] = (
                    None if rs is None or cur is None else cur | rs)
            else:  # complex atom: conservative for every involved monitor
                for mon in atom.monitors():
                    reads[mon] = None

    # -- called by the waiting thread while holding ALL involved locks --------
    def prepare(self) -> None:
        """Build the strategy's bookkeeping from the current (false) state."""
        self.event.clear()
        self.signaled = False
        if self.strategy == "AV":
            self.mirror = _build_mirror(self.predicate, self)
            self._refresh_all_cells()
        elif self.strategy == "CC":
            clause = compute_critical(self.predicate)
            self.local_clauses = group_by_monitor(clause)

    def _refresh_all_cells(self) -> None:
        for atom in self.predicate.atoms():
            self.cells[id(atom)] = atom.evaluate()

    # -- called by an exiting thread holding only `monitor`'s lock ------------
    def check_on_exit(self, monitor: Monitor) -> bool:
        """Return True when the waiter should be signaled."""
        if self.signaled:
            return False
        if self.strategy == "AS":
            return True
        if self.strategy == "AV":
            for atom in self.predicate.atoms():
                if isinstance(atom, LocalPredicate) and atom.monitor is monitor:
                    self.cells[id(atom)] = atom.evaluate()
                elif isinstance(atom, ComplexPredicate) and monitor in atom.monitors():
                    self.cells[id(atom)] = True  # conservative (§4.2.4)
            return self.mirror.evaluate() if self.mirror is not None else False
        # CC: evaluate only this monitor's local critical clause Cᵢ
        clause = self.local_clauses.get(monitor)
        if not clause:
            return False
        for atom in clause:
            if isinstance(atom, ComplexPredicate):
                return True  # conservative
            if atom.evaluate():
                return True
        return False

    def signal(self) -> None:
        self.signaled = True
        self.event.set()


class _MirrorNode:
    """P̂: the predicate's boolean skeleton evaluated over the AV cells."""

    __slots__ = ("kind", "children", "cell_key", "waiter")

    def __init__(self, kind: str, children=(), cell_key: int = 0, waiter=None):
        self.kind = kind
        self.children = children
        self.cell_key = cell_key
        self.waiter = waiter

    def evaluate(self) -> bool:
        if self.kind == "cell":
            return self.waiter.cells.get(self.cell_key, False)
        if self.kind == "and":
            return all(c.evaluate() for c in self.children)
        return any(c.evaluate() for c in self.children)


def _build_mirror(node: GlobalNode, waiter: GlobalWaiter) -> _MirrorNode:
    if isinstance(node, GlobalAtom):
        return _MirrorNode("cell", cell_key=id(node), waiter=waiter)
    kind = "and" if isinstance(node, GAnd) else "or"
    return _MirrorNode(kind, tuple(_build_mirror(c, waiter) for c in node.children))
