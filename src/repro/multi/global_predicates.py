"""Global predicates: boolean conditions spanning multiple monitors (§4.2).

A global predicate is a boolean combination of *local predicates* (each
involving exactly one monitor) and, optionally, *complex predicates*
(involving several monitors, §4.2.4).  Build them with::

    from repro.multi import local, complex_pred
    gp = local(q1, S.count > 0) & local(q2, S.count < S.capacity)
    gp2 = complex_pred([q1, q2], lambda: q1.size() > q2.size())

Evaluation of the full predicate requires holding every involved monitor's
lock; local atoms can be evaluated holding only their own monitor's lock —
that asymmetry is exactly what the atomic-variable and critical-clause
approaches exploit.

:func:`compute_critical` implements the paper's Algorithm 3: given a global
predicate that is false in the current state, derive a *critical clause* — a
pure disjunction of local predicates that (1) is false now, (2) must become
true before the predicate can (P ⇒ C), and (3) is locally monitorable.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.monitor import Monitor
from repro.core.predicates import BoolNode, Predicate
from repro.runtime.config import config_snapshot
from repro.runtime.errors import PredicateError


class GlobalNode:
    """Base class of the global boolean tree."""

    __slots__ = ()

    def evaluate(self) -> bool:
        """Evaluate; caller must hold the locks of every involved monitor."""
        raise NotImplementedError

    def monitors(self) -> frozenset[Monitor]:
        raise NotImplementedError

    def negate(self) -> "GlobalNode":
        raise NotImplementedError

    def atoms(self) -> Iterable["GlobalAtom"]:
        raise NotImplementedError

    def __and__(self, other):
        return GAnd([self, _as_global(other)])

    def __or__(self, other):
        return GOr([self, _as_global(other)])

    def __invert__(self):
        return self.negate()


def _as_global(node) -> GlobalNode:
    if isinstance(node, GlobalNode):
        return node
    raise PredicateError(f"{node!r} is not a global predicate node")


class GlobalAtom(GlobalNode):
    __slots__ = ()

    def atoms(self):
        yield self


class LocalPredicate(GlobalAtom):
    """An atom local to one monitor: evaluable under that monitor's lock."""

    __slots__ = ("monitor", "predicate", "_eval")

    def __init__(self, monitor: Monitor, condition: BoolNode | Callable[..., bool] | bool):
        self.monitor = monitor
        self.predicate = condition if isinstance(condition, Predicate) else Predicate(condition)
        self._eval: Callable[[Monitor], bool] | None = None

    def evaluate(self) -> bool:
        # global conditions are re-checked on every related monitor exit
        # (Alg. 4), so route through the compiled closure like local waits do
        ev = self._eval
        if ev is None:
            ev = self.predicate.evaluator()
            self._eval = ev
        return ev(self.monitor)

    def monitors(self) -> frozenset[Monitor]:
        return frozenset((self.monitor,))

    def negate(self) -> "LocalPredicate":
        return LocalPredicate(self.monitor, self.predicate.root.negate())

    @property
    def is_complex(self) -> bool:
        return False

    def __repr__(self):
        return f"local(#{self.monitor.monitor_id}, {self.predicate.root!r})"


class ComplexPredicate(GlobalAtom):
    """An atom involving several monitors (§4.2.4).

    Cannot be evaluated under a single monitor's lock; the signaling layers
    handle it conservatively — any update of a related monitor is assumed to
    potentially make it true.
    """

    __slots__ = ("_monitors", "fn")

    def __init__(self, monitors: Sequence[Monitor], fn: Callable[[], bool]):
        if len(monitors) < 2:
            raise PredicateError("complex predicates involve at least two monitors")
        self._monitors = frozenset(monitors)
        self.fn = fn

    def evaluate(self) -> bool:
        return bool(self.fn())

    def monitors(self) -> frozenset[Monitor]:
        return self._monitors

    def negate(self) -> "ComplexPredicate":
        return ComplexPredicate(sorted(self._monitors, key=lambda m: m.monitor_id),
                                lambda: not self.fn())

    @property
    def is_complex(self) -> bool:
        return True

    def __repr__(self):
        ids = sorted(m.monitor_id for m in self._monitors)
        return f"complex({ids})"


class GAnd(GlobalNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[GlobalNode]):
        flat: list[GlobalNode] = []
        for c in children:
            c = _as_global(c)
            flat.extend(c.children) if isinstance(c, GAnd) else flat.append(c)
        self.children = tuple(flat)

    def evaluate(self) -> bool:
        return all(c.evaluate() for c in self.children)

    def monitors(self) -> frozenset[Monitor]:
        return frozenset().union(*(c.monitors() for c in self.children))

    def negate(self) -> "GOr":
        return GOr([c.negate() for c in self.children])

    def atoms(self):
        for c in self.children:
            yield from c.atoms()

    def __repr__(self):
        return "(" + " && ".join(map(repr, self.children)) + ")"


class GOr(GlobalNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[GlobalNode]):
        flat: list[GlobalNode] = []
        for c in children:
            c = _as_global(c)
            flat.extend(c.children) if isinstance(c, GOr) else flat.append(c)
        self.children = tuple(flat)

    def evaluate(self) -> bool:
        return any(c.evaluate() for c in self.children)

    def monitors(self) -> frozenset[Monitor]:
        return frozenset().union(*(c.monitors() for c in self.children))

    def negate(self) -> "GAnd":
        return GAnd([c.negate() for c in self.children])

    def atoms(self):
        for c in self.children:
            yield from c.atoms()

    def __repr__(self):
        return "(" + " || ".join(map(repr, self.children)) + ")"


class GenerationEvaluator:
    """Memoizing evaluator for one thread's global-predicate wait loop.

    Every :class:`~repro.core.monitor.Monitor` carries a ``_generation``
    counter bumped on each monitor exit (including the ActiveMonitor
    server's batch paths).  While this thread was parked, an atom's last
    value remains valid as long as every involved monitor's generation is
    unchanged — any mutation by another thread happens inside a monitor
    section whose exit bumps the counter *before* releasing the lock.  So a
    wakeup re-evaluates only the atoms whose monitors actually moved, and
    when nothing moved the whole evaluation is served from the memo.

    Local atoms with a *known* predicate read set are stamped at finer
    grain: per summed read-variable write generation
    (``ConditionManager.var_gens``, bumped when an exit's dirty set is
    flushed) instead of per monitor generation.  A neighbor's exit that
    wrote unrelated variables then still validates the memo — the common
    case in sparse workloads, where the whole-monitor stamp is invalidated
    by every exit.

    The memo is confined to one ``wait_until`` call (one thread).  That
    confinement is what makes direct in-block attribute writes safe: a
    write by *this* thread can only happen before the evaluator was built
    or after it dies — never between two of its evaluations, because the
    thread is parked in between.  Sharing a memo across threads (e.g. on
    the atoms themselves) would break exactly there.

    ``credit_own_release`` folds the caller's *own* imminent release (one
    exit per involved monitor) into the stamps, so a wakeup where no other
    thread touched anything is recognized as "unchanged".
    """

    __slots__ = ("node", "_memo", "_metrics")

    def __init__(self, node: GlobalNode, metrics=None):
        self.node = node
        #: id(atom) -> [stamp, value, span, reads, monitor]; ``reads`` is
        #: None for generation-stamped entries (stamp = Σ generations,
        #: own-release credit = span) and a frozenset of variable names for
        #: var-stamped ones (stamp = Σ var gens, credit = |reads ∩ dirty|)
        self._memo: dict[int, list] = {}
        self._metrics = metrics   # e.g. manager.global_condition_metrics

    def evaluate(self) -> bool:
        """Evaluate the predicate; caller holds every involved lock."""
        return self._eval(self.node)

    def _eval(self, node: GlobalNode) -> bool:
        children = getattr(node, "children", None)
        if children is not None:
            if isinstance(node, GAnd):
                for c in children:
                    if not self._eval(c):
                        return False
                return True
            for c in children:      # GOr
                if self._eval(c):
                    return True
            return False
        # atom: stamp = sum of monotonically non-decreasing counters (the
        # sum is unchanged iff every one is) — per read variable when the
        # atom's read set is known, per monitor generation otherwise
        reads = None
        monitor = None
        if isinstance(node, LocalPredicate):
            monitor = node.monitor
            if config_snapshot().track_dependencies:
                reads = node.predicate.read_set()
            if reads is not None:
                gens = monitor._cond_mgr.var_gens
                stamp = 0
                for name in reads:
                    stamp += gens.get(name, 0)
                span = 0
            else:
                stamp = monitor._generation
                span = 1
        else:
            stamp = 0
            span = 0
            for m in node.monitors():
                stamp += m._generation
                span += 1
        memo = self._memo.get(id(node))
        if (memo is not None and memo[0] == stamp
                and (memo[3] is None) == (reads is None)):
            if self._metrics is not None:
                self._metrics.gen_skips += 1
            return memo[1]
        value = node.evaluate()
        self._memo[id(node)] = [stamp, value, span, reads, monitor]
        return value

    def credit_own_release(self) -> None:
        """Fold the caller's imminent release into the memoized stamps.

        Generation-stamped entries gain one bump per monitor the atom spans
        (every ``_monitor_exit`` bumps ``_generation``); var-stamped entries
        gain one bump per read variable the caller's own section dirtied
        (the release's relay flush bumps exactly those).  Call right before
        releasing all locks on the way into a park."""
        for memo in self._memo.values():
            reads = memo[3]
            if reads is None:
                memo[0] += memo[2]
                continue
            dirty = memo[4]._dirty
            if dirty:
                for name in reads:
                    if name in dirty:
                        memo[0] += 1


def local(monitor: Monitor, condition) -> LocalPredicate:
    """Build a local-predicate atom; sugar for :class:`LocalPredicate`."""
    return LocalPredicate(monitor, condition)


def complex_pred(monitors: Sequence[Monitor], fn: Callable[[], bool]) -> ComplexPredicate:
    """Build a complex (multi-monitor) atom; see §4.2.4."""
    return ComplexPredicate(monitors, fn)


def compute_critical(node: GlobalNode) -> list[GlobalAtom]:
    """Algorithm 3: derive a critical clause for a predicate false in the
    current state (caller holds all involved locks).

    Returns the clause as a list of atoms whose disjunction is the critical
    clause C.  Per §4.2.4, conjunctions prefer a false *local* conjunct over
    a complex one, so that complex atoms (which force conservative
    always-signal behaviour) only enter the clause when unavoidable.
    """
    if isinstance(node, GlobalAtom):
        return [node]
    if isinstance(node, GAnd):
        false_children = [c for c in node.children if not c.evaluate()]
        if not false_children:
            raise PredicateError("compute_critical called on a true predicate")
        # prefer a purely-local false conjunct (cheapest to monitor)
        for child in false_children:
            if not any(getattr(a, "is_complex", False) for a in child.atoms()):
                return compute_critical(child)
        return compute_critical(false_children[0])
    if isinstance(node, GOr):
        clause: list[GlobalAtom] = []
        for child in node.children:
            clause.extend(compute_critical(child))
        return clause
    raise PredicateError(f"unknown global node {node!r}")


def group_by_monitor(atoms: Iterable[GlobalAtom]) -> dict[Monitor, list[GlobalAtom]]:
    """Split a critical clause into per-monitor local critical clauses Cᵢ.

    Complex atoms appear in the bucket of *every* related monitor (the
    conservative rule)."""
    buckets: dict[Monitor, list[GlobalAtom]] = {}
    for atom in atoms:
        for monitor in atom.monitors():
            buckets.setdefault(monitor, []).append(atom)
    return buckets
