"""Logical compositionality (Chapter 5): OR / AND / selectone / selectall."""

from repro.compose.async_ops import (
    SKIPPED,
    async_and,
    async_or,
    async_select_all,
    async_select_one,
    submit_select_all,
    submit_select_one,
)
from repro.compose.guarded import GuardedCall, bind
from repro.compose.operators import and_, or_, select_all, select_one

__all__ = [
    "GuardedCall",
    "bind",
    "or_",
    "and_",
    "select_one",
    "select_all",
    "async_or",
    "async_and",
    "async_select_one",
    "async_select_all",
    "submit_select_one",
    "submit_select_all",
    "SKIPPED",
]
