"""Synchronous composition operators (§5.2, Algorithms 5-8).

``or_`` / ``select_one`` execute exactly one operand; ``and_`` /
``select_all`` execute every operand, in whatever order their guards become
true.  Each operator runs in two phases:

* **speculative** — iterate over the operands with non-blocking lock
  attempts, executing any whose guard holds (Algorithm 5);
* **synchronized** — if the speculative phase did not finish the job,
  acquire all remaining operand locks in id order (as ``multisynch`` does),
  derive the disjunction of the remaining guards as a global predicate
  (Algorithm 6), and ``waituntil`` it before trying again.

Results carry the operand index so callers can tell which branch ran
(standing in for the paper's ``x = Q1.take() OR x = Q2.take()`` assignment
forms).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.compose.guarded import GuardedCall
from repro.multi.global_predicates import GOr, LocalPredicate
from repro.multi.multisync import Multisynch
from repro.runtime.errors import CompositionError


def _execute_one(calls: Sequence[GuardedCall]) -> tuple[int, Any] | None:
    """Algorithm 5 (executeOneOperand): run the first executable operand."""
    for index, call in enumerate(calls):
        ok, result = call.try_execute()
        if ok:
            return index, result
    return None


def _executable_predicate(calls: Sequence[GuardedCall]) -> GOr:
    """Algorithm 6: the disjunction of the operands' guards as a global
    predicate (one local atom per operand's monitor)."""
    atoms = [
        LocalPredicate(call.monitor, _guard_atom(call))
        for call in calls
    ]
    return GOr(atoms)


def _guard_atom(call: GuardedCall):
    if call.pre is None:
        return lambda: True
    return lambda: bool(call.pre(call.monitor, *call.args, **call.kwargs))


def _check(calls: Sequence[GuardedCall]) -> list[GuardedCall]:
    calls = list(calls)
    if not calls:
        raise CompositionError("composition needs at least one operand")
    return calls


def or_(*operands: GuardedCall, strategy: str = "CC") -> tuple[int, Any]:
    """Execute exactly one operand (Algorithm 7); returns (index, result)."""
    return select_one(_check(operands), strategy=strategy)


def select_one(calls: Sequence[GuardedCall], strategy: str = "CC") -> tuple[int, Any]:
    """Generalized OR over a collection of operands (Algorithm 7)."""
    calls = _check(calls)
    # Speculative phase
    hit = _execute_one(calls)
    if hit is not None:
        return hit
    # Synchronized phase
    block = Multisynch([c.monitor for c in calls], strategy=strategy)
    predicate = _executable_predicate(calls)
    with block:
        while True:
            block.wait_until(predicate)
            hit = _execute_one(calls)   # reentrant tryLocks succeed: we hold them
            if hit is not None:
                return hit
            # a signaled-but-stale guard: wait again


def and_(*operands: GuardedCall, strategy: str = "CC") -> list[Any]:
    """Execute every operand, any order (Algorithm 8); results by position."""
    return select_all(_check(operands), strategy=strategy)


def select_all(calls: Sequence[GuardedCall], strategy: str = "CC") -> list[Any]:
    """Generalized AND over a collection of operands (Algorithm 8)."""
    calls = _check(calls)
    results: list[Any] = [None] * len(calls)
    remaining = {i: c for i, c in enumerate(calls)}

    # Speculative phase: keep executing any executable operand until stuck.
    progress = True
    while remaining and progress:
        progress = False
        for i in list(remaining):
            ok, result = remaining[i].try_execute()
            if ok:
                results[i] = result
                del remaining[i]
                progress = True
    # Synchronized phase over the leftovers.
    while remaining:
        leftover = [remaining[i] for i in sorted(remaining)]
        block = Multisynch([c.monitor for c in leftover], strategy=strategy)
        predicate = _executable_predicate(leftover)
        with block:
            block.wait_until(predicate)
            for i in list(remaining):
                call = remaining[i]
                lock_ok, result = call.try_execute()
                if lock_ok:
                    results[i] = result
                    del remaining[i]
    return results
