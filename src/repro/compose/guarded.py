"""Guarded monitor calls: the operands of composition operators (§5.1).

A *guarded monitor method* (Def. 13) has its only ``waituntil`` at the very
top — i.e. a precondition plus a body.  Methods declared with
``@synchronous(pre=...)`` / ``@asynchronous(pre=...)`` are guarded by
construction; plain Monitor methods are guarded with a tautological
precondition.

:func:`bind` packages a *deferred* invocation — monitor, body, precondition,
arguments — without executing it::

    op = bind(q1.put, item)          # does NOT run put
    or_(bind(q1.put, item), bind(q2.put, item))   # Fig. 1.7's putInAQueue
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.monitor import Monitor
from repro.runtime.errors import CompositionError


class GuardedCall:
    """A deferred guarded invocation of one monitor method."""

    __slots__ = ("monitor", "fn", "pre", "args", "kwargs", "name")

    def __init__(
        self,
        monitor: Monitor,
        fn: Callable[..., Any],
        pre: Optional[Callable[..., Any]],
        args: tuple = (),
        kwargs: dict | None = None,
        name: str = "",
    ):
        self.monitor = monitor
        self.fn = fn
        self.pre = pre
        self.args = args
        self.kwargs = kwargs or {}
        self.name = name or getattr(fn, "__name__", "call")

    # -- under the monitor lock -------------------------------------------------
    def pre_true(self) -> bool:
        """Evaluate the precondition; caller holds the monitor's lock."""
        if self.pre is None:
            return True
        return bool(self.pre(self.monitor, *self.args, **self.kwargs))

    def execute(self) -> Any:
        """Run the body; caller holds the lock and has verified the guard."""
        return self.fn(self.monitor, *self.args, **self.kwargs)

    def try_execute(self) -> tuple[bool, Any]:
        """Algorithm 5's per-operand step: tryLock → check guard → execute.

        Returns ``(True, result)`` on success, ``(False, None)`` when the
        lock was unavailable or the guard is false.
        """
        lock = self.monitor._lock  # monlint: disable=W004 — try-lock probe, released immediately
        if not lock.acquire(blocking=False):
            return False, None
        self.monitor._depth += 1
        try:
            if not self.pre_true():
                return False, None
            return True, self.execute()
        finally:
            self.monitor._depth -= 1
            if self.monitor._depth == 0:
                for hook in self.monitor._exit_hooks:
                    hook(self.monitor)
                self.monitor._cond_mgr.relay_signal()
            lock.release()

    def __repr__(self):
        return f"<GuardedCall {self.name} on #{self.monitor.monitor_id}>"


def bind(bound_method: Callable, *args, **kwargs) -> GuardedCall:
    """Build a :class:`GuardedCall` from a bound monitor method.

    Works with ``@synchronous`` / ``@asynchronous`` guarded methods (the
    declared ``pre`` becomes the guard) and with plain auto-wrapped Monitor
    methods (tautological guard).
    """
    monitor = getattr(bound_method, "__self__", None)
    if not isinstance(monitor, Monitor):
        raise CompositionError(f"{bound_method!r} is not a bound monitor method")
    wrapper = bound_method.__func__
    raw = getattr(wrapper, "__wrapped__", None)
    if raw is None or not getattr(wrapper, "_repro_wrapped", False):
        raise CompositionError(
            f"{bound_method!r} is not a monitor method (no framework wrapper)"
        )
    pre = getattr(wrapper, "_repro_guard", None)
    return GuardedCall(monitor, raw, pre, args, kwargs,
                       name=getattr(raw, "__name__", "call"))
