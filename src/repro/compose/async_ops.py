"""Asynchronous composition operators via ActiveMonitor (§5.3).

Operands must live on distinct monitors (the paper's pre-processor raises a
parsing error otherwise — cross-monitor program order under conditional
synchronization cannot be guaranteed for same-monitor operands).

``async_and`` / ``async_select_all`` delegate one task per operand to that
monitor's server and then force the worker to evaluate every future.

``async_or`` / ``async_select_one`` delegate a task per operand that shares
one atomic ``taken`` flag: when a server finds an operand's guard true it
performs a test-and-set on the flag (:class:`repro.runtime.atomics.AtomicFlag`
— the explicit-atomics layer, correct with and without the GIL), and only
the winner executes its body (§5.3.1); losers resolve to :data:`SKIPPED`.

The ``submit_select_*`` halves expose the submission step without the
blocking ``get``: the asyncio frontend (:mod:`repro.aio`) submits from an
executor thread and awaits the returned futures on the loop.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.active.activemonitor import ActiveMonitor
from repro.active.futures import LightFuture
from repro.active.tasks import MonitorTask
from repro.compose.guarded import GuardedCall
from repro.core.predicates import Predicate
from repro.runtime.atomics import AtomicFlag
from repro.runtime.errors import CompositionError

#: sentinel result of a losing OR operand
SKIPPED = object()


def _validate(calls: Sequence[GuardedCall]) -> list[GuardedCall]:
    calls = list(calls)
    if not calls:
        raise CompositionError("composition needs at least one operand")
    monitors = {id(c.monitor) for c in calls}
    if len(monitors) != len(calls):
        raise CompositionError(
            "asynchronous composition operands must be on distinct monitors"
        )
    for call in calls:
        if not isinstance(call.monitor, ActiveMonitor) or not call.monitor.is_active:
            raise CompositionError(
                f"operand {call.name} is not on a live ActiveMonitor; use the "
                "synchronous operators instead"
            )
    return calls


def _submit(call: GuardedCall, precondition, body) -> LightFuture:
    task = MonitorTask.acquire(body, (), {}, precondition=precondition,
                               name=call.name)
    future = task.future   # capture before submit: the shell is pooled
    call.monitor.server.submit(task)
    return future


def async_and(*operands: GuardedCall) -> list[Any]:
    """Delegate every operand; block until all complete; results by position."""
    return async_select_all(list(operands))


def async_select_all(calls: Sequence[GuardedCall]) -> list[Any]:
    return [future.get() for future in submit_select_all(calls)]


def submit_select_all(calls: Sequence[GuardedCall]) -> list[LightFuture]:
    """Submission half of :func:`async_select_all`: delegate every operand
    and return the per-operand futures without evaluating them."""
    calls = _validate(calls)
    return [
        _submit(
            call,
            Predicate(_guard_thunk(call)),
            _body_thunk(call),
        )
        for call in calls
    ]


def async_or(*operands: GuardedCall) -> tuple[int, Any]:
    """Delegate all operands; exactly one executes; returns (index, result)."""
    return async_select_one(list(operands))


def async_select_one(calls: Sequence[GuardedCall]) -> tuple[int, Any]:
    return submit_select_one(calls).get()


def submit_select_one(calls: Sequence[GuardedCall]) -> LightFuture:
    """Submission half of :func:`async_select_one`: delegate every operand
    and return the shared winner future, unevaluated."""
    calls = _validate(calls)
    taken = AtomicFlag()
    winner_future: LightFuture = LightFuture()

    def make_guard(call: GuardedCall):
        # executable once the real guard holds — or once somebody else won,
        # so the loser task drains from the pending set as SKIPPED.
        real = _guard_thunk(call)
        return lambda: bool(taken) or real()

    def make_body(index: int, call: GuardedCall):
        run = _body_thunk(call)

        def body():
            if taken.test_and_set():
                return SKIPPED
            result = run()
            winner_future.set_result((index, result))
            # losers may be parked behind false guards on other servers;
            # kick those servers so the SKIPPED drain happens promptly
            for other in calls:
                if other is not call and other.monitor.server is not None:
                    other.monitor.server._wake.set()
            return (index, result)

        return body

    for index, call in enumerate(calls):
        _submit(call, Predicate(make_guard(call)), make_body(index, call))
    # per-task futures are dropped: results resolve via winner_future and
    # losers drain as SKIPPED
    return winner_future


def _guard_thunk(call: GuardedCall):
    if call.pre is None:
        return lambda: True
    return lambda: bool(call.pre(call.monitor, *call.args, **call.kwargs))


def _body_thunk(call: GuardedCall):
    return lambda: call.execute()
