"""TL2-style software transactional memory (the Deuce-STM stand-in)."""

from repro.stm.tl2 import (
    StmStats,
    TArray,
    TVar,
    atomic,
    current_transaction,
    retry,
    stats,
    transactionally,
)

__all__ = [
    "TVar",
    "TArray",
    "atomic",
    "retry",
    "transactionally",
    "current_transaction",
    "StmStats",
    "stats",
]
