"""A TL2-style software transactional memory.

This is the repo's stand-in for the Deuce STM the paper benchmarks against
(Figs. 4.3, 4.4, 4.6, 4.7, 4.9, 5.2).  The algorithm is the classic TL2
recipe Deuce implements:

* a global version clock;
* per-location versioned write-locks (:class:`TVar`);
* transactions keep a read set (location → observed version) and a write
  set (location → new value); reads validate against the read version
  sampled at transaction begin;
* commit locks the write set in a canonical order, revalidates the read
  set, bumps the clock, publishes, unlocks.

Conditional synchronization — the capability the paper stresses TM *lacks* —
is provided only as :func:`retry`: abort and re-run once some member of the
read set changes, detected by version polling with exponential backoff
(exactly the "thread itself needs to recheck every time there is an update"
behaviour §4.2 describes).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Optional, TypeVar

from repro.runtime.atomics import AtomicCounter

T = TypeVar("T")

#: even version numbers; odd = locked.  The draw is an AtomicCounter (raw
#: itertools.count under the GIL, locked fetch-and-add without it); the
#: publish to ``_current_version`` keeps ``_clock_lock`` so concurrent
#: commits publish in draw order — a stale-but-smaller published clock
#: would only cost extra aborts, but the lock is off the read path anyway.
_clock = AtomicCounter(2, 2)
_clock_lock = threading.Lock()
_current_version = 0

_txn_local = threading.local()


def _advance_clock() -> int:
    global _current_version
    with _clock_lock:
        _current_version = _clock.next()
        return _current_version


def _read_clock() -> int:
    return _current_version


class AbortException(Exception):
    """Internal: transaction must abort and re-run."""


class RetryException(Exception):
    """Internal: ``retry()`` was called — wait for a read-set update."""


#: TVar ids seed the per-variable lock order for commit-time acquisition;
#: uniqueness must survive the no-GIL lane, hence the explicit atomic draw
_var_ids = AtomicCounter(1)


class TVar:
    """A transactional variable: value + version + write-lock."""

    __slots__ = ("_value", "_version", "_lock", "_id")

    def __init__(self, value: Any = None):
        self._value = value
        self._version = 0
        self._lock = threading.Lock()
        self._id = _var_ids.next()

    # -- transactional access --------------------------------------------------
    def get(self) -> Any:
        txn = current_transaction()
        if txn is None:
            return self._value          # non-transactional racy read
        return txn.read(self)

    def set(self, value: Any) -> None:
        txn = current_transaction()
        if txn is None:
            raise RuntimeError("TVar.set outside a transaction")
        txn.write(self, value)

    def modify(self, fn: Callable[[Any], Any]) -> Any:
        new = fn(self.get())
        self.set(new)
        return new

    def _sample(self) -> tuple[Any, int, bool]:
        """Read (value, version, locked) consistently enough for TL2."""
        version = self._version
        value = self._value
        locked = self._lock.locked()
        after = self._version
        return value, version, locked or (version != after)

    def __repr__(self):
        return f"TVar#{self._id}({self._value!r}@v{self._version})"


class Transaction:
    """One attempt of an atomic block."""

    __slots__ = ("read_version", "reads", "writes", "stats")

    def __init__(self, stats: "StmStats"):
        self.read_version = _read_clock()
        self.reads: dict[TVar, int] = {}
        self.writes: dict[TVar, Any] = {}
        self.stats = stats

    def read(self, var: TVar) -> Any:
        if var in self.writes:
            return self.writes[var]
        value, version, unstable = var._sample()
        if unstable or version > self.read_version:
            raise AbortException
        self.reads[var] = version
        return value

    def write(self, var: TVar, value: Any) -> None:
        self.writes[var] = value

    def commit(self) -> None:
        if not self.writes:
            return  # read-only transactions validated on the fly
        locked: list[TVar] = []
        try:
            for var in sorted(self.writes, key=lambda v: v._id):
                if not var._lock.acquire(timeout=0.5):  # monlint: disable=W004 — TVar spinlock, not a monitor
                    raise AbortException
                locked.append(var)
            for var, version in self.reads.items():
                if var._version != version:
                    raise AbortException
            commit_version = _advance_clock()
            for var, value in self.writes.items():
                var._value = value
                var._version = commit_version
        finally:
            for var in locked:
                var._lock.release()  # monlint: disable=W004 — TVar spinlock, not a monitor


class StmStats:
    """Commit/abort accounting (fed into the bench metrics)."""

    __slots__ = ("commits", "aborts", "_lock")

    def __init__(self):
        self.commits = 0
        self.aborts = 0
        self._lock = threading.Lock()

    def committed(self):
        with self._lock:
            self.commits += 1

    def aborted(self):
        with self._lock:
            self.aborts += 1


#: process-global statistics object; benchmarks may swap in their own.
stats = StmStats()


def current_transaction() -> Optional[Transaction]:
    return getattr(_txn_local, "txn", None)


def retry() -> None:
    """Abort the enclosing transaction; re-run after a read-set update.

    The TM analogue of ``waituntil`` — except, as the paper emphasizes,
    every waiter re-checks the whole condition on every update.
    """
    if current_transaction() is None:
        raise RuntimeError("retry() outside a transaction")
    raise RetryException


#: registry for the blocking-retry extension: TVar id → waiter events
_retry_registry_lock = threading.Lock()
_retry_waiters: dict[int, list[threading.Event]] = {}


def atomic(fn: Callable[[], T], max_backoff: float = 0.01,
           txn_stats: StmStats | None = None,
           blocking_retry: bool = False) -> T:
    """Run ``fn`` as a transaction, retrying on conflicts until it commits.

    ``blocking_retry`` selects how ``retry()`` waits for a read-set update:
    the default polls with exponential backoff (Deuce's regime — the paper's
    point about TM lacking conditional synchronization); ``True`` switches
    to the notification-based scheme of transaction-friendly condition
    variables (the [WLS14]-style extension): waiters park on events that
    commits of overlapping write sets fire.
    """
    if current_transaction() is not None:
        return fn()  # flat nesting
    record = txn_stats or stats
    backoff = 0.00005
    while True:
        txn = Transaction(record)
        _txn_local.txn = txn
        try:
            result = fn()
            txn.commit()
            record.committed()
            if txn.writes:
                _notify_retry_waiters(txn.writes)
            return result
        except AbortException:
            record.aborted()
            time.sleep(backoff)
            backoff = min(backoff * 2, max_backoff)
        except RetryException:
            record.aborted()
            _txn_local.txn = None
            if blocking_retry:
                _block_for_update(txn)
            else:
                _wait_for_update(txn, max_backoff)
        finally:
            _txn_local.txn = None


def _wait_for_update(txn: Transaction, max_backoff: float) -> None:
    """Poll the read set until some member's version moves."""
    snapshot = {var: version for var, version in txn.reads.items()}
    backoff = 0.00005
    while all(var._version == version for var, version in snapshot.items()):
        time.sleep(backoff)
        backoff = min(backoff * 2, max_backoff)


def _block_for_update(txn: Transaction) -> None:
    """Park until a commit touches the read set (no polling).

    Registration is checked against the versions sampled at abort time so an
    update that lands between abort and registration is never missed.
    """
    snapshot = {var: version for var, version in txn.reads.items()}
    if not snapshot:
        return  # empty read set: nothing can wake us; re-run immediately
    event = threading.Event()
    with _retry_registry_lock:
        for var in snapshot:
            _retry_waiters.setdefault(var._id, []).append(event)
        stale = any(var._version != version for var, version in snapshot.items())
    try:
        if not stale:
            event.wait()
    finally:
        with _retry_registry_lock:
            for var in snapshot:
                waiters = _retry_waiters.get(var._id)
                if waiters is not None:
                    try:
                        waiters.remove(event)
                    except ValueError:
                        pass
                    if not waiters:
                        del _retry_waiters[var._id]


def _notify_retry_waiters(writes: dict[TVar, Any]) -> None:
    """Wake every blocking-retry waiter registered on a written variable."""
    with _retry_registry_lock:
        events: set[threading.Event] = set()
        for var in writes:
            events.update(_retry_waiters.get(var._id, ()))
    for event in events:
        event.set()


def transactionally(fn: Callable[..., T]) -> Callable[..., T]:
    """Decorator form of :func:`atomic`."""

    def wrapper(*args, **kwargs):
        return atomic(lambda: fn(*args, **kwargs))

    wrapper.__name__ = getattr(fn, "__name__", "transaction")
    return wrapper


class TArray:
    """A fixed-size array of transactional slots."""

    __slots__ = ("_slots",)

    def __init__(self, size: int, fill: Any = None):
        self._slots = [TVar(fill) for _ in range(size)]

    def __len__(self):
        return len(self._slots)

    def __getitem__(self, index: int) -> Any:
        return self._slots[index].get()

    def __setitem__(self, index: int, value: Any) -> None:
        self._slots[index].set(value)

    def vars(self) -> Iterable[TVar]:
        return iter(self._slots)
