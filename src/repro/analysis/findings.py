"""Finding records and suppression handling for monlint.

A :class:`Finding` is one rule violation anchored to a source location.
Suppression mirrors the familiar linter idiom::

    self.items.pop()          # monlint: disable=W001
    # monlint: disable-file=W004   (anywhere in the file: whole-file)
    risky_line()              # monlint: disable        (all codes)

Line suppressions apply to findings anchored on the *same physical line* as
the comment; ``disable-file`` applies to the whole module.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered so thresholds can compare: HINT < WARNING < ERROR."""

    HINT = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str          #: "W001" … "W005" (or "E999" for unparsable input)
    severity: Severity
    message: str
    path: str
    line: int
    col: int = 0
    rule_name: str = ""

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_name,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*monlint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Za-z0-9_,\s]+))?"
)


@dataclass
class Suppressions:
    """Per-file suppression table parsed from ``# monlint:`` comments."""

    #: line number → codes suppressed there; ``None`` means "all codes"
    by_line: dict[int, set[str] | None] = field(default_factory=dict)
    #: file-wide suppressed codes (empty set in the *values* sense never
    #: occurs here; ``all_file`` covers the bare ``disable-file`` form)
    file_codes: set[str] = field(default_factory=set)
    all_file: bool = False

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        supp = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "monlint" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            directive, codes_text = match.groups()
            codes = {
                c.strip().upper()
                for c in (codes_text or "").split(",")
                if c.strip()
            }
            if directive == "disable-file":
                if codes:
                    supp.file_codes |= codes
                else:
                    supp.all_file = True
            else:
                if codes:
                    current = supp.by_line.get(lineno, set())
                    if current is not None:  # a bare `disable` (all) wins
                        supp.by_line[lineno] = current | codes
                else:
                    supp.by_line[lineno] = None
        return supp

    def is_suppressed(self, finding: Finding) -> bool:
        if self.all_file or finding.code in self.file_codes:
            return True
        if finding.line not in self.by_line:
            return False
        codes = self.by_line[finding.line]
        return codes is None or finding.code in codes


def apply_suppressions(
    findings: list[Finding], suppressions: Suppressions
) -> list[Finding]:
    return [f for f in findings if not suppressions.is_suppressed(f)]
