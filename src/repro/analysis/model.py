"""AST model of a module, specialised for monitor usage analysis.

The linter reasons about the same constructs the runtime does — this module
turns a parsed file into a small relational model of them:

* which classes are (transitively) :class:`~repro.core.monitor.Monitor`
  subclasses, and how each method participates in synchronization
  (synchronized / ``@unmonitored`` / static / private / dunder);
* every wait site — the preprocessor's ``waituntil(expr)`` statement form
  (see :mod:`repro.preprocess.transformer`), direct ``self.wait_until(expr)``
  calls, and ``ms.wait_until(expr)`` global waits;
* every ``self.attr`` write, with location;
* which attributes / locals hold monitor objects (for the cross-class
  lock-order graph of rule W004).

The model is purely syntactic; no project code is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.findings import Suppressions

#: Class names treated as monitor bases when they appear in a bases list.
MONITOR_BASE_NAMES = {"Monitor", "ActiveMonitor", "SimMonitor"}

#: Monitor attributes that never take the monitor lock — calls to these do
#: not create lock-order edges.
NONLOCKING_MONITOR_ATTRS = {
    "wait_until",
    "monitor_id",
    "metrics",
    "waiting_count",
    "dump_waiters",
    "signal_hint",
}


def _base_name(node: ast.expr) -> str | None:
    """``Monitor`` / ``core.Monitor`` → the trailing identifier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_name(node: ast.expr | None) -> str | None:
    """Resolve a parameter/attribute annotation to a bare class name
    (handles string annotations like ``"Account"``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip()
    return _base_name(node)


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _base_name(target)
        if name:
            names.add(name)
    return names


@dataclass(frozen=True)
class AttrWrite:
    """``<obj>.<attr> = ...`` (or augmented / annotated assignment)."""

    obj: str       #: "self", a local variable name, or a dotted base
    attr: str
    lineno: int
    col: int


@dataclass
class WaitSite:
    """One predicate-bearing wait call."""

    form: str            #: "waituntil" | "wait_until" | "multi_wait"
    expr: ast.expr       #: the predicate expression (first positional arg)
    call: ast.Call
    lineno: int
    col: int


@dataclass
class MethodModel:
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    kind: str            #: synchronized | unmonitored | static | private | dunder
    self_name: Optional[str]
    waits: list[WaitSite] = field(default_factory=list)
    self_writes: list[AttrWrite] = field(default_factory=list)
    global_names: set[str] = field(default_factory=set)


@dataclass
class MonitorClassModel:
    name: str
    node: ast.ClassDef
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: non-underscore attributes assigned in __init__ (the shared state)
    shared_attrs: set[str] = field(default_factory=set)
    #: attr name → monitor class name, for attributes holding monitors
    monitor_attrs: dict[str, str] = field(default_factory=dict)
    #: bare names of the class's declared bases — the liveness pass merges
    #: write sets across an inheritance family (a subclass's sections can
    #: discharge a wait declared in its base, and vice versa)
    base_names: set[str] = field(default_factory=set)

    @property
    def sync_method_names(self) -> set[str]:
        return {m.name for m in self.methods.values() if m.kind == "synchronized"}


@dataclass
class ModuleModel:
    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    monitor_classes: list[MonitorClassModel] = field(default_factory=list)
    #: monitor class names defined in *this* module
    local_monitor_names: set[str] = field(default_factory=set)
    #: local + project-wide monitor class names (set by the linter)
    known_monitor_names: set[str] = field(default_factory=set)
    #: module-level bound names (imports, defs, classes, assignments) —
    #: anything here referenced from a predicate is not a frozen local
    module_names: set[str] = field(default_factory=set)

    def iter_methods(self) -> Iterator[tuple[MonitorClassModel, MethodModel]]:
        for cls in self.monitor_classes:
            for method in cls.methods.values():
                yield cls, method


# --------------------------------------------------------------------------
# extraction helpers (shared by model building and by individual rules)
# --------------------------------------------------------------------------

def collect_wait_sites(func: ast.AST, self_name: str | None) -> list[WaitSite]:
    """All wait calls lexically inside ``func`` (nested lambdas included)."""
    sites: list[WaitSite] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "waituntil":
            form = "waituntil"
        elif isinstance(fn, ast.Attribute) and fn.attr == "wait_until":
            base = fn.value
            if (
                self_name is not None
                and isinstance(base, ast.Name)
                and base.id == self_name
            ):
                form = "wait_until"
            else:
                form = "multi_wait"
        else:
            continue
        sites.append(
            WaitSite(
                form=form,
                expr=node.args[0],
                call=node,
                lineno=node.lineno,
                col=node.col_offset,
            )
        )
    return sites


def collect_attr_writes(func: ast.AST) -> list[AttrWrite]:
    """Attribute assignments (``x.attr = v``, ``x.attr += v``) in ``func``."""
    writes: list[AttrWrite] = []

    def record(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                record(elt)
            return
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                obj = base.id
            elif isinstance(base, ast.Attribute):
                obj = ast.unparse(base)
            else:
                return
            writes.append(
                AttrWrite(obj, target.attr, target.lineno, target.col_offset)
            )

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record(node.target)
    return writes


def monitor_locals(func: ast.AST, known_monitor_names: set[str]) -> dict[str, str]:
    """Local names bound to freshly constructed monitor objects:
    ``q = BoundedQueue(...)`` → ``{"q": "BoundedQueue"}``."""
    out: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            name = _base_name(value.func)
            if name in known_monitor_names:
                out[target.id] = name
    return out


def _method_kind(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    decorators = _decorator_names(node)
    if {"staticmethod", "classmethod", "property"} & decorators:
        return "static"
    if "unmonitored" in decorators:
        return "unmonitored"
    if node.name.startswith("__") and node.name.endswith("__"):
        return "dunder"
    if node.name.startswith("_"):
        return "private"
    return "synchronized"


def _build_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> MethodModel:
    self_name: str | None = None
    if node.args.args and _method_kind(node) != "static":
        self_name = node.args.args[0].arg
    method = MethodModel(
        name=node.name,
        node=node,
        kind=_method_kind(node),
        self_name=self_name,
    )
    method.waits = collect_wait_sites(node, self_name)
    if self_name is not None:
        method.self_writes = [
            w for w in collect_attr_writes(node) if w.obj == self_name
        ]
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            method.global_names |= set(sub.names)
    return method


def _build_monitor_class(
    node: ast.ClassDef, known_monitor_names: set[str]
) -> MonitorClassModel:
    cls = MonitorClassModel(name=node.name, node=node)
    cls.base_names = {
        name for name in (_base_name(b) for b in node.bases) if name
    }
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[item.name] = _build_method(item)

    init = cls.methods.get("__init__")
    if init is not None and init.self_name is not None:
        param_types = {
            arg.arg: _annotation_name(arg.annotation)
            for arg in init.node.args.args[1:]
        }
        for stmt in ast.walk(init.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                for elt in elts:
                    if not (
                        isinstance(elt, ast.Attribute)
                        and isinstance(elt.value, ast.Name)
                        and elt.value.id == init.self_name
                    ):
                        continue
                    if not elt.attr.startswith("_"):
                        cls.shared_attrs.add(elt.attr)
                    mon_cls = None
                    if isinstance(value, ast.Call):
                        name = _base_name(value.func)
                        if name in known_monitor_names:
                            mon_cls = name
                    elif isinstance(value, ast.Name):
                        ann = param_types.get(value.id)
                        if ann in known_monitor_names:
                            mon_cls = ann
                    if mon_cls is not None:
                        cls.monitor_attrs[elt.attr] = mon_cls
    return cls


def discover_monitor_names(tree: ast.Module, seed: set[str]) -> set[str]:
    """Transitive closure of classes extending a known monitor base."""
    known = set(seed) | MONITOR_BASE_NAMES
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name in known:
                continue
            for base in node.bases:
                if _base_name(base) in known:
                    known.add(node.name)
                    changed = True
                    break
    return known


def build_module_model(
    source: str, path: str, project_monitor_names: set[str] | None = None
) -> ModuleModel:
    """Parse ``source`` and build the analysis model (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    known = discover_monitor_names(tree, project_monitor_names or set())
    model = ModuleModel(
        path=path,
        source=source,
        tree=tree,
        suppressions=Suppressions.parse(source),
        known_monitor_names=known,
    )
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name in known:
            model.local_monitor_names.add(node.name)
            model.monitor_classes.append(_build_monitor_class(node, known))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            model.module_names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    model.module_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            model.module_names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                model.module_names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                model.module_names.add(alias.asname or alias.name)
    return model
