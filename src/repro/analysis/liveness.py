"""Signal-obligation liveness analysis — rules W010, W011 and W012.

Every ``wait_until(P)`` / ``waituntil(P)`` in a monitor class creates a
*signal obligation*: some reachable synchronized section must be able to
make ``P`` true, or the waiter can stall forever.  The paper's relay rule
(Prop. 2) only promises that a waiter whose predicate *became* true is
woken — nothing promises that any section can flip it.  Following the
obligation/credit model of *Ghost Signals* (Reinhard & Jacobs) and the
write-site→predicate matching of Ferles et al. (both in PAPERS.md), this
pass discharges each obligation statically:

* the wait's **read set** comes from the same extraction the runtime uses
  (``S.attr`` leaves, ``reads=`` annotations on shared expressions, and
  the preprocessor's lifted ``self.X`` roots — see
  :func:`repro.preprocess.transformer._collect_self_reads`);
* the **write set** of every reachable section is collected by an AST walk
  over ``__setattr__``-visible rebinds, in-place mutations the
  preprocessor would tag with ``_note_write`` (container mutators,
  subscript/nested-attribute stores), delegated-task closures, and
  cross-class writes through resolved monitor-typed objects — merged over
  the class's inheritance family.  ``__init__`` is excluded: it runs
  before any thread can wait, so an init-only write discharges nothing.

The three rules:

* **W010 unsatisfiable-wait** (error) — no reachable section, in any class
  of the family or any known cross-class writer, writes *any* variable the
  predicate reads.  The wait can only ever stall.  A predicate whose read
  set is *opaque* because a ``S(fn, name)`` shared expression carries no
  ``reads=`` annotation is reported at hint level instead of being
  silently skipped — annotating it enables the liveness check (and the
  dependency-filtered relay).
* **W011 wrong-direction-monotonicity** (warning) — a threshold-shaped
  predicate (``shared >= const`` et al., the same shapes rule W005 tags)
  whose variable *is* written, but only by updates provably monotone away
  from the threshold (constant ``+=`` / ``-=`` idioms).  The threshold can
  never be crossed.
* **W012 obligation-leak** (warning) — exactly one write site can satisfy
  the wait, and it sits on an exception-skippable path: inside a ``try``
  whose handler swallows the exception.  With ``poison_on_exception`` off
  the section exits cleanly having written nothing, and the obligation is
  silently dropped.

The runtime twin of this pass is
:class:`repro.resilience.obligations.ObligationTracker`, which watches the
same obligations live via per-variable write generations.

All three rules collect per module in ``check`` and emit in ``finalize``,
once the whole project is registered — obligations are whole-program
properties, not per-file ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.model import (
    MONITOR_BASE_NAMES,
    MethodModel,
    ModuleModel,
    MonitorClassModel,
    WaitSite,
    _annotation_name,
    _base_name,
    collect_attr_writes,
    monitor_locals,
)
from repro.analysis.rules import (
    ALL_RULES,
    ProjectContext,
    Rule,
    _CONTAINER_MUTATORS,
    _const_str_names,
    _TRY_TYPES,
)

__all__ = [
    "LivenessModel",
    "ObligationSite",
    "UnsatisfiableWait",
    "WriteSite",
    "WrongDirectionMonotonicity",
    "ObligationLeak",
    "liveness_model",
]


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WriteSite:
    """One statically visible write to a shared variable."""

    cls: str       #: monitor class whose variable is written
    var: str
    path: str
    lineno: int
    where: str     #: "Class.method" or "function" containing the write
    direction: str  #: "up" | "down" | "other" (monotone classification)
    guarded: bool  #: lexically inside a try whose handler swallows

    def describe(self) -> str:
        return f"{self.where} ({self.path}:{self.lineno})"


@dataclass
class ObligationSite:
    """One checked wait site: an obligation some section must discharge."""

    path: str
    lineno: int
    col: int
    cls: str
    method: str
    reads: frozenset
    source: str                            #: predicate source (trimmed)
    #: (variable, needed direction) for single-threshold predicates
    threshold: Optional[tuple] = None


@dataclass
class LivenessModel:
    """Whole-program obligations + write sets, built incrementally."""

    obligations: list = field(default_factory=list)
    #: class name → variable → write sites
    writes: dict = field(default_factory=dict)
    #: class name → declared base names (for family merging)
    bases: dict = field(default_factory=dict)
    #: classes that opt into poisoning (W012 is moot for them)
    poisoned: set = field(default_factory=set)
    #: ``S(fn, name)`` calls with no ``reads=`` annotation
    opaque_exprs: list = field(default_factory=list)
    _seen_paths: set = field(default_factory=set)
    _site_keys: set = field(default_factory=set)

    # -- write registration --------------------------------------------------
    def add_write(self, site: WriteSite) -> None:
        key = (site.cls, site.var, site.path, site.lineno)
        if key in self._site_keys:
            return
        self._site_keys.add(key)
        self.writes.setdefault(site.cls, {}).setdefault(site.var, []).append(site)

    # -- family merging ------------------------------------------------------
    def family_writes(self) -> dict:
        """Class name → variable → write sites, merged over each
        inheritance family (connected components of the project's
        subclass edges; framework bases do not connect families)."""
        parent: dict = {}

        def find(x):
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for cls, bases in self.bases.items():
            for base in bases:
                if base in self.bases and base not in MONITOR_BASE_NAMES:
                    union(cls, base)
        merged: dict = {}
        by_root: dict = {}
        for cls in self.bases:
            by_root.setdefault(find(cls), []).append(cls)
        # also classes that only appear as write targets (cross-class)
        for cls in self.writes:
            if cls not in self.bases:
                by_root.setdefault(find(cls), []).append(cls)
        for members in by_root.values():
            fam: dict = {}
            for member in members:
                for var, sites in self.writes.get(member, {}).items():
                    fam.setdefault(var, []).extend(sites)
            for member in members:
                merged[member] = fam
        return merged


def liveness_model(ctx: ProjectContext) -> LivenessModel:
    """The per-run liveness model, stored on the project context so all
    three rules (and tests) share one collection pass."""
    model = getattr(ctx, "_liveness_model", None)
    if model is None:
        model = LivenessModel()
        ctx._liveness_model = model
    return model


# ---------------------------------------------------------------------------
# read-set extraction
# ---------------------------------------------------------------------------

def _peel_read_root(node: ast.expr, bases: set) -> Optional[str]:
    """``self.a.b[k]`` / ``S.a[i]`` → ``"a"``; None when not rooted at a
    predicate base name."""
    attr = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and (node.id in bases or node.id == "S"):
        return attr
    return None


def _numeric_const(node: ast.expr):
    """Value of a numeric literal (allowing unary minus), else None."""
    neg = False
    while isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        neg = True
        node = node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return -node.value if neg else node.value
    return None


class _ReadScan:
    """Recursive read-set extractor for one wait predicate.

    Mirrors the runtime's semantics: exact read sets where the structure is
    known, *opaque* (reads-everything) when a call reached through the
    monitor or a bare escape makes the reads unknowable.  Opaque sites are
    skipped by W010/W011 — except unannotated ``S(fn, name)`` expressions,
    which are surfaced so the author can annotate them.
    """

    def __init__(self, bases: set):
        self.bases = set(bases)
        self.reads: set = set()
        self.opaque = False
        self.unannotated: list = []   # S(...) calls missing reads=

    def scan(self, node: ast.expr, bases: Optional[set] = None) -> None:
        if bases is None:
            bases = self.bases
        if isinstance(node, ast.Attribute):
            root = _peel_read_root(node, bases)
            if root is not None:
                self.reads.add(root)
                return
            self.scan(node.value, bases)
            return
        if isinstance(node, ast.Subscript):
            root = _peel_read_root(node, bases)
            if root is not None:
                self.reads.add(root)
            else:
                self.scan(node.value, bases)
            self.scan(node.slice, bases)
            return
        if isinstance(node, ast.Lambda):
            inner = set(bases)
            if node.args.args:
                inner.add(node.args.args[0].arg)
            self.scan(node.body, inner)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node, bases)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.scan(child, bases)

    def _scan_call(self, node: ast.Call, bases: set) -> None:
        fn = node.func
        if _base_name(fn) == "S" and isinstance(fn, ast.Name):
            declared: set = set()
            for kw in node.keywords:
                if kw.arg == "reads":
                    declared |= _const_str_names(kw.value)
            if len(node.args) >= 3:
                declared |= _const_str_names(node.args[2])
            if declared:
                self.reads |= declared
            else:
                name = "<shared expr>"
                if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                    name = str(node.args[1].value)
                self.unannotated.append((node, name))
                self.opaque = True
            return  # the wrapped callable's body is covered by reads=
        if isinstance(fn, ast.Attribute):
            recv = fn.value
            if isinstance(recv, ast.Name) and recv.id in bases:
                # method call on the monitor: its body may read anything
                self.opaque = True
            else:
                root = _peel_read_root(fn, bases)
                if root is not None:
                    self.reads.add(root)  # e.g. self.items.count(x)
                else:
                    self.scan(recv, bases)
        else:
            # plain function call: if the monitor escapes as a bare
            # argument the callee may read anything (mirrors
            # _collect_self_reads in the preprocessor)
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in bases:
                    self.opaque = True
        for arg in node.args:
            self.scan(arg, bases)
        for kw in node.keywords:
            self.scan(kw.value, bases)


def predicate_reads(
    site: WaitSite, method: MethodModel
) -> tuple[frozenset, bool, list]:
    """(read set, opaque?, unannotated S(...) calls) of one wait site."""
    bases = {method.self_name} if method.self_name else set()
    expr = site.expr
    # a bare callable reference (`self.wait_until(self._check)` /
    # `waituntil(fn)`) evaluates through code this pass cannot see
    if isinstance(expr, ast.Name):
        return frozenset(), True, []
    if isinstance(expr, ast.Attribute):
        return frozenset(), True, []
    scan = _ReadScan(bases)
    scan.scan(expr)
    return frozenset(scan.reads), scan.opaque, scan.unannotated


def _threshold_shape(site: WaitSite, method: MethodModel) -> Optional[tuple]:
    """(variable, needed direction) when the whole predicate is one
    ``shared op numeric-constant`` comparison; None otherwise.

    Only strict/ordered comparisons qualify (W005's threshold shapes);
    equality can be approached from either side, so monotonicity proves
    nothing about it.  Var-vs-var comparisons are skipped too — both sides
    move.
    """
    node = site.expr
    bases = {method.self_name} if method.self_name else set()
    if isinstance(node, ast.Lambda):
        if node.args.args:
            bases = bases | {node.args.args[0].arg}
        node = node.body
    if not isinstance(node, ast.Compare) or len(node.ops) != 1:
        return None
    op = node.ops[0]
    if not isinstance(op, (ast.Gt, ast.GtE, ast.Lt, ast.LtE)):
        return None
    left, right = node.left, node.comparators[0]

    def simple_shared(n: ast.expr) -> Optional[str]:
        if (
            isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and (n.value.id in bases or n.value.id == "S")
        ):
            return n.attr
        return None

    var, const, flipped = simple_shared(left), _numeric_const(right), False
    if var is None:
        var, const, flipped = simple_shared(right), _numeric_const(left), True
    if var is None or const is None:
        return None
    needs_up = isinstance(op, (ast.Gt, ast.GtE))
    if flipped:
        needs_up = not needs_up  # const > var  ≡  var < const
    return (var, "up" if needs_up else "down")


# ---------------------------------------------------------------------------
# write-set collection
# ---------------------------------------------------------------------------

def _handler_swallows(node) -> bool:
    """True when some except handler of ``node`` contains no ``raise`` —
    an exception entering it is swallowed and control continues."""
    for handler in node.handlers:
        if not any(isinstance(n, ast.Raise) for n in ast.walk(handler)):
            return True
    return False


def _stmts_with_try_context(func: ast.AST) -> Iterator[tuple]:
    """Yield ``(stmt, in_swallowing_try)`` for every statement in ``func``,
    recursing through compound statements (including nested function
    definitions — delegated-task closures write shared state too)."""

    def walk(stmts, swallowed):
        for stmt in stmts:
            if isinstance(stmt, _TRY_TYPES):
                inner = swallowed or _handler_swallows(stmt)
                yield from walk(stmt.body, inner)
                yield from walk(stmt.orelse, inner)
                for handler in stmt.handlers:
                    yield from walk(handler.body, swallowed)
                yield from walk(stmt.finalbody, swallowed)
                continue
            yield stmt, swallowed
            for fname in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, fname, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    yield from walk(sub, swallowed)
            for case in getattr(stmt, "cases", []) or []:
                yield from walk(case.body, swallowed)

    body = getattr(func, "body", [])
    yield from walk(body, False)


def _self_write_direction(target: ast.expr, stmt: ast.stmt, self_name: str) -> str:
    """Monotone classification of a rebind of ``self.<attr>``.

    ``self.x += c`` / ``self.x = self.x + c`` with a numeric literal ``c``
    is "up" (or "down"); anything else — including plain ``self.x = const``,
    whose effect depends on the threshold — is "other".
    """
    if isinstance(stmt, ast.AugAssign):
        if not isinstance(stmt.op, (ast.Add, ast.Sub)):
            return "other"
        const = _numeric_const(stmt.value)
        if const is None:
            return "other"
        if isinstance(stmt.op, ast.Sub):
            const = -const
        return "up" if const > 0 else "down" if const < 0 else "other"
    if isinstance(stmt, ast.Assign) and isinstance(target, ast.Attribute):
        value = stmt.value
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.Add, ast.Sub)):
            same = (
                isinstance(value.left, ast.Attribute)
                and isinstance(value.left.value, ast.Name)
                and value.left.value.id == self_name
                and value.left.attr == target.attr
            )
            const = _numeric_const(value.right)
            if same and const is not None:
                if isinstance(value.op, ast.Sub):
                    const = -const
                return "up" if const > 0 else "down" if const < 0 else "other"
    return "other"


def _peel_obj_root(node: ast.expr) -> Optional[tuple]:
    """``q.items[k]`` → ``("q", "items")``; ``self.left.count`` →
    ``("self.left", "count")``; None when the chain has no usable root."""
    parts: list = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or not parts:
        return None
    var = parts[0]              # attr adjacent to the final access
    chain = [node.id] + parts[:0:-1]
    return ".".join(chain), var


def _flat_targets(target: ast.expr):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flat_targets(elt)
    else:
        yield target


def _collect_method_writes(
    model: LivenessModel, module: ModuleModel, cls: MonitorClassModel,
    method: MethodModel,
) -> None:
    """Write sites of one method's body (rebinds, in-place mutations,
    explicit ``_note_write`` declarations), with try-context."""
    self_name = method.self_name
    where = f"{cls.name}.{method.name}"

    def add(var: str, lineno: int, direction: str, guarded: bool) -> None:
        model.add_write(WriteSite(
            cls=cls.name, var=var, path=module.path, lineno=lineno,
            where=where, direction=direction, guarded=guarded,
        ))

    for stmt, swallowed in _stmts_with_try_context(method.node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in _flat_targets(target):
                    _record_self_store(leaf, stmt, swallowed, self_name, add)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                continue
            _record_self_store(stmt.target, stmt, swallowed, self_name, add)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                _record_self_store(target, stmt, swallowed, self_name, add)
        # expression-level writes anywhere in the statement: container
        # mutators and explicit _note_write declarations
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr in _CONTAINER_MUTATORS:
                peeled = _peel_obj_root(node.func.value)
                if peeled is not None:
                    obj, var = peeled
                    if obj == self_name or obj.startswith(self_name + "."):
                        root = obj.split(".")[1] if "." in obj else var
                        add(root, node.lineno, "other", swallowed)
            elif (
                node.func.attr == "_note_write"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self_name
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                add(node.args[0].value, node.lineno, "other", swallowed)


def _record_self_store(
    target: ast.expr, stmt: ast.stmt, swallowed: bool,
    self_name: str, add,
) -> None:
    """Record one store/delete target when rooted at ``self``."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == self_name
    ):
        add(target.attr, target.lineno,
            _self_write_direction(target, stmt, self_name), swallowed)
        return
    # nested attribute / subscript store: self.grid[i] = v, self.a.b = v
    parts: list = []
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name and parts:
        add(parts[-1], target.lineno, "other", swallowed)


def _external_resolve(
    module: ModuleModel, ctx: ProjectContext,
    func: ast.AST, cls: Optional[MonitorClassModel], self_name: Optional[str],
) -> dict:
    """Names (possibly dotted) known to hold monitor objects of a known
    class, inside one function — the cross-class write resolution map."""
    resolve: dict = {}
    if cls is not None and self_name:
        for attr, mon_cls in cls.monitor_attrs.items():
            resolve[f"{self_name}.{attr}"] = mon_cls
    args = getattr(func, "args", None)
    if args is not None:
        for arg in args.args:
            ann = _annotation_name(arg.annotation)
            if ann in module.known_monitor_names:
                resolve[arg.arg] = ann
    resolve.update(monitor_locals(func, module.known_monitor_names))
    return resolve


def _collect_external_writes(
    model: LivenessModel, module: ModuleModel, ctx: ProjectContext,
    func: ast.AST, where: str,
    cls: Optional[MonitorClassModel] = None,
    self_name: Optional[str] = None,
) -> None:
    """Writes through names resolved to *other* monitor objects — a
    producer function poking ``q.count``, a coordinator mutating a fork
    monitor's state, a section writing ``self.left.count``."""
    resolve = _external_resolve(module, ctx, func, cls, self_name)
    if not resolve:
        return
    for write in collect_attr_writes(func):
        if write.obj == self_name:
            continue  # own-class write, handled (with direction) elsewhere
        target_cls = resolve.get(write.obj)
        if target_cls is not None and not write.attr.startswith("_"):
            model.add_write(WriteSite(
                cls=target_cls, var=write.attr, path=module.path,
                lineno=write.lineno, where=where,
                direction="other", guarded=False,
            ))
    for node in ast.walk(func):
        store_root: Optional[tuple] = None
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ):
            store_root = _peel_obj_root(node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CONTAINER_MUTATORS
        ):
            store_root = _peel_obj_root(node.func.value)
        if store_root is None:
            continue
        obj, var = store_root
        if obj == self_name:
            continue
        target_cls = resolve.get(obj)
        if target_cls is not None and not var.startswith("_"):
            model.add_write(WriteSite(
                cls=target_cls, var=var, path=module.path,
                lineno=node.lineno, where=where,
                direction="other", guarded=False,
            ))


def _class_enables_poisoning(node: ast.ClassDef) -> bool:
    """True when the class visibly opts into exception poisoning (a
    ``poison_on_exception=True``-shaped keyword anywhere in its body)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.keyword) and sub.arg == "poison_on_exception":
            if not (isinstance(sub.value, ast.Constant) and sub.value.value is False):
                return True
    return False


# ---------------------------------------------------------------------------
# collection driver
# ---------------------------------------------------------------------------

def collect_module(module: ModuleModel, ctx: ProjectContext) -> LivenessModel:
    """Collect obligations + write sites from one module (idempotent)."""
    model = liveness_model(ctx)
    if module.path in model._seen_paths:
        return model
    model._seen_paths.add(module.path)

    for cls in module.monitor_classes:
        model.bases.setdefault(cls.name, set()).update(cls.base_names)
        if _class_enables_poisoning(cls.node):
            model.poisoned.add(cls.name)
        for method in cls.methods.values():
            if method.self_name is None:
                continue
            if method.name != "__init__":
                # __init__ runs before any waiter exists — its writes
                # discharge nothing
                _collect_method_writes(model, module, cls, method)
            _collect_external_writes(
                model, module, ctx, method.node,
                where=f"{cls.name}.{method.name}",
                cls=cls, self_name=method.self_name,
            )
            for site in method.waits:
                if site.form == "multi_wait":
                    continue  # multi-object waits carry other monitors' state
                _collect_obligation(model, module, cls, method, site)

    # writes from module-level functions and non-monitor classes
    monitor_nodes = {cls.node for cls in module.monitor_classes}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_external_writes(model, module, ctx, node, where=node.name)
        elif isinstance(node, ast.ClassDef) and node not in monitor_nodes:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _collect_external_writes(
                        model, module, ctx, item,
                        where=f"{node.name}.{item.name}",
                    )
    return model


def _collect_obligation(
    model: LivenessModel, module: ModuleModel, cls: MonitorClassModel,
    method: MethodModel, site: WaitSite,
) -> None:
    reads, opaque, unannotated = predicate_reads(site, method)
    for call_node, name in unannotated:
        model.opaque_exprs.append((module.path, call_node, name))
    if opaque or not reads:
        return
    try:
        source = ast.unparse(site.expr)
    except Exception:  # pragma: no cover — unparse of valid AST
        source = "<predicate>"
    if len(source) > 60:
        source = source[:57] + "..."
    model.obligations.append(ObligationSite(
        path=module.path, lineno=site.lineno, col=site.col,
        cls=cls.name, method=method.name, reads=reads, source=source,
        threshold=_threshold_shape(site, method),
    ))


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------

class _LivenessRule(Rule):
    """Shared collect-then-finalize skeleton for W010/W011/W012."""

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        collect_module(module, ctx)
        return iter(())


class UnsatisfiableWait(_LivenessRule):
    code = "W010"
    name = "unsatisfiable-wait"
    severity = Severity.ERROR

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        model = liveness_model(ctx)
        fam = model.family_writes()
        for ob in model.obligations:
            written = fam.get(ob.cls, {})
            if any(var in written for var in ob.reads):
                continue
            reads = ", ".join(sorted(ob.reads))
            yield self._finding(
                ob.path, ob.lineno,
                f"wait can never be satisfied: {ob.cls}.{ob.method}() waits "
                f"on `{ob.source}` which reads {{{reads}}}, but no "
                "reachable synchronized section in this class, its "
                "inheritance family, or any known cross-class writer ever "
                "writes any of those variables (__init__ runs before "
                "waiters exist and does not count) — the signal obligation "
                "is undischargeable and every waiter stalls "
                "(docs/analysis.md, liveness verification)",
                col=ob.col,
            )
        for path, node, name in model.opaque_exprs:
            yield Finding(
                code=self.code,
                severity=Severity.HINT,
                message=(
                    f"shared expression {name!r} is opaque — it has no "
                    "reads= annotation, so its read set is unknown and the "
                    "liveness check (and the dependency-filtered relay) "
                    "must assume it reads everything; annotate "
                    "reads=('var', ...) to enable liveness checking"
                ),
                path=path,
                line=node.lineno,
                col=node.col_offset,
                rule_name=self.name,
            )


class WrongDirectionMonotonicity(_LivenessRule):
    code = "W011"
    name = "wrong-direction-monotonicity"
    severity = Severity.WARNING

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        model = liveness_model(ctx)
        fam = model.family_writes()
        for ob in model.obligations:
            if ob.threshold is None:
                continue
            var, needed = ob.threshold
            sites = fam.get(ob.cls, {}).get(var, [])
            if not sites:
                continue  # W010's territory
            wrong = "down" if needed == "up" else "up"
            if not all(site.direction == wrong for site in sites):
                continue
            shown = "; ".join(
                site.describe() for site in sites[:3]
            ) + ("; …" if len(sites) > 3 else "")
            arrow = "increase" if needed == "up" else "decrease"
            yield self._finding(
                ob.path, ob.lineno,
                f"wrong-direction monotonicity: {ob.cls}.{ob.method}() "
                f"waits on `{ob.source}`, which needs {var!r} to {arrow}, "
                f"but every write site moves it monotonically the other "
                f"way ({shown}) — the threshold can never be crossed and "
                "the wait cannot terminate",
                col=ob.col,
            )


class ObligationLeak(_LivenessRule):
    code = "W012"
    name = "obligation-leak"
    severity = Severity.WARNING

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        model = liveness_model(ctx)
        fam = model.family_writes()
        for ob in model.obligations:
            if ob.cls in model.poisoned:
                continue  # an exception poisons the monitor; waiters wake
            sites = [
                site
                for var in sorted(ob.reads)
                for site in fam.get(ob.cls, {}).get(var, [])
            ]
            if len(sites) != 1 or not sites[0].guarded:
                continue
            site = sites[0]
            yield self._finding(
                ob.path, ob.lineno,
                f"obligation leaks on early exit: the only write that can "
                f"satisfy `{ob.source}` in {ob.cls}.{ob.method}() is "
                f"{site.var!r} at {site.describe()}, inside a try whose "
                "except handler swallows the exception — with "
                "poison_on_exception off, an exception skips the write, "
                "the section exits cleanly, and the waiter parks forever; "
                "re-raise, write before the risky call, or enable "
                "Config.poison_on_exception",
                col=ob.col,
            )


LIVENESS_RULES = [UnsatisfiableWait, WrongDirectionMonotonicity, ObligationLeak]

for _rule in LIVENESS_RULES:
    if _rule not in ALL_RULES:
        ALL_RULES.append(_rule)
