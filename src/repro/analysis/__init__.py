"""``repro.analysis`` — monlint: static + dynamic monitor-usage checking.

Static side (pure AST, no project code executed)::

    from repro.analysis import lint_paths, lint_source
    findings = lint_paths(["src", "examples"])

or from a shell: ``python -m repro.analysis src examples`` / ``monlint``.

Dynamic side (opt-in runtime assertions, see :mod:`repro.analysis.runtime`)::

    from repro.analysis import runtime as monlint_runtime
    monlint_runtime.enable_checks()

This ``__init__`` stays import-light on purpose: ``repro.core.monitor``
imports :mod:`repro.analysis.runtime` for its (disabled-by-default) hooks,
so the linter machinery is loaded lazily via PEP 562.
"""

from __future__ import annotations

from repro.analysis import runtime  # noqa: F401  (hot-path hooks)

__all__ = [
    "Finding",
    "Severity",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "runtime",
]

_LAZY = {
    "Finding": ("repro.analysis.findings", "Finding"),
    "Severity": ("repro.analysis.findings", "Severity"),
    "lint_paths": ("repro.analysis.linter", "lint_paths"),
    "lint_source": ("repro.analysis.linter", "lint_source"),
    "lint_sources": ("repro.analysis.linter", "lint_sources"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
