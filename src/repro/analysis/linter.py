"""monlint orchestration: files → models → rules → findings.

Linting is a two-pass process so the cross-class lock-order graph (rule
W004) and the whole-program liveness pass (W010–W012) can span modules:
pass 1 parses every file and collects the names of all monitor subclasses
in the project; pass 2 builds full models with that global knowledge, runs
every rule per module, then the graph-level finalizers once.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import aot  # noqa: F401 — registers W013
from repro.analysis import liveness  # noqa: F401 — registers W010–W012
from repro.analysis.findings import Finding, Severity, apply_suppressions
from repro.analysis.model import (
    ModuleModel,
    build_module_model,
    discover_monitor_names,
)
from repro.analysis.rules import ProjectContext, make_rules


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(out)


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        code="E999",
        severity=Severity.ERROR,
        message=f"cannot parse file: {exc.msg}",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule_name="syntax-error",
    )


def lint_sources(
    sources: Sequence[tuple[str, str]],
    select: set[str] | None = None,
    disable: set[str] | None = None,
) -> list[Finding]:
    """Lint ``(path, source)`` pairs as one project.

    Returns findings sorted by (path, line, code), with per-file
    ``# monlint: disable`` suppressions already applied.
    """
    rules = make_rules(select=select, disable=disable)
    ctx = ProjectContext()
    findings: list[Finding] = []

    # pass 1: project-wide monitor class names (cheap parse reused below)
    trees: dict[str, ast.Module] = {}
    project_names: set[str] = set()
    for path, source in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(_syntax_finding(path, exc))
            continue
        trees[path] = tree
        project_names |= discover_monitor_names(tree, set())

    # pass 2: full models + rules
    models: list[ModuleModel] = []
    for path, source in sources:
        if path not in trees:
            continue  # unparsable, already reported
        model = build_module_model(source, path, project_names)
        ctx.register(model)
        models.append(model)

    suppressions = {m.path: m.suppressions for m in models}
    for model in models:
        module_findings: list[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check(model, ctx))
        findings.extend(apply_suppressions(module_findings, model.suppressions))

    for rule in rules:
        for finding in rule.finalize(ctx):
            supp = suppressions.get(finding.path)
            if supp is not None and supp.is_suppressed(finding):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    select: set[str] | None = None,
    disable: set[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory module."""
    return lint_sources([(path, source)], select=select, disable=disable)


def lint_paths(
    paths: Iterable[str | Path],
    select: set[str] | None = None,
    disable: set[str] | None = None,
) -> list[Finding]:
    """Lint files and/or directory trees as one project."""
    sources: list[tuple[str, str]] = []
    for file in iter_python_files(paths):
        sources.append((str(file), file.read_text(encoding="utf-8")))
    return lint_sources(sources, select=select, disable=disable)
