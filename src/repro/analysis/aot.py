"""Ahead-of-time signal placement: the static write-site/predicate matcher.

The dependency-tracked relay (PR 5) made the untagged relay search
O(affected); this module removes the remaining per-exit search work on hot
paths entirely, the way Ferles et al. lower implicit monitors into explicit
targeted signals (*Symbolic Reasoning for Automatic Signal Placement*,
PLDI'18): with the read/write-set information the preprocessor and the
relay filter already compute, a ``@monitor_compile`` class can be analyzed
**at decoration time** — each method's transitively-closed write set is
matched against the read sets of every wait predicate the class can park,
and methods whose writes are fully statically visible get a
:class:`MethodSignalPlan`.  A planned method's section exit runs
``ConditionManager.direct_signal(plan)``: no tag-index probe, no relay
bucket-flush bookkeeping — just bump the written variables' generations,
mark the (already-bucketed) readers eligible, and evaluate exactly those.

The same matching engine backs monlint's W013 so static analysis and the
runtime agree about what is direct-signalable: W013 reports waits that are
AOT-matchable *except* for an opaque read set — one ``reads=`` annotation
away from skipping the relay.

Everything here is conservative in the same direction as the relay filter:

* a method whose source is unavailable, that lets bare ``self`` escape
  (``setattr(self, ...)``, ``f(self)``), or that calls a self-method this
  pass cannot resolve is **opaque** — no plan, generic relay exit;
* a plan's write set is an upper bound; the runtime still guards each
  direct exit with ``dirty <= plan.write_set`` and falls back to the full
  relay when the observed writes escape the plan (monkeypatching, dynamic
  attribute names), so relay invariance (Prop. 2) never rests on the
  static result alone (safety argument in docs/performance.md).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.liveness import predicate_reads
from repro.analysis.model import MethodModel, ModuleModel, MonitorClassModel, _base_name
from repro.analysis.rules import ALL_RULES, ProjectContext, Rule
from repro.preprocess.transformer import (
    _is_plain_self_attr,
    _untracked_writes,
)

__all__ = [
    "MethodSignalPlan",
    "PredicateMatch",
    "NONWRITING_SELF_CALLS",
    "build_plans_for_class",
    "class_signal_plans",
    "close_write_sets",
    "match_predicate",
    "method_summary",
    "self_call_summary",
]

#: inherited Monitor API a compiled method may call without writing any
#: tracked shared variable.  Deliberately small: anything else reached
#: through ``self`` that this pass cannot resolve (including a hand-written
#: ``self._note_write`` — it marks an *aliased* write the AST cannot see)
#: makes the caller opaque, which only costs it the generic relay exit.
NONWRITING_SELF_CALLS = frozenset({
    "wait_until", "signal_hint", "waiting_count", "dump_waiters",
})


@dataclass(frozen=True)
class MethodSignalPlan:
    """One method's statically-derived signal obligation on section exit.

    ``write_set`` is the transitive closure of every shared variable the
    method (and the intra-class self-calls it makes) can write through
    statically visible paths — the exact set of relay buckets a direct
    exit must mark.  An empty set is a valid plan: a pure reader's exit
    skips the search too (only freshly parked waiters need evaluating).
    """

    method: str
    write_set: frozenset


@dataclass(frozen=True)
class PredicateMatch:
    """Static match metadata stamped on compiled predicates.

    ``direct`` — the predicate's read set is known, so direct-signal exits
    (which mark eligibility per written variable) cover it exactly;
    ``writers`` — the planned methods whose write sets intersect the read
    set, i.e. the sections whose exits can flip this predicate without any
    relay search.  Opaque predicates get ``PredicateMatch(False, ())`` and
    are re-evaluated on every exit, direct or relayed.
    """

    direct: bool
    writers: tuple


def self_call_summary(
    func_def: ast.AST, self_name: str
) -> tuple[set, bool]:
    """(self-method names called, does bare ``self`` escape?).

    ``self.helper(...)`` is a resolvable intra-class call; ``self`` used
    any other way than as an attribute root (``f(self)``,
    ``setattr(self, n, v)``, ``self[k]``) means the method's effects are
    statically invisible — the caller must stay opaque.
    """
    calls: set = set()
    consumed: set = set()
    for node in ast.walk(func_def):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name
        ):
            calls.add(node.func.attr)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            consumed.add(id(node.value))
    escapes = any(
        isinstance(node, ast.Name)
        and node.id == self_name
        and id(node) not in consumed
        for node in ast.walk(func_def)
    )
    return calls, escapes


def _writes_in(func_def: ast.AST, self_name: str) -> set:
    """Shared-variable names a method body writes through statically
    visible paths — plain ``self.attr`` rebinds/deletes plus the
    subscript/nested-attribute/mutator roots the preprocessor instruments
    (mirrors ``transformer._method_write_vars``)."""
    written: set = set()
    for node in ast.walk(func_def):
        if isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if _is_plain_self_attr(node, self_name):
                written.add(node.attr)
    for node in ast.walk(func_def):
        if isinstance(node, ast.stmt):
            written |= _untracked_writes(node, self_name)
    return {name for name in written if not name.startswith("_")}


def method_summary(fn: Callable) -> Optional[tuple]:
    """(writes, self-calls, escapes) of one raw method from its source,
    or None when the source is unavailable — then the method is opaque
    and so is every planned method that calls it."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    try:
        func_def = ast.parse(source).body[0]
    except (SyntaxError, IndexError):  # pragma: no cover — defensive
        return None
    if not isinstance(func_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if not func_def.args.args:
        return None
    self_name = func_def.args.args[0].arg
    writes = _writes_in(func_def, self_name)
    calls, escapes = self_call_summary(func_def, self_name)
    return writes, calls, escapes


def close_write_sets(
    writes: dict, calls: dict, escapes: dict, known: set
) -> dict:
    """Transitively close per-method write sets over intra-class calls.

    Two fixpoints: opacity first (an escape, or a call to an opaque /
    unresolvable method, poisons the caller), then write-set union along
    the resolved call edges.  Returns method → frozenset (closed write
    set) or None (opaque — no plan).
    """
    opaque = {
        m: (writes[m] is None) or bool(escapes.get(m)) for m in writes
    }
    changed = True
    while changed:
        changed = False
        for m in writes:
            if opaque[m]:
                continue
            for callee in calls.get(m, ()):
                if callee in known:
                    if opaque.get(callee, True):
                        opaque[m] = True
                        changed = True
                        break
                elif callee not in NONWRITING_SELF_CALLS:
                    opaque[m] = True
                    changed = True
                    break
    closed = {
        m: (None if opaque[m] else set(writes[m])) for m in writes
    }
    changed = True
    while changed:
        changed = False
        for m, ws in closed.items():
            if ws is None:
                continue
            for callee in calls.get(m, ()):
                callee_ws = closed.get(callee)
                if callee_ws and not callee_ws <= ws:
                    ws |= callee_ws
                    changed = True
    return {
        m: (frozenset(ws) if ws is not None else None)
        for m, ws in closed.items()
    }


def build_plans_for_class(methods: dict) -> dict:
    """method name → :class:`MethodSignalPlan` for every non-opaque method.

    ``methods`` maps names to *raw* (unwrapped) functions — the
    ``monitor_compile`` view of the class body, dunders excluded.  Methods
    not in the mapping (inherited, dynamically added) are unresolvable:
    callers of such methods stay opaque, which is exactly the "cross-class
    writers fall back to the relay" rule.
    """
    writes: dict = {}
    calls: dict = {}
    escapes: dict = {}
    for name, fn in methods.items():
        info = method_summary(fn)
        if info is None:
            writes[name], calls[name], escapes[name] = None, set(), True
        else:
            writes[name], calls[name], escapes[name] = info
    closed = close_write_sets(writes, calls, escapes, set(methods))
    return {
        name: MethodSignalPlan(name, ws)
        for name, ws in closed.items()
        if ws is not None
    }


def match_predicate(read_set, plans: dict) -> PredicateMatch:
    """Match one predicate's read set against a class's signal plans.

    Called by the condition manager when stamping ``Predicate.aot_match``
    at first registration, so the static result the lint pass reasons
    about is the same one the runtime records.
    """
    if read_set is None:
        return PredicateMatch(False, ())
    writers = tuple(sorted(
        name for name, plan in plans.items()
        if plan.write_set & read_set
    ))
    return PredicateMatch(True, writers)


# ---------------------------------------------------------------------------
# the lint frontend: the same matcher over AST models (monlint W013)
# ---------------------------------------------------------------------------

def _is_compiled_class(node: ast.ClassDef) -> bool:
    return any(
        _base_name(dec) == "monitor_compile" or (
            isinstance(dec, ast.Call)
            and _base_name(dec.func) == "monitor_compile"
        )
        for dec in node.decorator_list
    )


def _method_summary_ast(method: MethodModel) -> Optional[tuple]:
    """AST-model twin of :func:`method_summary` for the lint pass."""
    self_name = method.self_name
    if self_name is None:
        return None
    func_def = method.node
    return (
        _writes_in(func_def, self_name),
        *self_call_summary(func_def, self_name),
    )


def class_signal_plans(cls: MonitorClassModel) -> dict:
    """Signal plans for a linted class — the decoration-time analysis
    replayed over the module model, so monlint reports exactly what
    ``@monitor_compile`` will plan."""
    writes: dict = {}
    calls: dict = {}
    escapes: dict = {}
    for name, method in cls.methods.items():
        if name.startswith("__") and name.endswith("__"):
            continue  # monitor_compile skips dunders too
        info = _method_summary_ast(method)
        if info is None:
            writes[name], calls[name], escapes[name] = None, set(), True
        else:
            writes[name], calls[name], escapes[name] = info
    closed = close_write_sets(writes, calls, escapes, set(writes))
    return {
        name: MethodSignalPlan(name, ws)
        for name, ws in closed.items()
        if ws is not None
    }


class OpaqueDirectSignal(Rule):
    """W013 — this wait is one ``reads=`` annotation away from direct
    signaling.

    Fires only where the annotation would actually buy something: the
    class is ``@monitor_compile``d and at least one method earned a plan
    with a non-empty write set (so its exits *do* skip the relay search),
    but this wait's predicate has an opaque read set, forcing every one of
    those exits to re-evaluate it anyway.  Waits whose opacity comes from
    an un-annotated ``S(fn, name)`` are W010's hint territory — the same
    ``reads=`` fix, already reported there — so this rule skips them
    rather than double-flagging one site.
    """

    code = "W013"
    name = "opaque-read-set-blocks-direct-signal"
    severity = Severity.HINT

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls in module.monitor_classes:
            if not _is_compiled_class(cls.node):
                continue
            plans = class_signal_plans(cls)
            planned_writers = sorted(
                name for name, plan in plans.items() if plan.write_set
            )
            if not planned_writers:
                continue  # nothing signals directly here; relay is the path
            for method in cls.methods.values():
                if method.self_name is None:
                    continue
                for site in method.waits:
                    if site.form == "multi_wait":
                        continue
                    reads, opaque, unannotated = predicate_reads(site, method)
                    if not opaque or unannotated:
                        continue
                    yield self._finding(
                        module.path, site.call,
                        "wait predicate has an opaque read set, so the "
                        "AOT-planned write sites in this class ("
                        + ", ".join(f"{cls.name}.{m}()" for m in planned_writers)
                        + ") must re-evaluate it on every direct-signal "
                        "exit; express the condition over self.<attr> "
                        "reads or annotate reads=(...) on the shared "
                        "expression to enable direct signaling",
                    )


AOT_RULES = [OpaqueDirectSignal]

for _rule in AOT_RULES:
    if _rule not in ALL_RULES:
        ALL_RULES.append(_rule)
