"""Dynamic monitor-usage checks (opt-in, zero-cost when off).

Two runtime assertions back the static rules with ground truth:

* **lock order** — every monitor acquisition is recorded on a per-thread
  stack; acquiring a monitor whose id is *smaller* than one already held
  (and not a reentrant re-entry) violates the global ascending-id order
  that `multisynch` relies on for deadlock freedom (§4.1) and raises
  :class:`~repro.runtime.errors.LockOrderError`.
* **predicate purity** — ``wait_until`` probes the predicate once with a
  snapshot/compare of the monitor's ``__dict__``; any attribute rebind
  during evaluation breaks closure (Def. 2) and raises
  :class:`~repro.runtime.errors.PredicateSideEffectError`.

Enabling/disabling::

    from repro.analysis import runtime as monlint_runtime
    monlint_runtime.enable_checks()          # also sets config.analysis_checks
    ...
    monlint_runtime.disable_checks()

    with monlint_runtime.checking():         # scoped form, for tests
        ...

The hot-path cost when disabled is a single module-attribute truth test in
``Monitor._monitor_enter`` / ``_monitor_exit`` — no locks, no allocation.

Liveness is handled elsewhere: the static signal-obligation pass lives in
:mod:`repro.analysis.liveness` (W010–W012), and its runtime twin — a
polling :class:`~repro.resilience.obligations.ObligationTracker` that
flags waiters nobody ever writes for — sits in the resilience layer, not
here, because it observes rather than asserts.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, List

from repro.runtime.config import get_config
from repro.runtime.errors import LockOrderError, PredicateSideEffectError

#: fast-path switch read by Monitor._monitor_enter/_monitor_exit.  Toggle it
#: through :func:`enable_checks` so ``config.analysis_checks`` stays in sync.
enabled: bool = False

#: whether a lock-order violation raises (True) or is only recorded
raise_on_violation: bool = True

_state = threading.local()
_violations_lock = threading.Lock()
#: human-readable record of every violation observed (kept even when
#: raising, so post-mortem inspection sees the full history)
violations: List[str] = []


def _held() -> list[list]:
    """This thread's stack of ``[monitor_id, reentry_count]`` entries."""
    stack = getattr(_state, "held", None)
    if stack is None:
        stack = []
        _state.held = stack
    return stack


def enable_checks(raise_on_order_violation: bool = True) -> None:
    """Turn the dynamic checker on (and record it in the runtime config)."""
    global enabled, raise_on_violation
    raise_on_violation = raise_on_order_violation
    get_config().analysis_checks = True
    enabled = True


def disable_checks() -> None:
    """Turn the dynamic checker off again."""
    global enabled
    get_config().analysis_checks = False
    enabled = False


def reset() -> None:
    """Clear recorded violations and this thread's held-lock stack."""
    with _violations_lock:
        violations.clear()
    _state.held = []


class checking:
    """Context manager enabling checks for a scope (used heavily in tests)."""

    def __init__(self, raise_on_order_violation: bool = True):
        self._raise = raise_on_order_violation

    def __enter__(self) -> "checking":
        enable_checks(self._raise)
        return self

    def __exit__(self, *exc) -> None:
        disable_checks()


def _record(message: str) -> None:
    with _violations_lock:
        violations.append(message)


# --------------------------------------------------------------------------
# hooks called by Monitor (only when ``enabled`` is True)
# --------------------------------------------------------------------------

def on_acquire(monitor: Any) -> None:
    """Called *before* ``monitor``'s lock is acquired by this thread."""
    mid = monitor.monitor_id
    stack = _held()
    for entry in stack:
        if entry[0] == mid:          # reentrant re-entry: always fine
            entry[1] += 1
            return
    held_above = [entry[0] for entry in stack if entry[0] > mid]
    stack.append([mid, 1])
    if held_above:
        message = (
            f"lock-order violation: thread {threading.current_thread().name} "
            f"acquires monitor #{mid} while already holding "
            f"{sorted(held_above, reverse=True)} — acquisitions must follow "
            "ascending monitor-id order (§4.1); use multisynch(...) for "
            "multi-object sections"
        )
        _record(message)
        if raise_on_violation:
            stack.pop()              # the acquisition will not proceed
            raise LockOrderError(message)


def on_release(monitor: Any) -> None:
    """Called when this thread releases one level of ``monitor``'s lock."""
    mid = monitor.monitor_id
    stack = _held()
    for i in range(len(stack) - 1, -1, -1):
        if stack[i][0] == mid:
            stack[i][1] -= 1
            if stack[i][1] <= 0:
                del stack[i]
            return
    # release without a recorded acquire: checker was enabled mid-section;
    # ignore rather than poison the program.


def check_predicate(predicate: Any, monitor: Any) -> None:
    """Probe-evaluate ``predicate`` once, asserting it does not rebind any
    monitor attribute (closure / purity, Def. 2).

    In-place container mutation is invisible to this snapshot (it compares
    object identity); rebinding — by far the common accident, e.g.
    ``self.count += 1`` inside a predicate callable — is caught.
    """
    before = dict(vars(monitor))
    predicate.evaluate(monitor)
    after = vars(monitor)
    changed = sorted(
        name
        for name in before.keys() | after.keys()
        if before.get(name, _MISSING) is not after.get(name, _MISSING)
    )
    if changed:
        message = (
            f"predicate side effect: evaluating a waituntil predicate on "
            f"{monitor!r} rebound attribute(s) {', '.join(changed)} — "
            "predicates must be closed, side-effect-free functions of "
            "shared state (Def. 2)"
        )
        _record(message)
        raise PredicateSideEffectError(message)


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def held_monitor_ids() -> Iterator[int]:
    """Monitor ids currently held by the calling thread (for diagnostics)."""
    return iter([entry[0] for entry in _held()])
