"""Cross-class lock-order graph for rule W004.

Every *nested* monitor acquisition the linter can see adds a directed edge
``A → B``: "code holding A's lock may acquire B's lock".  The paper's
deadlock-freedom argument (§4.1) rests on all multi-object acquisitions
going through ``multisynch``'s global ascending-id order; hand-nested
acquisitions reintroduce order chosen by the programmer, and a *cycle* in
this graph is exactly the classic circular-wait condition.

The graph is collected across all linted files (monitors of class A in one
module may call monitors of class B defined in another), then condensed
with Tarjan's strongly-connected-components algorithm; every non-trivial
SCC — or a self-loop — is reported once.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LockEdge:
    src: str        #: monitor class holding its lock
    dst: str        #: monitor class whose lock is then acquired
    path: str
    lineno: int


@dataclass
class LockOrderGraph:
    edges: list[LockEdge] = field(default_factory=list)

    def add_edge(self, src: str, dst: str, path: str, lineno: int) -> None:
        self.edges.append(LockEdge(src, dst, path, lineno))

    def nodes(self) -> list[str]:
        """Every class that participates in an edge, sorted — handy for
        tooling that wants to enumerate the graph without recomputing the
        adjacency map."""
        return sorted({e.src for e in self.edges} | {e.dst for e in self.edges})

    def adjacency(self) -> dict[str, set[str]]:
        adj: dict[str, set[str]] = {}
        for edge in self.edges:
            adj.setdefault(edge.src, set()).add(edge.dst)
            adj.setdefault(edge.dst, set())
        return adj

    def cycles(self) -> list[list[str]]:
        """Non-trivial strongly connected components (plus self-loops),
        each returned as a sorted list of participating class names."""
        adj = self.adjacency()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        def strongconnect(v: str) -> None:
            # iterative Tarjan (avoid recursion limits on big graphs)
            work = [(v, iter(sorted(adj[v])))]
            index[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(adj[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
                    elif component[0] in adj[component[0]]:  # self-loop
                        sccs.append(component)

        for vertex in sorted(adj):
            if vertex not in index:
                strongconnect(vertex)
        return sccs

    def anchor_for(self, component: list[str]) -> LockEdge:
        """A representative edge inside the component, for the finding's
        source location (deterministic: smallest path/line)."""
        members = set(component)
        candidates = [
            e for e in self.edges if e.src in members and e.dst in members
        ]
        return min(candidates, key=lambda e: (e.path, e.lineno))
