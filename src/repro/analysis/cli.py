"""The ``monlint`` command line interface.

Usage::

    python -m repro.analysis src examples     # or: monlint src examples
    monlint --select W001,W004 src/repro/problems
    monlint --format json examples/quickstart.py

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.  Findings can be silenced per line with ``# monlint: disable=W00x``
or per file with ``# monlint: disable-file=W00x``.

``--format json`` emits one finding per line (JSON-lines: ``code``,
``path``, ``line``, ``message``, …) so CI pipelines and editors can
consume findings with a line-oriented reader.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis import aot  # noqa: F401 — registers W013
from repro.analysis import liveness  # noqa: F401 — registers W010–W012
from repro.analysis.linter import lint_paths
from repro.analysis.rules import ALL_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _parse_codes(text: str | None) -> set[str] | None:
    if text is None:
        return None
    codes = {c.strip().upper() for c in text.split(",") if c.strip()}
    known = {rule.code for rule in ALL_RULES}
    unknown = codes - known
    if unknown:
        raise SystemExit(
            f"monlint: unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return codes or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="monlint",
        description=(
            "Static monitor-usage lint for the repro framework: predicate "
            "closure (W001/W002), relay invariance (W003), lock ordering "
            "and deadlock cycles (W004), tagging hints (W005), "
            "signal-obligation liveness (W010-W012), AOT signal "
            "placement (W013), and free-threaded atomicity (W014)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="python files or directories to lint"
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.severity!s:<8} {rule.name}")
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("monlint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    try:
        select = _parse_codes(args.select)
        disable = _parse_codes(args.disable)
        findings = lint_paths(args.paths, select=select, disable=disable)
    except FileNotFoundError as exc:
        print(f"monlint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        for finding in findings:
            print(json.dumps(finding.to_dict(), sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"monlint: {len(findings)} finding(s)")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
