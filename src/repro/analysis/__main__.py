"""``python -m repro.analysis <paths>`` — run the monlint CLI."""

import sys

from repro.analysis.cli import main

sys.exit(main())
