"""monlint rules W001–W007.

Each rule is a small class with a ``code``, ``severity`` and a
``check(module, ctx)`` generator; W004 additionally contributes edges to the
project-wide lock-order graph and reports cycles in ``finalize``.  The
whole-program liveness rules (W010–W012, signal-obligation discharge) live
in :mod:`repro.analysis.liveness` and register themselves into
``ALL_RULES`` on import.

Paper grounding (see ``docs/analysis.md`` for the full discussion):

* **W001** — predicate closure (Def. 2) requires ``waituntil`` conditions to
  be pure functions of shared + frozen-local state; side effects during
  evaluation break Prop. 1 (any thread may evaluate any closed predicate).
* **W002** — the closure freezes locals *at the wait*; reassigning a
  captured local afterwards and then mutating shared state suggests the
  programmer expected the predicate to track the new value.
* **W003** — relay invariance (Def. 5) only holds if every shared-state
  write happens inside a monitor section, so the exiting thread can signal
  a waiter whose predicate became true.
* **W004** — deadlock freedom (§4.1) rests on *all* multi-object
  acquisitions going through ``multisynch``'s ascending-id order; nested or
  hand-rolled acquisition reintroduces programmer-chosen order, and a cycle
  in the resulting lock graph is the classic circular wait.  Acquisitions
  routed through ``monitor_set(...).synch()`` or a stored multisynch block
  use the same cached ascending-id path and are recognized as ordered.
* **W005** — a predicate that is structurally ``shared op constant`` but
  reaches the runtime as an opaque callable falls to the ``None`` tag
  (Algorithm 1) and degrades relay signaling to a linear scan.
* **W006** — delegated tasks execute under their monitor's lock (Rule 1),
  so blocking on ``future.get()`` with no timeout — or ``flush()`` without
  one — from inside a synchronized method holds a lock the executor may
  need: a self-deadlock the resilience layer (docs/robustness.md) can only
  bound, never prevent, unless the wait carries a timeout.
* **W007** — the dependency-tracked relay (docs/performance.md) filters
  untagged waiters by each exit's dirty set, recorded by the monitor's
  ``__setattr__`` proxy.  An in-place write (``self.jobs.append(x)``,
  ``self.table[k] = v``) bypasses the proxy; when some wait-site predicate
  in the class declares that variable in its read set, the write is
  invisible to the filter and the waiter may sleep through its enabling
  update.  ``@monitor_compile`` classes are exempt (the preprocessor
  inserts ``self._note_write``), as are methods that call it by hand.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.lockgraph import LockOrderGraph
from repro.analysis.model import (
    NONLOCKING_MONITOR_ATTRS,
    MethodModel,
    ModuleModel,
    MonitorClassModel,
    WaitSite,
    _base_name,
    _annotation_name,
    collect_attr_writes,
    collect_wait_sites,
    monitor_locals,
)

_TRY_TYPES = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)

_BUILTIN_NAMES = set(dir(builtins))

#: builtins whose call is (or may be) side-effecting
_IMPURE_BUILTINS = {
    "print", "input", "open", "exec", "eval", "compile", "setattr",
    "delattr", "next", "__import__", "breakpoint", "vars", "globals",
}

#: extra callables known pure in predicate position (the DSL constructors)
_PURE_EXTRA = {"local", "complex_pred", "S"}

#: method names that mutate their receiver — calling one inside a predicate
#: is a definite closure violation
_MUTATING_METHODS = {
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "clear", "pop", "popleft", "popitem", "update", "add", "put", "take",
    "push", "write", "acquire", "release", "notify", "notify_all",
    "signal", "set", "setdefault", "sort", "reverse", "send", "submit",
    "consume", "produce", "increment", "decrement",
}


class ProjectContext:
    """State shared across all modules of one lint run."""

    def __init__(self) -> None:
        self.lock_graph = LockOrderGraph()
        self.monitor_names: set[str] = set()
        #: class name → its model (last definition wins on name clashes)
        self.classes: dict[str, MonitorClassModel] = {}
        self._walkers: dict[str, "_SyncWalker"] = {}

    def register(self, module: ModuleModel) -> None:
        self.monitor_names |= module.local_monitor_names
        for cls in module.monitor_classes:
            self.classes[cls.name] = cls

    def sync_walker(self, module: ModuleModel) -> "_SyncWalker":
        """One shared walk per module (W003 and W004 both consume it;
        caching also keeps lock-graph edges from being recorded twice)."""
        walker = self._walkers.get(module.path)
        if walker is None:
            walker = _SyncWalker(module, self)
            walker.run()
            self._walkers[module.path] = walker
        return walker

    def target_is_synchronized(self, cls_name: str, method: str) -> bool:
        """Does calling ``<cls_name>.<method>()`` take the monitor lock?
        Unknown classes/methods are conservatively assumed synchronized."""
        if method.startswith("_") or method in NONLOCKING_MONITOR_ATTRS:
            return False
        cls = self.classes.get(cls_name)
        if cls is None or method not in cls.methods:
            return True
        return cls.methods[method].kind == "synchronized"


class Rule:
    code = ""
    name = ""
    severity = Severity.WARNING

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        return iter(())

    def _finding(self, module_path: str, node_or_line, message: str, col: int = 0) -> Finding:
        if isinstance(node_or_line, int):
            line = node_or_line
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", col)
        return Finding(
            code=self.code,
            severity=self.severity,
            message=message,
            path=module_path,
            line=line,
            col=col,
            rule_name=self.name,
        )


# ---------------------------------------------------------------------------
# W001 — non-closed predicate
# ---------------------------------------------------------------------------

class NonClosedPredicate(Rule):
    code = "W001"
    name = "non-closed-predicate"
    severity = Severity.ERROR

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls, method in module.iter_methods():
            for site in method.waits:
                yield from self._check_site(module, site, cls, method)
        # wait sites outside monitor classes (module functions, plain
        # classes driving multisynch blocks, …)
        monitor_nodes = {cls.node for cls in module.monitor_classes}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for site in collect_wait_sites(node, None):
                    yield from self._check_site(module, site, None, None)
            elif isinstance(node, ast.ClassDef) and node not in monitor_nodes:
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        for site in collect_wait_sites(item, None):
                            yield from self._check_site(module, site, None, None)

    def _check_site(
        self,
        module: ModuleModel,
        site: WaitSite,
        cls: MonitorClassModel | None,
        method: MethodModel | None,
    ) -> Iterator[Finding]:
        sync_names = cls.sync_method_names if cls is not None else set()
        self_name = method.self_name if method is not None else None
        global_names = method.global_names if method is not None else set()
        for node in ast.walk(site.expr):
            if isinstance(node, ast.NamedExpr):
                yield self._finding(
                    module.path, node,
                    "assignment expression inside a waituntil predicate — "
                    "predicates must be closed (side-effect free, Def. 2)",
                )
            elif isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                yield self._finding(
                    module.path, node,
                    "await/yield inside a waituntil predicate — predicates "
                    "must be closed (side-effect free, Def. 2)",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, self_name, sync_names
                )
            elif (
                isinstance(node, ast.Name)
                and node.id in global_names
            ):
                yield self._finding(
                    module.path, node,
                    f"predicate reads {node.id!r}, declared global/nonlocal "
                    "in the enclosing method — the closure cannot freeze it, "
                    "so evaluations by other threads see a moving value",
                )

    def _check_call(
        self,
        module: ModuleModel,
        node: ast.Call,
        self_name: str | None,
        sync_names: set[str],
    ) -> Iterator[Finding]:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            if fn.attr in _MUTATING_METHODS:
                yield self._finding(
                    module.path, node,
                    f"predicate calls mutating method {fn.attr!r}() — the "
                    "condition manager may evaluate it on any thread, any "
                    "number of times (closure violation, Def. 2)",
                )
            elif (
                self_name is not None
                and isinstance(fn.value, ast.Name)
                and fn.value.id == self_name
                and fn.attr in sync_names
            ):
                yield self._finding(
                    module.path, node,
                    f"predicate calls synchronized method {fn.attr!r}() — "
                    "re-entering the monitor during predicate evaluation "
                    "has side effects (relay, metrics) and can deadlock "
                    "the signaler",
                )
        elif isinstance(fn, ast.Name):
            if fn.id in _PURE_EXTRA:
                return
            if fn.id in _BUILTIN_NAMES and fn.id not in _IMPURE_BUILTINS:
                return
            yield self._finding(
                module.path, node,
                f"predicate calls {fn.id!r}() which is not known to be "
                "pure — closed predicates may only read shared state and "
                "frozen locals (Def. 2)",
            )


# ---------------------------------------------------------------------------
# W002 — stale closure
# ---------------------------------------------------------------------------

class StaleClosure(Rule):
    code = "W002"
    name = "stale-closure"
    severity = Severity.WARNING

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls, method in module.iter_methods():
            if not method.waits or method.self_name is None:
                continue
            for site in method.waits:
                captured = self._captured_locals(module, site, method)
                if not captured:
                    continue
                yield from self._check_reassignments(
                    module, site, method, captured
                )

    def _captured_locals(
        self, module: ModuleModel, site: WaitSite, method: MethodModel
    ) -> set[str]:
        skip = (
            {method.self_name, "S"}
            | _PURE_EXTRA
            | _BUILTIN_NAMES
            | module.module_names
            | module.known_monitor_names
            | method.global_names
        )
        names: set[str] = set()
        for node in ast.walk(site.expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in skip:
                    names.add(node.id)
            elif isinstance(node, ast.Lambda):
                for arg in node.args.args:
                    skip.add(arg.arg)
        return names

    def _check_reassignments(
        self,
        module: ModuleModel,
        site: WaitSite,
        method: MethodModel,
        captured: set[str],
    ) -> Iterator[Finding]:
        shared_write_lines = sorted(
            w.lineno for w in method.self_writes
            if not w.attr.startswith("_")
        )
        for node in ast.walk(method.node):
            target_names: list[str] = []
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    target_names.extend(_flat_names(target))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target_names.extend(_flat_names(node.target))
            else:
                continue
            hits = [n for n in target_names if n in captured]
            if not hits or node.lineno <= site.lineno:
                continue
            # only meaningful if shared state is mutated after the rebind —
            # that is the write the stale predicate was guarding
            if not any(line >= node.lineno for line in shared_write_lines):
                continue
            for name in hits:
                yield self._finding(
                    module.path, node,
                    f"local {name!r} was frozen into the waituntil predicate "
                    f"at line {site.lineno} (closure, Def. 2) but is "
                    "reassigned here before the method's shared-state "
                    "update — the predicate still holds the old value",
                )


def _flat_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_flat_names(elt))
        return out
    return []


# ---------------------------------------------------------------------------
# W003 — shared-state write outside a synchronized monitor section
# ---------------------------------------------------------------------------

class UnsynchronizedWrite(Rule):
    code = "W003"
    name = "unsynchronized-write"
    severity = Severity.ERROR

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        # (a) @unmonitored methods of a monitor class writing shared attrs
        for cls, method in module.iter_methods():
            if method.kind != "unmonitored":
                continue
            for write in method.self_writes:
                if write.attr.startswith("_"):
                    continue
                yield self._finding(
                    module.path, write.lineno,
                    f"@unmonitored method {cls.name}.{method.name}() writes "
                    f"shared attribute {write.attr!r} without the monitor "
                    "lock — breaks relay invariance (Def. 5): no exiting "
                    "thread will signal waiters this write unblocks",
                    col=write.col,
                )
        # (b) writes to known monitor objects outside any synchronized block
        walker = ctx.sync_walker(module)
        for write, resolved_cls in walker.unsynced_writes:
            yield self._finding(
                module.path, write.lineno,
                f"write to {write.obj}.{write.attr} (a {resolved_cls} "
                "monitor) outside any monitor section — wrap it in the "
                "monitor's methods, synchronized(...) or multisynch(...) "
                "so relay signaling sees the change (Def. 5)",
                col=write.col,
            )


# ---------------------------------------------------------------------------
# W004 — nested / hand-ordered multi-monitor acquisition
# ---------------------------------------------------------------------------

class HandOrderedAcquisition(Rule):
    code = "W004"
    name = "hand-ordered-acquisition"
    severity = Severity.ERROR

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        walker = ctx.sync_walker(module)
        for node, message in walker.w004_events:
            yield self._finding(module.path, node, message)

    def finalize(self, ctx: ProjectContext) -> Iterator[Finding]:
        for component in ctx.lock_graph.cycles():
            anchor = ctx.lock_graph.anchor_for(component)
            chain = " → ".join(component + [component[0]])
            yield Finding(
                code=self.code,
                severity=self.severity,
                message=(
                    f"potential deadlock: nested acquisitions form the "
                    f"lock-order cycle {chain}; route the multi-object "
                    "section through multisynch(...) so the runtime picks "
                    "the global ascending-id order (§4.1)"
                ),
                path=anchor.path,
                line=anchor.lineno,
                rule_name=self.name,
            )


# ---------------------------------------------------------------------------
# W005 — tag advisor
# ---------------------------------------------------------------------------

_TAGGABLE_OPS = (ast.Eq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


class TagAdvisor(Rule):
    code = "W005"
    name = "tag-advisor"
    severity = Severity.HINT

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls, method in module.iter_methods():
            for site in method.waits:
                if site.form != "wait_until":
                    continue
                yield from self._check_site(module, site, method)

    def _check_site(
        self, module: ModuleModel, site: WaitSite, method: MethodModel
    ) -> Iterator[Finding]:
        expr = site.expr
        if isinstance(expr, ast.Lambda):
            base = (
                expr.args.args[0].arg if expr.args.args else method.self_name
            )
            if base and _taggable_tree(expr.body, base):
                yield self._finding(
                    module.path, site.call,
                    "opaque lambda predicate is structurally "
                    "Equivalence/Threshold-taggable — rewrite with the S "
                    "DSL (e.g. S.attr > const) so relay signaling can use "
                    "tag indexes instead of a linear waiter scan "
                    "(Algorithm 1)",
                )
        elif isinstance(expr, (ast.Compare, ast.BoolOp)) and method.self_name:
            if _mentions_attr_of(expr, method.self_name):
                yield self._finding(
                    module.path, site.call,
                    f"wait_until argument reads {method.self_name}.<attr> "
                    "directly, so it evaluates eagerly to a plain bool and "
                    "cannot be tagged (or re-evaluated) — use S.<attr> to "
                    "build a structured, taggable predicate",
                )


def _mentions_attr_of(expr: ast.expr, base: str) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == base
        ):
            return True
    return False


def _taggable_tree(node: ast.expr, base: str) -> bool:
    """True when the whole boolean tree is and/or over ``base.attr op
    constant-or-local`` comparisons — i.e. expressible in the S DSL with an
    Equivalence or Threshold tag."""
    if isinstance(node, ast.BoolOp):
        return all(_taggable_tree(v, base) for v in node.values)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return _taggable_tree(node.operand, base)
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or not isinstance(node.ops[0], _TAGGABLE_OPS):
            return False
        left, right = node.left, node.comparators[0]
        return (_shared_read(left, base) and _const_like(right, base)) or (
            _const_like(left, base) and _shared_read(right, base)
        )
    return False


def _shared_read(node: ast.expr, base: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == base
    )


def _const_like(node: ast.expr, base: str) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _const_like(node.operand, base)
    return isinstance(node, ast.Name) and node.id != base


# ---------------------------------------------------------------------------
# W006 — unbounded blocking wait under the monitor lock
# ---------------------------------------------------------------------------

class UnboundedBlockingWait(Rule):
    code = "W006"
    name = "unbounded-blocking-wait"
    severity = Severity.WARNING

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls, method in module.iter_methods():
            if method.kind != "synchronized":
                continue
            yield from self._check_method(module, cls, method)

    def _check_method(
        self, module: ModuleModel, cls: MonitorClassModel, method: MethodModel
    ) -> Iterator[Finding]:
        func = method.node
        resolve = self._monitor_names(module, cls, method)
        futures = self._future_names(func, resolve)
        where = f"synchronized method {cls.name}.{method.name}()"
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            base = node.func.value
            if node.func.attr == "flush":
                obj = _dotted_name(base)
                if obj in resolve and not _bounded_by_timeout(node):
                    yield self._finding(
                        module.path, node,
                        f"{obj}.flush() without an explicit timeout inside "
                        f"{where} — flush blocks until the executor runs, "
                        "and the executor needs a monitor lock this thread "
                        "holds (Rule 1): a guaranteed stall; pass timeout= "
                        "(and see docs/robustness.md for deadlines/cancel)",
                    )
            elif node.func.attr == "get":
                if _bounded_by_timeout(node):
                    continue
                recv = _dotted_name(base)
                chained = _is_monitor_call(base, resolve)
                if (recv in futures) or chained:
                    shown = recv if recv is not None else "<future>"
                    yield self._finding(
                        module.path, node,
                        f"{shown}.get() with no timeout inside {where} — "
                        "the delegated task runs under its monitor's lock "
                        "(Rule 1) and this thread already holds one: an "
                        "unbounded get can self-deadlock the pair; pass "
                        "timeout=/deadline=/cancel= (docs/robustness.md)",
                    )

    def _monitor_names(
        self, module: ModuleModel, cls: MonitorClassModel, method: MethodModel
    ) -> dict[str, str]:
        """Names (possibly dotted) known to hold monitor objects."""
        func = method.node
        resolve: dict[str, str] = {}
        self_name = method.self_name
        if self_name:
            resolve[self_name] = cls.name
            for attr, mon_cls in cls.monitor_attrs.items():
                resolve[f"{self_name}.{attr}"] = mon_cls
        for arg in func.args.args:
            ann = _annotation_name(arg.annotation)
            if ann in module.known_monitor_names:
                resolve[arg.arg] = ann
        resolve.update(monitor_locals(func, module.known_monitor_names))
        return resolve

    def _future_names(
        self, func: ast.AST, resolve: dict[str, str]
    ) -> set[str]:
        """Plain names assigned from a call on a known monitor object —
        the ``future = mon.task(...)`` idiom."""
        names: set[str] = set()
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign)
                and _is_monitor_call(node.value, resolve)
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names


def _dotted_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        inner = _dotted_name(node.value)
        return None if inner is None else f"{inner}.{node.attr}"
    return None


def _is_monitor_call(node: ast.expr, resolve: dict[str, str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and _dotted_name(node.func.value) in resolve
    )


def _bounded_by_timeout(call: ast.Call) -> bool:
    """True when the call carries a non-None timeout (positional or
    keyword) — ``timeout=None`` is explicit unboundedness, not a bound."""
    for kw in call.keywords:
        if kw.arg == "timeout":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    if call.args:
        first = call.args[0]
        return not (
            isinstance(first, ast.Constant) and first.value is None
        )
    return False


# ---------------------------------------------------------------------------
# W007 — in-place shared-state write bypassing the tracking proxy
# ---------------------------------------------------------------------------

#: receiver methods that mutate a container in place (mirror of the
#: preprocessor's instrumentation vocabulary)
_CONTAINER_MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "rotate", "setdefault", "sort", "update",
}


class UntrackedSharedWrite(Rule):
    code = "W007"
    name = "untracked-shared-write"
    severity = Severity.WARNING

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for cls in module.monitor_classes:
            if self._is_compiled(cls.node):
                continue  # @monitor_compile inserts _note_write itself
            read_names = self._predicate_reads(cls)
            if not read_names:
                continue
            for method in cls.methods.values():
                if method.self_name is None:
                    continue
                noted = _noted_names(method.node, method.self_name)
                for node, name in _untracked_self_writes(
                    method.node, method.self_name
                ):
                    if name in read_names and name not in noted:
                        yield self._finding(
                            module.path, node,
                            f"in-place write to self.{name} bypasses the "
                            "monitor's write-tracking proxy, but a wait "
                            "predicate in this class reads "
                            f"{name!r} — the dependency-filtered relay "
                            "will not re-evaluate that waiter for this "
                            "update; rebind the attribute, call "
                            f"self._note_write({name!r}) first, or compile "
                            "the class with @monitor_compile",
                        )

    @staticmethod
    def _is_compiled(node: ast.ClassDef) -> bool:
        return any(
            _base_name(dec) == "monitor_compile" or (
                isinstance(dec, ast.Call)
                and _base_name(dec.func) == "monitor_compile"
            )
            for dec in node.decorator_list
        )

    def _predicate_reads(self, cls: MonitorClassModel) -> set[str]:
        """Variable names some wait-site predicate of ``cls`` declares it
        reads: ``S.attr`` leaves plus explicit ``reads=`` annotations on
        ``S(fn, name, reads)`` shared expressions.  Multi-monitor wait
        sites are skipped — their ``S.attr`` reads belong to other
        monitors."""
        names: set[str] = set()
        for method in cls.methods.values():
            for site in method.waits:
                if site.form == "multi_wait":
                    continue
                for node in ast.walk(site.expr):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "S"
                    ):
                        names.add(node.attr)
                    elif (
                        isinstance(node, ast.Call)
                        and _base_name(node.func) == "S"
                    ):
                        for kw in node.keywords:
                            if kw.arg == "reads":
                                names |= _const_str_names(kw.value)
                        if len(node.args) >= 3:
                            names |= _const_str_names(node.args[2])
        return names


def _const_str_names(node: ast.expr) -> set[str]:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return {
            elt.value for elt in node.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        }
    return set()


def _noted_names(func: ast.AST, self_name: str) -> set[str]:
    """Variables the method already reports via ``self._note_write('x')``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_note_write"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            names.add(node.args[0].value)
    return names


def _peel_self_root(node: ast.expr, self_name: str) -> str | None:
    """``self.a.b[k]`` → ``"a"``; None when not rooted at ``self``."""
    attr = None
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attr = node.attr
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name:
        return attr
    return None


def _untracked_self_writes(
    func: ast.AST, self_name: str
) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, variable) for writes ``Monitor.__setattr__`` cannot
    see: subscript / nested-attribute stores and deletes rooted at self,
    and container-mutator calls on a self attribute."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            getattr(node, "ctx", None), (ast.Store, ast.Del)
        ):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self_name
            ):
                continue  # plain rebind/del: the proxy tracks it
            root = _peel_self_root(node, self_name)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CONTAINER_MUTATORS
        ):
            root = _peel_self_root(node.func.value, self_name)
        else:
            continue
        if root is not None and not root.startswith("_"):
            yield node, root


# ---------------------------------------------------------------------------
# shared walker: synchronization contexts, lock-graph edges, monitor writes
# ---------------------------------------------------------------------------

class _SyncWalker:
    """Walk every function of a module tracking the stack of held
    synchronization contexts, collecting:

    * W004 events (nested multisynch, nested synchronized, raw ``._lock``);
    * lock-order edges for the project graph;
    * monitor-object attribute writes outside any section (for W003).
    """

    def __init__(self, module: ModuleModel, ctx: ProjectContext):
        self.module = module
        self.ctx = ctx
        self.w004_events: list[tuple[ast.AST, str]] = []
        self.unsynced_writes: list = []
        self._seen_edges: set[tuple] = set()
        # names bound (in the function being walked) to multisynch blocks or
        # monitor sets — their `with` entry routes through the ascending-id
        # acquisition path, so they count as multisynch for W004
        self._ms_names: set[str] = set()

    # -- entry points --------------------------------------------------------
    def run(self) -> None:
        for node in self.module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(node, owner=None)
        for cls in self.module.monitor_classes:
            for method in cls.methods.values():
                self._walk_function(method.node, owner=(cls, method))
        # plain (non-monitor) classes still contain functions worth walking
        monitor_class_nodes = {cls.node for cls in self.module.monitor_classes}
        for node in self.module.tree.body:
            if (
                isinstance(node, ast.ClassDef)
                and node not in monitor_class_nodes
            ):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._walk_function(item, owner=None, is_method=True)

    # -- per-function --------------------------------------------------------
    def _walk_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: tuple[MonitorClassModel, MethodModel] | None,
        is_method: bool = False,
    ) -> None:
        resolve: dict[str, str] = {}
        self_name: str | None = None
        if owner is not None:
            cls, method = owner
            self_name = method.self_name
            if self_name:
                resolve[self_name] = cls.name
                for attr, mon_cls in cls.monitor_attrs.items():
                    resolve[f"{self_name}.{attr}"] = mon_cls
        elif is_method and func.args.args:
            # plain-class method: its own self is not a monitor, but its
            # `self._lock` (an explicit lock it owns) must not be flagged
            self_name = func.args.args[0].arg
        for arg in func.args.args:
            ann = _annotation_name(arg.annotation)
            if ann in self.module.known_monitor_names:
                resolve[arg.arg] = ann
        resolve.update(monitor_locals(func, self.module.known_monitor_names))

        # Collect names bound to multisynch blocks / monitor sets anywhere in
        # this function (including nested defs): `ms = monitor_set(a, b)`,
        # `block = ms.synch()`, `block = multisynch(a, b)`.  A later
        # `with block:` acquires through the same globally-ordered path as a
        # literal `with multisynch(...)`, so W004 must not flag it.
        ms_names: set[str] = set()
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            routed = _base_name(call.func) in (
                "monitor_set", "MonitorSet", "multisynch", "Multisynch"
            ) or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "synch"
            )
            if routed:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        ms_names.add(target.id)
        self._ms_names = ms_names

        stack: list[tuple[str, str | None]] = []
        if (
            owner is not None
            and owner[1].kind == "synchronized"
        ):
            stack.append(("monitor_method", owner[0].name))
        self._walk_stmts(func.body, stack, resolve, self_name)

    def _walk_stmts(
        self,
        stmts: list[ast.stmt],
        stack: list[tuple[str, str | None]],
        resolve: dict[str, str],
        self_name: str | None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                pushed: list[tuple[str, str | None]] = []
                for item in stmt.items:
                    self._scan_expr(item.context_expr, stack, resolve, self_name)
                    kind, arg = self._classify_withitem(item)
                    if kind is None:
                        continue
                    self._on_with(stmt, kind, arg, stack, resolve)
                    pushed.append((kind, arg))
                stack.extend(pushed)
                self._walk_stmts(stmt.body, stack, resolve, self_name)
                del stack[len(stack) - len(pushed):]
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, stack, resolve, self_name)
                self._walk_stmts(stmt.body, stack, resolve, self_name)
                self._walk_stmts(stmt.orelse, stack, resolve, self_name)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, stack, resolve, self_name)
                self._walk_stmts(stmt.body, stack, resolve, self_name)
                self._walk_stmts(stmt.orelse, stack, resolve, self_name)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, stack, resolve, self_name)
                self._walk_stmts(stmt.body, stack, resolve, self_name)
                self._walk_stmts(stmt.orelse, stack, resolve, self_name)
            elif isinstance(stmt, _TRY_TYPES):
                self._walk_stmts(stmt.body, stack, resolve, self_name)
                for handler in stmt.handlers:
                    self._walk_stmts(handler.body, stack, resolve, self_name)
                self._walk_stmts(stmt.orelse, stack, resolve, self_name)
                self._walk_stmts(stmt.finalbody, stack, resolve, self_name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # nested function: runs later under an unknown context —
                # keep the current stack (conservative for closures that
                # execute inline, e.g. worker bodies defined in place)
                self._walk_stmts(stmt.body, stack, resolve, self_name)
            elif isinstance(stmt, ast.ClassDef):
                continue
            else:
                self._scan_stmt(stmt, stack, resolve, self_name)

    # -- classification ------------------------------------------------------
    def _classify_withitem(
        self, item: ast.withitem
    ) -> tuple[str | None, str | None]:
        ctx_expr = item.context_expr
        if isinstance(ctx_expr, ast.Call):
            name = _base_name(ctx_expr.func)
            if name in ("multisynch", "Multisynch"):
                return "multisynch", None
            if (
                isinstance(ctx_expr.func, ast.Attribute)
                and ctx_expr.func.attr == "synch"
            ):
                # ms.synch(): the MonitorSet cached-tuple fast path — same
                # ascending-id acquisition order as multisynch(...)
                return "multisynch", None
            if name == "synchronized":
                arg = (
                    ast.unparse(ctx_expr.args[0]) if ctx_expr.args else None
                )
                return "synchronized", arg
        if isinstance(ctx_expr, ast.Attribute) and ctx_expr.attr == "_lock":
            return "raw_lock", ast.unparse(ctx_expr.value)
        if isinstance(ctx_expr, ast.Name) and ctx_expr.id in self._ms_names:
            # a stored multisynch block / monitor-set handle entered later
            return "multisynch", None
        return None, None

    def _holder_class(
        self, stack: list[tuple[str, str | None]], resolve: dict[str, str]
    ) -> str | None:
        for kind, arg in reversed(stack):
            if kind == "monitor_method":
                return arg
            if kind == "synchronized" and arg in resolve:
                return resolve[arg]
        return None

    # -- events --------------------------------------------------------------
    def _on_with(
        self,
        stmt: ast.With | ast.AsyncWith,
        kind: str,
        arg: str | None,
        stack: list[tuple[str, str | None]],
        resolve: dict[str, str],
    ) -> None:
        held = bool(stack)
        if kind == "multisynch":
            if any(k == "multisynch" for k, _ in stack):
                self.w004_events.append((
                    stmt,
                    "nested multisynch blocks: the inner block's ordered "
                    "acquisition happens under locks the outer block "
                    "already holds, defeating the global ascending-id "
                    "order (§4.1) — pass all monitors to one multisynch",
                ))
            elif held:
                self.w004_events.append((
                    stmt,
                    "multisynch inside an already-held monitor section — "
                    "the held lock is outside multisynch's ascending-id "
                    "order and can form a deadlock cycle (§4.1)",
                ))
        elif kind == "synchronized":
            if held:
                self.w004_events.append((
                    stmt,
                    "hand-nested synchronized(...) under another monitor "
                    "section chooses its own lock order — use "
                    "multisynch(...) for multi-object sections (§4.1)",
                ))
            holder = self._holder_class(stack, resolve)
            if holder is not None and arg in resolve:
                self._add_edge(holder, resolve[arg], stmt.lineno)

    def _add_edge(self, src: str, dst: str, lineno: int) -> None:
        key = (src, dst, self.module.path, lineno)
        if key in self._seen_edges:
            return
        self._seen_edges.add(key)
        self.ctx.lock_graph.add_edge(src, dst, self.module.path, lineno)

    # -- expression / statement scanning ------------------------------------
    def _scan_stmt(
        self,
        stmt: ast.stmt,
        stack: list[tuple[str, str | None]],
        resolve: dict[str, str],
        self_name: str | None,
    ) -> None:
        self._scan_expr(stmt, stack, resolve, self_name)
        # W003(b): attribute writes to monitor objects outside sections
        for write in collect_attr_writes(stmt):
            if write.attr.startswith("_"):
                continue
            if write.obj == self_name:
                continue  # covered by W003(a) / normal monitor methods
            resolved = resolve.get(write.obj)
            if resolved is None:
                continue
            if self._write_is_covered(write.obj, stack):
                continue
            self.unsynced_writes.append((write, resolved))

    def _write_is_covered(
        self, obj: str, stack: list[tuple[str, str | None]]
    ) -> bool:
        for kind, arg in stack:
            if kind == "multisynch":
                return True  # members unknown statically: trust the block
            if kind == "synchronized" and arg == obj:
                return True
            if kind == "raw_lock" and arg == obj:
                return True
        return False

    def _scan_expr(
        self,
        tree: ast.AST,
        stack: list[tuple[str, str | None]],
        resolve: dict[str, str],
        self_name: str | None,
    ) -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "_lock"
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == self_name
                )
            ):
                self.w004_events.append((
                    node,
                    f"raw access to {ast.unparse(node.value)}._lock bypasses "
                    "the monitor protocol (relay signaling, ordered "
                    "multi-object acquisition) — use monitor methods, "
                    "synchronized(...) or multisynch(...)",
                ))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = node.func.value
                method_name = node.func.attr
                obj: str | None = None
                if isinstance(base, ast.Name):
                    obj = base.id
                elif isinstance(base, ast.Attribute):
                    obj = ast.unparse(base)
                if obj is None or obj == self_name:
                    continue
                target_cls = resolve.get(obj)
                if target_cls is None:
                    continue
                holder = self._holder_class(stack, resolve)
                if holder is None:
                    continue
                if any(k == "multisynch" for k, _ in stack):
                    continue  # ordered acquisition already holds the locks
                if self.ctx.target_is_synchronized(target_cls, method_name):
                    self._add_edge(holder, target_cls, node.lineno)


# ---------------------------------------------------------------------------
# W014 — GIL-atomicity assumption (free-threaded lane)
# ---------------------------------------------------------------------------

class GilAtomicityAssumption(Rule):
    """W014 — a counter relies on GIL atomicity that the free-threaded
    CPython lane (PEP 703) does not provide.

    Two patterns, both of which the runtime packages were audited out of
    (docs/performance.md "Free-threaded lane"):

    * a direct ``itertools.count(...)`` construction — ``next`` on the
      result is atomic *only* while the GIL serializes the C call; drawn
      from several threads on a free-threaded build it can hand two
      threads the same ticket.  :class:`repro.runtime.atomics.AtomicCounter`
      is the drop-in replacement (it *is* an ``itertools.count`` on GIL
      builds, and a locked fetch-and-add without the GIL);
    * a ``global``-declared bare-int counter mutated with ``+=``/``-=`` —
      a read-modify-write across bytecodes, which was never atomic even
      under the GIL and silently loses increments without it.

    HINT severity: single-threaded code (simulators, test scaffolding) may
    legitimately keep the raw forms — suppress with
    ``# monlint: disable=W014`` and say why.
    """

    code = "W014"
    name = "gil-atomic-counter"
    severity = Severity.HINT

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        tree = module.tree
        # names under which itertools.count is reachable in this module
        count_names = {"itertools.count"}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "itertools":
                for alias in node.names:
                    if alias.name == "count":
                        count_names.add(alias.asname or "count")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "itertools" and alias.asname:
                        count_names.add(f"{alias.asname}.count")
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted in count_names:
                    yield self._finding(
                        module.path, node,
                        "direct itertools.count() — ``next`` on it is "
                        "atomic only under the GIL; route cross-thread "
                        "draws through repro.runtime.atomics.AtomicCounter "
                        "so the free-threaded lane stays correct",
                    )
        yield from self._global_int_augassigns(module, tree)

    def _global_int_augassigns(
        self, module: ModuleModel, tree: ast.Module
    ) -> Iterator[Finding]:
        # module-level names bound to a plain int literal
        int_globals: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant) \
                    and type(stmt.value.value) is int:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        int_globals.add(target.id)
        if not int_globals:
            return
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, (ast.Add, ast.Sub))
                    and isinstance(node.target, ast.Name)
                    and node.target.id in declared
                    and node.target.id in int_globals
                ):
                    yield self._finding(
                        module.path, node,
                        f"bare-int counter mutation "
                        f"`{node.target.id} {'+=' if isinstance(node.op, ast.Add) else '-='} ...` "
                        "on a module global is a read-modify-write — not "
                        "atomic under the GIL, increment-losing without it; "
                        "use repro.runtime.atomics.AtomicCounter",
                    )


class BlockingCallInCoroutine(Rule):
    """W015 — a blocking monitor-stack call inside an ``async def`` body.

    The asyncio frontend's cardinal rule (:mod:`repro.aio`) is that the
    event-loop thread never blocks on a monitor lock: one loop multiplexes
    thousands of logical clients, so one parked ``wait_until`` or
    ``future.get`` stalls *every* coroutine, not just the caller.  Flagged
    inside coroutine bodies (awaited expressions and nested ``def`` /
    ``lambda`` scopes — which may legitimately run on executor threads —
    are skipped):

    * a non-awaited ``.wait_until(...)`` — the threaded form parks the
      calling thread under the monitor lock; use
      :meth:`repro.aio.AsyncMonitorClient.wait_until` and ``await`` it;
    * ``.get(...)`` on a delegated call's future (chained
      ``mon.op(x).get()`` or a name assigned from a monitor call) — even a
      bounded ``get`` blocks the loop thread for its whole timeout; await
      :func:`repro.aio.as_asyncio` / :func:`repro.aio.await_future`;
    * ``.flush(...)`` on a monitor — blocks until the server drains;
    * ``with synchronized(...)`` / ``with multisynch(...)`` — monitor
      entry parks the loop thread behind whoever holds the lock(s).

    WARNING severity: a coroutine that blocks is wrong by construction on
    a loaded loop, but single-shot scripts (`asyncio.run` around legacy
    code) may tolerate it — suppress with ``# monlint: disable=W015`` and
    say why.
    """

    code = "W015"
    name = "blocking-call-in-coroutine"
    severity = Severity.WARNING

    def check(self, module: ModuleModel, ctx: ProjectContext) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, func)

    def _check_coroutine(
        self, module: ModuleModel, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        resolve = self._monitor_names(module, func)
        own_nodes = list(_own_scope_nodes(func))
        futures = self._future_names(own_nodes, resolve)
        # anything under an `await` is the non-blocking path by definition
        # (`await client.wait_until(...)`, `await wait_for(client.call(..))`)
        awaited: set[int] = set()
        for node in own_nodes:
            if isinstance(node, ast.Await):
                for sub in ast.walk(node):
                    awaited.add(id(sub))
        where = f"async def {func.name}()"
        for node in own_nodes:
            if isinstance(node, ast.With):
                for item in node.items:
                    cm = item.context_expr
                    if not isinstance(cm, ast.Call):
                        continue
                    entry = _dotted_name(cm.func)
                    if entry in ("synchronized", "multisynch"):
                        yield self._finding(
                            module.path, cm,
                            f"with {entry}(...) inside {where} parks the "
                            "event-loop thread on monitor lock(s) — every "
                            "other coroutine on this loop stalls with it; "
                            "move the section to an executor thread or "
                            "use repro.aio",
                        )
                continue
            if (
                id(node) in awaited
                or not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            base = node.func.value
            if attr == "wait_until":
                yield self._finding(
                    module.path, node,
                    f"blocking wait_until inside {where} parks the "
                    "event-loop thread under the monitor lock; await "
                    "AsyncMonitorClient.wait_until (repro.aio) instead",
                )
            elif attr == "get":
                recv = _dotted_name(base)
                if (recv in futures) or _is_monitor_call(base, resolve):
                    shown = recv if recv is not None else "<future>"
                    yield self._finding(
                        module.path, node,
                        f"{shown}.get() inside {where} blocks the "
                        "event-loop thread until the delegated task "
                        "completes (bounded or not); await "
                        "repro.aio.as_asyncio(...) / await_future(...)",
                    )
            elif attr == "flush":
                obj = _dotted_name(base)
                if obj in resolve:
                    yield self._finding(
                        module.path, node,
                        f"{obj}.flush() inside {where} blocks the "
                        "event-loop thread until the server drains; run "
                        "it on an executor thread or await the "
                        "individual futures",
                    )

    def _monitor_names(
        self, module: ModuleModel, func: ast.AsyncFunctionDef
    ) -> dict[str, str]:
        """Names known to hold monitor objects in this coroutine."""
        resolve: dict[str, str] = {}
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = _annotation_name(arg.annotation)
            if ann in module.known_monitor_names:
                resolve[arg.arg] = ann
        resolve.update(monitor_locals(func, module.known_monitor_names))
        return resolve

    def _future_names(
        self, own_nodes: list[ast.AST], resolve: dict[str, str]
    ) -> set[str]:
        names: set[str] = set()
        for node in own_nodes:
            if not (
                isinstance(node, ast.Assign)
                and _is_monitor_call(node.value, resolve)
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names


def _own_scope_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """The nodes lexically in ``func``'s own body, excluding nested
    ``def`` / ``async def`` / ``lambda`` scopes (those may run on executor
    threads, where blocking is the point)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


#: registry, in code order
ALL_RULES: list[type[Rule]] = [
    NonClosedPredicate,
    StaleClosure,
    UnsynchronizedWrite,
    HandOrderedAcquisition,
    TagAdvisor,
    UnboundedBlockingWait,
    UntrackedSharedWrite,
    GilAtomicityAssumption,
    BlockingCallInCoroutine,
]


def make_rules(
    select: set[str] | None = None, disable: set[str] | None = None
) -> list[Rule]:
    rules: list[Rule] = []
    for rule_cls in ALL_RULES:
        if select is not None and rule_cls.code not in select:
            continue
        if disable is not None and rule_cls.code in disable:
            continue
        rules.append(rule_cls())
    return rules
