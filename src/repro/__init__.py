"""repro — automatic-signal monitors with multi-object synchronization.

A Python reproduction of the AutoSynch / ActiveMonitor framework:

* :class:`Monitor` + ``wait_until`` — automatic-signal monitors with relay
  signaling and predicate tagging (no explicit condition variables, no
  broadcasts);
* :class:`ActiveMonitor` + ``@asynchronous`` — delegated, asynchronous
  critical-section execution on monitor server threads;
* :func:`multisynch` + global predicates — deadlock-free multi-object
  mutual exclusion and automatic notification of conditions spanning
  monitors (atomic-variable and critical-clause strategies);
* ``or_`` / ``and_`` / ``select_one`` / ``select_all`` — logical
  composition of guarded monitor methods.

Quickstart::

    from repro import Monitor, S

    class BoundedQueue(Monitor):
        def __init__(self, n):
            super().__init__()
            self.buf, self.capacity = [], n
            self.count = 0

        def put(self, item):
            self.wait_until(S.count < S.capacity)
            self.buf.append(item); self.count += 1

        def take(self):
            self.wait_until(S.count > 0)
            self.count -= 1
            return self.buf.pop(0)
"""

from repro.active import (
    ActiveMonitor,
    LightFuture,
    Policy,
    SingleConsumerBoundedQueue,
    asynchronous,
    synchronous,
)
from repro.compose import (
    SKIPPED,
    and_,
    async_and,
    async_or,
    async_select_all,
    async_select_one,
    bind,
    or_,
    select_all,
    select_one,
)
from repro.core import Monitor, Predicate, S, synchronized, unmonitored
from repro.multi import complex_pred, local, monitor_set, multisynch
from repro.preprocess import monitor_compile, waituntil
from repro.runtime import get_config

__version__ = "1.0.0"

__all__ = [
    "Monitor",
    "ActiveMonitor",
    "S",
    "Predicate",
    "synchronized",
    "unmonitored",
    "asynchronous",
    "synchronous",
    "LightFuture",
    "Policy",
    "SingleConsumerBoundedQueue",
    "multisynch",
    "monitor_set",
    "monitor_compile",
    "waituntil",
    "local",
    "complex_pred",
    "bind",
    "or_",
    "and_",
    "select_one",
    "select_all",
    "async_or",
    "async_and",
    "async_select_one",
    "async_select_all",
    "SKIPPED",
    "get_config",
]
