"""HDR-style latency recording: log-bucketed histograms + windowed series.

:class:`LatencyRecorder` keeps a geometric bucket histogram (≈4% value
resolution, like an HdrHistogram at 2 significant digits) instead of the
raw samples, so recording is O(1), memory is bounded regardless of run
length, and percentiles are read by one cumulative walk.  Percentiles are
*monotone by construction* — p50 ≤ p95 ≤ p99 ≤ p99.9 always, because a
higher quantile can only stop at the same or a later bucket (the property
tests in ``tests/test_loadsim.py`` pin this down).

:class:`WindowedSeries` buckets outcomes and latencies into fixed wall-
clock windows, producing the degradation-and-recovery curves the chaos
scenarios assert on (latency climbing through a fault, settling back
under the SLO after the supervisor restarts the server).

All methods are thread-safe; workers record concurrently.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Optional

__all__ = ["LatencyRecorder", "OUTCOMES", "WindowedSeries"]

#: terminal states of one admitted request (the full-accounting alphabet);
#: ``shed`` is decided at admission and records no latency
OUTCOMES = ("completed", "timed_out", "failed_fast", "shed", "errors")

#: smallest distinguishable latency (1 µs) and bucket growth factor (≈4%
#: relative error — the HdrHistogram 2-significant-digits regime)
_MIN_VALUE = 1e-6
_GROWTH = 1.04
_LOG_GROWTH = math.log(_GROWTH)


def _bucket_of(value: float) -> int:
    if value <= _MIN_VALUE:
        return 0
    return int(math.log(value / _MIN_VALUE) / _LOG_GROWTH) + 1


def _bucket_value(index: int) -> float:
    """Representative (upper-edge) latency of one bucket, in seconds."""
    if index <= 0:
        return _MIN_VALUE
    return _MIN_VALUE * (_GROWTH ** index)


class LatencyRecorder:
    """Log-bucketed latency histogram with percentile readout."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    # ----------------------------------------------------------------- write
    def record(self, latency_s: float) -> None:
        if latency_s < 0:
            latency_s = 0.0
        idx = _bucket_of(latency_s)
        with self._lock:
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self._count += 1
            self._sum += latency_s
            if latency_s > self._max:
                self._max = latency_s

    def merge(self, other: "LatencyRecorder") -> None:
        with other._lock:  # monlint: disable=W004 — plain histogram, not a monitor
            buckets = dict(other._buckets)
            count, total, peak = other._count, other._sum, other._max
        with self._lock:
            for idx, n in buckets.items():
                self._buckets[idx] = self._buckets.get(idx, 0) + n
            self._count += count
            self._sum += total
            if peak > self._max:
                self._max = peak

    # ------------------------------------------------------------------ read
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = math.ceil(self._count * q / 100.0)
            if target <= 0:
                target = 1
            seen = 0
            for idx in sorted(self._buckets):
                seen += self._buckets[idx]
                if seen >= target:
                    # the top bucket's representative may overshoot the
                    # true maximum; clamp so p100 == observed max
                    return min(_bucket_value(idx), self._max)
            return self._max

    def percentiles(self, qs: Iterable[float] = (50, 95, 99, 99.9)) -> dict:
        return {str(q): self.percentile(q) for q in qs}

    def summary_ms(self) -> dict:
        """The standard report block, in milliseconds."""
        return {
            "p50": round(self.percentile(50) * 1e3, 3),
            "p95": round(self.percentile(95) * 1e3, 3),
            "p99": round(self.percentile(99) * 1e3, 3),
            "p999": round(self.percentile(99.9) * 1e3, 3),
            "mean": round(self.mean * 1e3, 3),
            "max": round(self._max * 1e3, 3),
            "count": self._count,
        }


class WindowedSeries:
    """Per-window outcome counts + latency percentiles (degradation curve).

    Windows are indexed by ``int(offset / window_s)`` where ``offset`` is
    the request's *scheduled arrival* offset — so a request burst lands in
    the window that offered it, even when its latency resolves later.
    """

    def __init__(self, window_s: float = 0.5):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.window_s = window_s
        self._lock = threading.Lock()
        self._windows: dict[int, dict] = {}

    def _cell(self, offset_s: float) -> dict:
        idx = int(offset_s / self.window_s)
        cell = self._windows.get(idx)
        if cell is None:
            cell = {"recorder": LatencyRecorder(),
                    "counts": {k: 0 for k in OUTCOMES}}
            self._windows[idx] = cell
        return cell

    def record(self, offset_s: float, outcome: str,
               latency_s: Optional[float] = None) -> None:
        with self._lock:
            cell = self._cell(offset_s)
            cell["counts"][outcome] += 1
        if latency_s is not None:
            cell["recorder"].record(latency_s)

    def series(self) -> list[dict]:
        """Chronological per-window summaries (ms latencies)."""
        with self._lock:
            items = sorted(self._windows.items())
        out = []
        for idx, cell in items:
            rec: LatencyRecorder = cell["recorder"]
            out.append({
                "t": round(idx * self.window_s, 3),
                "counts": dict(cell["counts"]),
                "p50_ms": round(rec.percentile(50) * 1e3, 3),
                "p95_ms": round(rec.percentile(95) * 1e3, 3),
                "p99_ms": round(rec.percentile(99) * 1e3, 3),
            })
        return out
