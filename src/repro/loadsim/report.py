"""Load-run reports, SLOs, and the ``BENCH_load_*.json`` shape.

:class:`LoadReport` is the single artifact a scenario run produces:
per-group outcome counts, per-group latency histograms, the windowed
degradation curve, and whatever extra context the scenario attached
(chaos statistics, supervisor restarts, watchdog/obligation reports).

Two checks live here:

* :meth:`LoadReport.assert_accounted` — the liveness contract: every
  admitted request reached a terminal state (``admitted == completed +
  timed_out + failed_fast + errors``, ``in_flight == 0``).  A nonzero
  ``in_flight`` means a future or wait was *lost* — exactly the hang
  class the paper's Rules 1–3 and this repo's supervision lanes exist to
  prevent — so the failure message carries the stall-watchdog and
  obligation-tracker diagnostics.
* :meth:`LoadReport.enforce` — the latency/shedding SLO gate used by the
  scenarios and the CI ``load-smoke`` lane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.loadsim.recorder import OUTCOMES, LatencyRecorder, WindowedSeries

__all__ = ["LoadReport", "SLO", "SLOViolation"]


class SLOViolation(AssertionError):
    """An SLO check failed; carries the violations and diagnostics."""

    def __init__(self, violations: list[str], diagnostics: list[str]):
        self.violations = list(violations)
        self.diagnostics = list(diagnostics)
        lines = ["SLO violated:"] + [f"  - {v}" for v in violations]
        if diagnostics:
            lines.append("diagnostics:")
            lines += [f"  * {d}" for d in diagnostics]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class SLO:
    """A latency / shedding service-level objective.

    Latency bounds apply to *completed* requests (milliseconds).
    ``max_timeout_frac`` / ``max_shed_frac`` / ``max_failed_frac`` bound
    the fraction of admitted (for timeouts/failures) or offered (for
    sheds) requests allowed to miss.  ``None`` disables a bound.
    """

    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    max_timeout_frac: Optional[float] = None
    max_shed_frac: Optional[float] = None
    max_failed_frac: Optional[float] = None
    min_completed_frac: Optional[float] = None


class LoadReport:
    """Everything one scenario run observed."""

    def __init__(
        self,
        *,
        service: str,
        scenario: str,
        seed: int,
        params: dict[str, Any],
        counts: dict[str, dict[str, int]],
        latency: dict[str, LatencyRecorder],
        windows: WindowedSeries,
        elapsed: float,
        in_flight: int,
        diagnostics: Optional[list[str]] = None,
        extra: Optional[dict[str, Any]] = None,
    ):
        self.service = service
        self.scenario = scenario
        self.seed = seed
        self.params = params
        #: ``{group: {outcome: n}}`` — groups are "all", or
        #: "healthy"/"partitioned" for partition-aware services
        self.counts = counts
        self.latency = latency
        self.windows = windows
        self.elapsed = elapsed
        self.in_flight = in_flight
        self.diagnostics = list(diagnostics or [])
        self.extra = dict(extra or {})

    # ------------------------------------------------------------- aggregates
    def total(self, outcome: str) -> int:
        return sum(g.get(outcome, 0) for g in self.counts.values())

    @property
    def offered(self) -> int:
        """Requests the arrival schedule offered (admitted + shed)."""
        return self.admitted + self.total("shed")

    @property
    def admitted(self) -> int:
        return sum(
            g.get(k, 0)
            for g in self.counts.values()
            for k in ("completed", "timed_out", "failed_fast", "errors")
        ) + self.in_flight

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall clock."""
        return self.total("completed") / self.elapsed if self.elapsed else 0.0

    def group_recorder(self, group: str = "all") -> LatencyRecorder:
        """Latency histogram for ``group`` ("all" merges every group)."""
        if group in self.latency:
            return self.latency[group]
        if group == "all":
            merged = LatencyRecorder()
            for rec in self.latency.values():
                merged.merge(rec)
            return merged
        raise KeyError(f"no latency group {group!r}; "
                       f"have {sorted(self.latency)}")

    # ----------------------------------------------------------------- checks
    def accounting_errors(self) -> list[str]:
        out = []
        if self.in_flight:
            out.append(
                f"{self.in_flight} request(s) never reached a terminal state "
                f"(lost futures / stuck waits)")
        for group, c in self.counts.items():
            unknown = set(c) - set(OUTCOMES)
            if unknown:
                out.append(f"group {group!r} has unknown outcomes {unknown}")
        return out

    def assert_accounted(self) -> None:
        """The liveness contract: every admitted request resolved."""
        problems = self.accounting_errors()
        if problems:
            raise SLOViolation(problems, self.diagnostics)

    def check(self, slo: SLO, group: str = "all") -> list[str]:
        """Evaluate ``slo`` against ``group``; returns violation strings."""
        violations = []
        rec = self.group_recorder(group)
        for name, bound in (("p50", slo.p50_ms), ("p95", slo.p95_ms),
                            ("p99", slo.p99_ms)):
            if bound is None:
                continue
            got = rec.percentile(float(name[1:])) * 1e3
            if got > bound:
                violations.append(
                    f"[{group}] {name} latency {got:.1f}ms > SLO {bound}ms")

        if group == "all":
            completed = self.total("completed")
            timed_out = self.total("timed_out")
            failed = self.total("failed_fast") + self.total("errors")
            shed = self.total("shed")
            admitted = self.admitted
        else:
            c = self.counts.get(group, {})
            completed = c.get("completed", 0)
            timed_out = c.get("timed_out", 0)
            failed = c.get("failed_fast", 0) + c.get("errors", 0)
            shed = c.get("shed", 0)
            admitted = completed + timed_out + failed

        offered = admitted + shed
        if slo.max_timeout_frac is not None and admitted:
            frac = timed_out / admitted
            if frac > slo.max_timeout_frac:
                violations.append(
                    f"[{group}] timeout fraction {frac:.3f} > "
                    f"SLO {slo.max_timeout_frac}")
        if slo.max_failed_frac is not None and admitted:
            frac = failed / admitted
            if frac > slo.max_failed_frac:
                violations.append(
                    f"[{group}] failure fraction {frac:.3f} > "
                    f"SLO {slo.max_failed_frac}")
        if slo.max_shed_frac is not None and offered:
            frac = shed / offered
            if frac > slo.max_shed_frac:
                violations.append(
                    f"[{group}] shed fraction {frac:.3f} > "
                    f"SLO {slo.max_shed_frac}")
        if slo.min_completed_frac is not None and offered:
            frac = completed / offered
            if frac < slo.min_completed_frac:
                violations.append(
                    f"[{group}] completed fraction {frac:.3f} < "
                    f"SLO {slo.min_completed_frac}")
        return violations

    def enforce(self, slo: SLO, group: str = "all") -> None:
        violations = self.accounting_errors() + self.check(slo, group)
        if violations:
            raise SLOViolation(violations, self.diagnostics)

    # -------------------------------------------------------------- serialize
    def to_dict(self) -> dict[str, Any]:
        """The ``BENCH_load_*.json`` record body (sans build stamp)."""
        totals = {k: self.total(k) for k in OUTCOMES}
        return {
            "service": self.service,
            "scenario": self.scenario,
            "seed": self.seed,
            "params": dict(self.params),
            "elapsed_s": round(self.elapsed, 4),
            "offered": self.offered,
            "admitted": self.admitted,
            "in_flight": self.in_flight,
            "throughput_rps": round(self.throughput, 2),
            "totals": totals,
            "groups": {
                g: {
                    "counts": dict(c),
                    "latency_ms": self.latency[g].summary_ms()
                    if g in self.latency else None,
                }
                for g, c in sorted(self.counts.items())
            },
            "latency_ms": self.group_recorder("all").summary_ms(),
            "windows": self.windows.series(),
            "diagnostics": list(self.diagnostics),
            "extra": self.extra,
        }

    def __repr__(self) -> str:
        lat = self.group_recorder("all").summary_ms()
        return (f"<LoadReport {self.service}/{self.scenario} "
                f"offered={self.offered} completed={self.total('completed')} "
                f"timed_out={self.total('timed_out')} "
                f"shed={self.total('shed')} in_flight={self.in_flight} "
                f"p99={lat['p99']}ms>")
