"""The load simulator and the chaos scenario catalog.

:class:`LoadSimulator` drives one service with one open-loop arrival
schedule.  The loop is deliberately simple and fully accounted:

* an **arrival thread** (the caller) offers requests at their pre-drawn
  scheduled times; a bounded admission queue accepts or **sheds** them
  (``put_nowait`` — shedding is an explicit, counted decision, never an
  implicit drop);
* a fixed **worker pool** executes admitted requests against the service
  with an absolute deadline of ``scheduled_arrival + deadline`` riding on
  ``wait_until(..., deadline=)`` / future ``get(timeout=...)``, plus a
  :meth:`CancelToken.cancel_after` backstop a grace period later — so
  even a request whose deadline plumbing is broken cannot block forever;
* **latency is measured from the scheduled arrival**, not from dequeue —
  the open-loop discipline that avoids coordinated omission: a slow
  system makes queued requests *slower*, it does not quietly slow the
  offered load.

Every admitted request ends in exactly one terminal state —
``completed`` / ``timed_out`` / ``failed_fast`` / ``errors`` — and the
report's accounting check fails the run if any request is lost.  While
the run executes, a :class:`StallWatchdog` and :class:`ObligationTracker`
watch the service's monitors; their reports ride along in the report's
diagnostics so an SLO failure explains *which monitor* wedged and on
what predicate.

Scenarios (also the CI ``load-smoke`` catalog):

* :func:`run_steady_load` — Poisson arrivals within capacity; the
  baseline SLO lane;
* :func:`run_burst_load` — on/off overload; sheds and timeouts expected
  during bursts, recovery asserted after the last burst;
* :func:`run_mixed_workload` — all services at once under diurnal ramps;
* :func:`run_worker_failure` — chaos kills a monitor server mid-run;
  asserts supervised restart, zero lost requests, post-fault recovery;
* :func:`run_network_partition` — freezes a monitor shard's lock;
  asserts the healthy shards keep their SLO and the frozen shard drains
  (as timeouts) once healed.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.loadsim.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.loadsim.recorder import LatencyRecorder, WindowedSeries
from repro.loadsim.report import LoadReport, SLO, SLOViolation
from repro.loadsim.services import Service, make_service
from repro.resilience import CancelToken, chaos
from repro.resilience.obligations import ObligationTracker
from repro.resilience.watchdog import StallWatchdog
from repro.runtime.errors import (
    BrokenMonitorError,
    TaskError,
    WaitCancelledError,
    WaitTimeoutError,
)

__all__ = [
    "LoadSimulator",
    "run_burst_load",
    "run_mixed_workload",
    "run_network_partition",
    "run_steady_load",
    "run_worker_failure",
]

DEFAULT_SEED = 11


class LoadSimulator:
    """Open-loop driver: one service, one arrival schedule, full accounting."""

    def __init__(
        self,
        service: Service,
        arrivals: ArrivalProcess,
        *,
        scenario: str = "custom",
        deadline: float = 0.5,
        workers: int = 6,
        admission_capacity: int = 64,
        window_s: float = 0.5,
        op_seed: Optional[int] = None,
        supervise: bool = False,
        diagnose: bool = True,
        events: Sequence[tuple[float, Callable[[], None]]] = (),
        cancel_grace: float = 1.0,
        drain_timeout: Optional[float] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        self.service = service
        self.arrivals = arrivals
        self.scenario = scenario
        self.deadline = deadline
        self.workers = workers
        self.admission_capacity = admission_capacity
        self.window_s = window_s
        self.op_seed = arrivals.seed + 1 if op_seed is None else op_seed
        self.supervise = supervise
        self.diagnose = diagnose
        self.events = sorted(events, key=lambda e: e[0])
        self.cancel_grace = cancel_grace
        # worst case a worker holds one request: its deadline + the cancel
        # backstop; anything beyond that is a lost wait the report flags
        self.drain_timeout = (
            deadline + cancel_grace + 2.0 if drain_timeout is None
            else drain_timeout
        )

    # ------------------------------------------------------------------- run
    def run(self, params: Optional[dict[str, Any]] = None) -> LoadReport:
        import random

        service = self.service
        schedule = self.arrivals.schedule()
        op_rng = random.Random(self.op_seed)
        ops = [service.make_op(op_rng) for _ in schedule]

        owns_service = not service.started
        if owns_service:
            service.start()
        if self.supervise and not service.supervisors:
            service.attach_supervisors(seed=self.arrivals.seed)

        watchdog = tracker = None
        if self.diagnose:
            monitors = service.monitors()
            watchdog = StallWatchdog(
                monitors,
                quiet_period=max(1.0, 2.0 * self.deadline),
                on_stall=lambda report: None,  # collect, don't print
            )
            tracker = ObligationTracker(
                monitors, poll_interval=0.2, on_report=lambda report: None)
            watchdog.start()
            tracker.start()

        admission: queue_mod.Queue = queue_mod.Queue(self.admission_capacity)
        arrivals_done = threading.Event()
        counts_lock = threading.Lock()
        counts: dict[str, dict[str, int]] = {}
        recorders: dict[str, LatencyRecorder] = {}
        windows = WindowedSeries(self.window_s)
        admitted = [0]
        resolved = [0]
        backstop_cancels = [0]
        error_samples: list[str] = []
        event_errors: list[BaseException] = []

        def bump(group: str, outcome: str) -> None:
            with counts_lock:
                cell = counts.get(group)
                if cell is None:
                    cell = counts[group] = {
                        "completed": 0, "timed_out": 0, "failed_fast": 0,
                        "shed": 0, "errors": 0,
                    }
                    recorders[group] = LatencyRecorder()
                cell[outcome] += 1
                if outcome != "shed":
                    resolved[0] += 1

        start_holder = [0.0]

        def worker() -> None:
            while True:
                try:
                    offset, op = admission.get(timeout=0.05)
                except queue_mod.Empty:
                    if arrivals_done.is_set():
                        return
                    continue
                group = service.group(op)
                deadline = start_holder[0] + offset + self.deadline
                token = CancelToken()
                timer = token.cancel_after(
                    max(0.0, deadline - time.monotonic()) + self.cancel_grace)
                try:
                    service.handle(op, deadline, token)
                    outcome = "completed"
                except WaitTimeoutError:
                    outcome = "timed_out"
                except WaitCancelledError:
                    # the backstop fired: the deadline plumbing failed but
                    # the request still resolved (counted separately below)
                    outcome = "timed_out"
                    with counts_lock:
                        backstop_cancels[0] += 1
                except (BrokenMonitorError, TaskError) as exc:
                    outcome = "failed_fast"
                    if len(error_samples) < 5:
                        error_samples.append(
                            f"failed_fast: {type(exc).__name__}: {exc}")
                except Exception as exc:  # noqa: BLE001 - full accounting
                    outcome = "errors"
                    if len(error_samples) < 5:
                        error_samples.append(
                            f"error: {type(exc).__name__}: {exc}")
                finally:
                    timer.cancel()
                latency = time.monotonic() - (start_holder[0] + offset)
                bump(group, outcome)
                if outcome == "completed":
                    recorders[group].record(latency)
                    windows.record(offset, outcome, latency)
                else:
                    windows.record(offset, outcome)

        def timeline() -> None:
            for offset, fn in self.events:
                delay = start_holder[0] + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    fn()
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    event_errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, name=f"loadsim-worker-{i}",
                             daemon=True)
            for i in range(self.workers)
        ]
        run_start = time.monotonic()
        start_holder[0] = run_start
        for t in threads:
            t.start()
        event_thread = None
        if self.events:
            event_thread = threading.Thread(
                target=timeline, name="loadsim-timeline", daemon=True)
            event_thread.start()

        try:
            for offset, op in zip(schedule, ops):
                delay = run_start + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    admission.put_nowait((offset, op))
                    admitted[0] += 1
                except queue_mod.Full:
                    bump(service.group(op), "shed")
                    windows.record(offset, "shed")
        finally:
            arrivals_done.set()

        deadline_join = time.monotonic() + self.drain_timeout
        for t in threads:
            t.join(max(0.0, deadline_join - time.monotonic()))
        if event_thread is not None:
            event_thread.join(max(0.0, deadline_join - time.monotonic()))
        elapsed = time.monotonic() - run_start

        diagnostics: list[str] = []
        extra: dict[str, Any] = {}
        if watchdog is not None:
            watchdog.stop()
            tracker.stop()
            diagnostics += [r.describe() for r in watchdog.reports]
            diagnostics += [r.describe() for r in tracker.reports]
        diagnostics += error_samples
        if backstop_cancels[0]:
            extra["backstop_cancels"] = backstop_cancels[0]
        if service.supervisors:
            extra["supervision"] = [
                {
                    "restarts": s.restarts,
                    "gave_up": s.gave_up,
                    "deaths": len(s.deaths),
                    "backoff_spent_s": round(s.backoff_spent, 4),
                }
                for s in service.supervisors
            ]

        if owns_service:
            service.stop()
        if event_errors:
            raise RuntimeError(
                f"scenario event failed: {event_errors[0]!r}"
            ) from event_errors[0]

        in_flight = admitted[0] - resolved[0]
        base_params = {
            "arrivals": self.arrivals.name,
            "duration_s": self.arrivals.duration,
            "deadline_s": self.deadline,
            "workers": self.workers,
            "admission_capacity": self.admission_capacity,
            "op_seed": self.op_seed,
        }
        base_params.update(params or {})
        return LoadReport(
            service=service.name,
            scenario=self.scenario,
            seed=self.arrivals.seed,
            params=base_params,
            counts=counts,
            latency=recorders,
            windows=windows,
            elapsed=elapsed,
            in_flight=in_flight,
            diagnostics=diagnostics,
            extra=extra,
        )


# --------------------------------------------------------------------------
# scenario catalog
# --------------------------------------------------------------------------

def _tail_violations(report: LoadReport, *, after: float, p95_ms: float,
                     max_bad_frac: float = 0.1) -> list[str]:
    """Degradation-curve recovery check over windows at ``t >= after``.

    The failure fraction is judged over the *aggregated* tail (individual
    windows can hold a handful of requests — one unlucky timeout there is
    noise, a sustained elevated fraction is not), and per-window p95 only
    where a window completed enough requests to make a p95 meaningful.
    """
    violations = []
    tail = [w for w in report.windows.series() if w["t"] >= after]
    if not tail:
        return [f"no windows at t >= {after}s to verify recovery"]
    completed = bad = 0
    for w in tail:
        c = w["counts"]
        completed += c["completed"]
        bad += c["timed_out"] + c["failed_fast"] + c["errors"]
        if c["completed"] >= 5 and w["p95_ms"] > p95_ms:
            violations.append(
                f"window t={w['t']}s p95 {w['p95_ms']}ms > {p95_ms}ms "
                "after expected recovery")
    terminal = completed + bad
    if terminal and bad / terminal > max_bad_frac:
        violations.append(
            f"tail (t >= {after}s) still failing {bad}/{terminal} "
            "requests after expected recovery")
    return violations


def _assert_recovered(report: LoadReport, *, after: float, p95_ms: float,
                      max_bad_frac: float = 0.1) -> None:
    violations = _tail_violations(
        report, after=after, p95_ms=p95_ms, max_bad_frac=max_bad_frac)
    if violations:
        raise SLOViolation(violations, report.diagnostics)


def run_steady_load(
    service: str = "buffer",
    *,
    rate: float = 60.0,
    duration: float = 3.0,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.5,
    workers: int = 6,
    admission_capacity: int = 64,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """Poisson arrivals within capacity — the baseline SLO lane."""
    svc = make_service(service, seed=seed, **(service_kwargs or {}))
    sim = LoadSimulator(
        svc,
        PoissonArrivals(rate, duration, seed),
        scenario="steady",
        deadline=deadline,
        workers=workers,
        admission_capacity=admission_capacity,
    )
    report = sim.run(params={"rate": rate})
    if strict:
        report.assert_accounted()
        report.enforce(slo or SLO(
            p95_ms=0.8 * deadline * 1e3,
            p99_ms=1.5 * deadline * 1e3,
            max_timeout_frac=0.05,
            max_shed_frac=0.0,
            max_failed_frac=0.0,
        ))
    return report


def run_burst_load(
    service: str = "buffer",
    *,
    base_rate: float = 30.0,
    burst_rate: float = 150.0,
    duration: float = 3.0,
    period: float = 1.0,
    burst_fraction: float = 0.25,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.3,
    workers: int = 4,
    admission_capacity: int = 24,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """On/off overload: bursts exceed capacity, the backlog absorbs them.

    Shedding and timeouts *during* bursts are the expected, graceful
    behaviour; what is asserted is full accounting plus recovery — the
    tail windows after the last burst must be back under the SLO.
    """
    svc = make_service(service, seed=seed, **(service_kwargs or {}))
    arrivals = BurstArrivals(
        base_rate, burst_rate, duration, seed,
        period=period, burst_fraction=burst_fraction)
    sim = LoadSimulator(
        svc,
        arrivals,
        scenario="burst",
        deadline=deadline,
        workers=workers,
        admission_capacity=admission_capacity,
    )
    report = sim.run(params={
        "base_rate": base_rate, "burst_rate": burst_rate,
        "period": period, "burst_fraction": burst_fraction,
    })
    if strict:
        report.assert_accounted()
        report.enforce(slo or SLO(max_failed_frac=0.05))
        # the last burst ends at the final whole period + the on-phase;
        # everything after must have settled back under the deadline
        last_burst_end = (
            int((duration - 1e-9) / period) * period + burst_fraction * period)
        after = min(last_burst_end + deadline, duration - sim.window_s)
        _assert_recovered(report, after=after, p95_ms=deadline * 1e3,
                          max_bad_frac=0.25)
    return report


def run_mixed_workload(
    *,
    duration: float = 3.0,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.5,
    rates: Optional[dict[str, float]] = None,
    workers: int = 4,
    strict: bool = True,
) -> dict[str, LoadReport]:
    """Every service at once under diurnal ramps (one shared machine).

    Returns one report per service.  The point is interference: the
    services share the interpreter, the scheduler, and the server-thread
    registry, so a wedge in one shows up in another's diagnostics.
    """
    rates = dict(rates or {"buffer": 40.0, "pizza": 25.0, "multicast": 40.0})
    reports: dict[str, LoadReport] = {}
    failures: list[BaseException] = []
    lock = threading.Lock()

    def one(name: str, rate: float, idx: int) -> None:
        try:
            svc = make_service(name, seed=seed + idx)
            sim = LoadSimulator(
                svc,
                DiurnalArrivals(rate, duration, seed + idx),
                scenario="mixed",
                deadline=deadline,
                workers=workers,
            )
            report = sim.run(params={"peak_rate": rate, "mixed_with": sorted(
                k for k in rates if k != name)})
            with lock:
                reports[name] = report
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=one, args=(name, rate, idx),
                         name=f"loadsim-mixed-{name}", daemon=True)
        for idx, (name, rate) in enumerate(sorted(rates.items()))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(duration + 30.0)
    if failures:
        raise failures[0]
    if strict:
        for report in reports.values():
            report.assert_accounted()
    return reports


def run_worker_failure(
    service: str = "buffer",
    *,
    rate: float = 50.0,
    duration: float = 4.0,
    kill_at: float = 1.2,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.5,
    workers: int = 6,
    recovery_margin: float = 1.0,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """Kill a monitor server thread mid-run; assert supervised recovery.

    At ``kill_at`` the chaos engine arms a one-shot ``server_loop`` kill:
    the next server iteration dies, its death handler fails the in-flight
    futures fast, and the attached (jittered) supervisor restarts it.
    Asserted: the kill actually fired, at least one supervised restart,
    zero lost requests, and tail windows back under the SLO.
    """
    kwargs = dict(service_kwargs or {})
    if service == "multicast":
        kwargs.setdefault("variant", "active")  # need killable servers
    svc = make_service(service, seed=seed, **kwargs)

    def arm_kill() -> None:
        chaos.configure(seed=seed, sites=("server_loop",),
                        kill={"server_loop": 1})
        chaos.enable()
        # worker-side combining executes lightly-loaded monitors' tasks on
        # the submitting thread, so a parked server may never reach the
        # chaos site on its own; wake the supervised servers and the first
        # to iterate takes the (one-shot) kill
        for sup in svc.supervisors:
            sup.server._wake.set()

    sim = LoadSimulator(
        svc,
        PoissonArrivals(rate, duration, seed),
        scenario="worker_failure",
        deadline=deadline,
        workers=workers,
        supervise=True,
        events=[(kill_at, arm_kill)],
    )
    chaos.reset()
    try:
        report = sim.run(params={"rate": rate, "kill_at": kill_at})
        report.extra["chaos"] = chaos.stats()
    finally:
        chaos.reset()

    if strict:
        report.assert_accounted()
        violations = []
        kills = report.extra["chaos"]["injected"].get("kill", 0)
        if kills < 1:
            violations.append("chaos kill never fired (no server iteration "
                              "after kill_at?)")
        supervision = report.extra.get("supervision", [])
        restarts = sum(s["restarts"] for s in supervision)
        if restarts < kills:
            violations.append(
                f"{kills} kill(s) but only {restarts} supervised restart(s)")
        if any(s["gave_up"] for s in supervision):
            violations.append("a supervisor gave up inside its budget")
        if violations:
            raise SLOViolation(violations, report.diagnostics)
        report.enforce(slo or SLO(
            max_failed_frac=0.2, min_completed_frac=0.5))
        _assert_recovered(
            report, after=kill_at + recovery_margin, p95_ms=deadline * 1e3,
            max_bad_frac=0.25)
    return report


def run_network_partition(
    service: str = "multicast",
    *,
    rate: float = 60.0,
    duration: float = 4.0,
    partition_at: float = 1.0,
    heal_after: float = 1.0,
    shard: int = 1,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.4,
    workers: int = 6,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """Freeze a shard of monitors; assert isolation, then drain on heal.

    The "partition" is a thread that grabs the shard's monitor locks and
    sits on them for ``heal_after`` seconds — the worst version of a
    stuck peer, because blocked callers cannot even reach their
    ``wait_until`` deadline until the lock frees.  Per-shard bulkheads
    cap how many workers wedge there; everyone else sheds at the
    bulkhead and the healthy shards keep serving.  On heal, the wedged
    requests re-enter, see their deadlines long expired, and drain as
    timeouts — nothing is lost.
    """
    if partition_at + heal_after + deadline >= duration:
        raise ValueError("run must outlive the partition by >= one deadline "
                         "so the frozen shard can drain")
    svc = make_service(service, seed=seed, **(service_kwargs or {}))
    svc.start()
    targets = svc.partition_targets(shard)

    heal_evt = threading.Event()
    holders: list[threading.Thread] = []

    def hold(monitor: Any) -> None:
        monitor._lock.acquire()  # monlint: disable=W004 — the fault IS a seized lock
        try:
            heal_evt.wait()
        finally:
            monitor._lock.release()  # monlint: disable=W004 — heal releases the seized lock

    def freeze() -> None:
        for m in targets:
            t = threading.Thread(target=hold, args=(m,),
                                 name="loadsim-partition", daemon=True)
            t.start()
            holders.append(t)

    def heal() -> None:
        heal_evt.set()

    sim = LoadSimulator(
        svc,
        PoissonArrivals(rate, duration, seed),
        scenario="network_partition",
        deadline=deadline,
        workers=workers,
        events=[(partition_at, freeze), (partition_at + heal_after, heal)],
    )
    try:
        report = sim.run(params={
            "rate": rate, "partition_at": partition_at,
            "heal_after": heal_after,
            "partitioned_shards": sorted(svc.partitioned),
        })
    finally:
        heal_evt.set()  # never leave locks held, even on failure
        for t in holders:
            t.join(5.0)
        svc.partitioned = set()
        svc.stop()

    if strict:
        report.assert_accounted()
        # the healthy side must have kept its SLO straight through
        report.enforce(
            slo or SLO(p95_ms=deadline * 1e3, max_timeout_frac=0.10,
                       max_failed_frac=0.0),
            group="healthy")
        violations = []
        part = report.counts.get("partitioned", {})
        if not part:
            violations.append("no requests ever routed to the partitioned "
                              "shard — the scenario tested nothing")
        elif not (part.get("timed_out", 0) + part.get("shed", 0)):
            violations.append("partition was invisible: no partitioned "
                              "request timed out or shed")
        violations += _tail_violations(
            report, after=partition_at + heal_after + deadline,
            p95_ms=deadline * 1e3, max_bad_frac=0.25)
        if violations:
            raise SLOViolation(violations, report.diagnostics)
    return report
