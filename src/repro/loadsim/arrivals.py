"""Open-loop arrival processes — seeded, deterministic request schedules.

Each process pre-draws its whole schedule as a tuple of arrival offsets
(seconds from run start, sorted, within ``[0, duration)``) from one
``random.Random(seed)``.  The same ``(parameters, seed)`` pair therefore
yields the *identical* schedule on every run and every platform — chaos
scenarios replay from their seeds, and the CI gate's committed records
describe exactly the traffic a fresh run re-offers.

Non-homogeneous processes (bursty on/off, diurnal ramp) are drawn by
thinning a homogeneous Poisson process at the peak rate: a candidate
arrival at time ``t`` is kept with probability ``rate(t) / peak_rate``.
Thinning preserves both determinism and the Poisson property within each
constant-rate stretch.
"""

from __future__ import annotations

import math
import random
from typing import Callable

__all__ = [
    "ArrivalProcess",
    "BurstArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
]


class ArrivalProcess:
    """Base class: a seeded, reproducible open-loop arrival schedule."""

    name = "arrivals"

    def __init__(self, duration: float, seed: int):
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.duration = float(duration)
        self.seed = seed

    # ------------------------------------------------------------------ draw
    def rate_at(self, t: float) -> float:
        """Instantaneous offered rate (requests/second) at offset ``t``."""
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        raise NotImplementedError

    def schedule(self) -> tuple[float, ...]:
        """The full arrival schedule; identical for identical seeds."""
        rng = random.Random(self.seed)
        peak = self.peak_rate
        if peak <= 0:
            return ()
        out: list[float] = []
        t = 0.0
        while True:
            # homogeneous Poisson at the peak rate ...
            t += rng.expovariate(peak)
            if t >= self.duration:
                break
            # ... thinned down to the instantaneous rate
            if rng.random() < self.rate_at(t) / peak:
                out.append(t)
        return tuple(out)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} duration={self.duration}s "
                f"seed={self.seed}>")


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate (requests/second)."""

    name = "poisson"

    def __init__(self, rate: float, duration: float, seed: int = 0):
        super().__init__(duration, seed)
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = float(rate)

    @property
    def peak_rate(self) -> float:
        return self.rate

    def rate_at(self, t: float) -> float:
        return self.rate


class BurstArrivals(ArrivalProcess):
    """On/off (bursty) arrivals: a base trickle with periodic bursts.

    Each ``period`` starts with an *on* phase of ``burst_fraction * period``
    seconds at ``burst_rate``, then relaxes to ``base_rate`` — the classic
    open-loop overload shape: during a burst the offered load exceeds
    service capacity and the backlog (not the arrival process) absorbs it.
    """

    name = "burst"

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        duration: float,
        seed: int = 0,
        *,
        period: float = 1.0,
        burst_fraction: float = 0.3,
    ):
        super().__init__(duration, seed)
        if burst_rate < base_rate:
            raise ValueError("burst_rate must be >= base_rate")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if period <= 0:
            raise ValueError("period must be > 0")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.period = float(period)
        self.burst_fraction = float(burst_fraction)

    @property
    def peak_rate(self) -> float:
        return self.burst_rate

    def rate_at(self, t: float) -> float:
        phase = math.fmod(t, self.period)
        if phase < self.burst_fraction * self.period:
            return self.burst_rate
        return self.base_rate


class DiurnalArrivals(ArrivalProcess):
    """A smooth traffic ramp: quiet → peak → quiet over one run.

    ``rate(t) = peak_rate * (floor + (1 - floor) * sin²(π t / duration))``
    — a one-day traffic curve compressed into the run, exercising gradual
    saturation and gradual recovery rather than a step.
    """

    name = "diurnal"

    def __init__(self, peak: float, duration: float, seed: int = 0,
                 *, floor: float = 0.2):
        super().__init__(duration, seed)
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.peak = float(peak)
        self.floor = float(floor)

    @property
    def peak_rate(self) -> float:
        return self.peak

    def rate_at(self, t: float) -> float:
        s = math.sin(math.pi * t / self.duration)
        return self.peak * (self.floor + (1.0 - self.floor) * s * s)
