"""Production traffic harness: open-loop load, latency SLOs, chaos scenarios.

Every other benchmark in this repo is *closed-loop*: a fixed pool of
threads spins on fixed work, so when the system slows down the offered
load politely slows down with it.  Production traffic does not.  This
package drives monitor-backed services with **open-loop** arrival
processes — requests arrive on a pre-drawn, seeded schedule whether or
not earlier ones finished — and measures what the paper's throughput
figures cannot show: latency percentiles under backpressure, explicit
load shedding, and degradation-and-recovery curves while
:mod:`repro.resilience.chaos` kills server threads mid-run.

Layers:

* :mod:`repro.loadsim.arrivals` — seeded, deterministic arrival
  processes (Poisson, bursty on/off, diurnal ramp);
* :mod:`repro.loadsim.recorder` — HDR-style log-bucketed latency
  histogram (p50/p95/p99/p99.9) plus windowed degradation series;
* :mod:`repro.loadsim.services` — the pizza store, multicast channels,
  and bounded buffer wrapped as *services*: admission queue, per-request
  deadlines via ``wait_until(..., deadline=)``, explicit shedding;
* :mod:`repro.loadsim.scenarios` — :class:`LoadSimulator` and the
  scenario catalog (``run_steady_load`` … ``run_network_partition``);
* :mod:`repro.loadsim.aio` — :class:`AsyncLoadSimulator`, the coroutine
  frontend lane: thousands of logical clients multiplexed onto one event
  loop via :mod:`repro.aio`, with a loop-responsiveness probe;
* :mod:`repro.loadsim.report` — :class:`LoadReport` / :class:`SLO` and
  ``BENCH_load_*.json`` serialization.

The liveness contract, checked on every run (*Ghost Signals* empirically):
every admitted request resolves — completed, timed out, deliberately
shed, or failed fast on a broken monitor.  Zero silently lost futures,
even while chaos kills servers (see docs/loadtest.md).
"""

from repro.loadsim.aio import (
    AsyncLoadSimulator,
    run_burst_load_async,
    run_steady_load_async,
)
from repro.loadsim.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.loadsim.recorder import LatencyRecorder, WindowedSeries
from repro.loadsim.report import LoadReport, SLO, SLOViolation
from repro.loadsim.scenarios import (
    LoadSimulator,
    run_burst_load,
    run_mixed_workload,
    run_network_partition,
    run_steady_load,
    run_worker_failure,
)
from repro.loadsim.services import SERVICES, Bulkhead, Service, make_service

__all__ = [
    "SERVICES",
    "SLO",
    "SLOViolation",
    "ArrivalProcess",
    "AsyncLoadSimulator",
    "Bulkhead",
    "BurstArrivals",
    "DiurnalArrivals",
    "LatencyRecorder",
    "LoadReport",
    "LoadSimulator",
    "PoissonArrivals",
    "Service",
    "WindowedSeries",
    "make_service",
    "run_burst_load",
    "run_burst_load_async",
    "run_mixed_workload",
    "run_network_partition",
    "run_steady_load",
    "run_steady_load_async",
    "run_worker_failure",
]
