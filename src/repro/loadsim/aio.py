"""The asyncio driver lane: coroutine-per-client open-loop load.

:class:`AsyncLoadSimulator` is the coroutine twin of
:class:`~repro.loadsim.scenarios.LoadSimulator` — same seeded arrival
schedules, same latency-from-scheduled-arrival discipline, same
accounting identity (``offered == completed + timed_out + failed_fast +
errors + shed`` with ``in_flight == 0``) — but every *logical client* is
a coroutine on one event loop instead of a pooled worker thread:

* the **dispatcher coroutine** walks the pre-drawn schedule; each arrival
  either spawns a request task or is **shed** when the in-flight cap
  (``admission_capacity``) is reached — the awaitable analogue of the
  thread lane's bounded admission queue;
* each **request task** runs ``service.handle_async(op, deadline,
  cancel)`` with the same absolute deadline (``scheduled_arrival +
  deadline``) and a cancel-token backstop armed with ``loop.call_later``
  (no timer threads — at thousands of clients that matters);
* a **loop-responsiveness probe** ticks throughout the run and records
  how late each tick fired.  The asyncio frontend's cardinal rule is that
  the event-loop thread never blocks on a monitor lock; the probe is the
  empirical check — a blocked loop shows up as drift, and the report
  carries ``extra["loop_probe"]`` so the benchmark can assert on it.

:func:`run_steady_load_async` / :func:`run_burst_load_async` mirror the
threaded scenario entry points, including the strict SLO / recovery
assertions, so the two frontends are comparable head-to-head on
identical arrival schedules and op sequences.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Optional

from repro.loadsim.arrivals import ArrivalProcess, BurstArrivals, \
    PoissonArrivals
from repro.loadsim.recorder import LatencyRecorder, WindowedSeries
from repro.loadsim.report import LoadReport, SLO
from repro.loadsim.services import Service, make_service
from repro.resilience import CancelToken
from repro.resilience.obligations import ObligationTracker
from repro.resilience.watchdog import StallWatchdog
from repro.runtime.errors import (
    BrokenMonitorError,
    TaskError,
    WaitCancelledError,
    WaitTimeoutError,
)

__all__ = [
    "AsyncLoadSimulator",
    "run_burst_load_async",
    "run_steady_load_async",
]

DEFAULT_SEED = 11

#: loop-responsiveness probe period (s); drift beyond a few ms means the
#: loop thread blocked somewhere it never should have
PROBE_INTERVAL_S = 0.02


class AsyncLoadSimulator:
    """Open-loop driver: one service, one schedule, coroutine clients."""

    def __init__(
        self,
        service: Service,
        arrivals: ArrivalProcess,
        *,
        scenario: str = "custom",
        deadline: float = 0.5,
        admission_capacity: int = 1024,
        window_s: float = 0.5,
        op_seed: Optional[int] = None,
        diagnose: bool = True,
        cancel_grace: float = 1.0,
        drain_timeout: Optional[float] = None,
    ):
        if deadline <= 0:
            raise ValueError("deadline must be > 0")
        if admission_capacity < 1:
            raise ValueError("admission_capacity must be >= 1")
        if not service.supports_async:
            raise ValueError(
                f"service {service.name!r} has no handle_async lane")
        self.service = service
        self.arrivals = arrivals
        self.scenario = scenario
        self.deadline = deadline
        self.admission_capacity = admission_capacity
        self.window_s = window_s
        self.op_seed = arrivals.seed + 1 if op_seed is None else op_seed
        self.diagnose = diagnose
        self.cancel_grace = cancel_grace
        self.drain_timeout = (
            deadline + cancel_grace + 2.0 if drain_timeout is None
            else drain_timeout
        )

    # ------------------------------------------------------------------- run
    def run(self, params: Optional[dict[str, Any]] = None) -> LoadReport:
        """Start the service, drive the schedule on a fresh loop, report.

        Blocking entry point (symmetric with ``LoadSimulator.run``): the
        service starts and stops on the calling thread; only the request
        traffic itself runs on the event loop.
        """
        service = self.service
        schedule = self.arrivals.schedule()
        op_rng = random.Random(self.op_seed)
        ops = [service.make_op(op_rng) for _ in schedule]

        owns_service = not service.started
        if owns_service:
            service.start()

        watchdog = tracker = None
        if self.diagnose:
            monitors = service.monitors()
            watchdog = StallWatchdog(
                monitors,
                quiet_period=max(1.0, 2.0 * self.deadline),
                on_stall=lambda report: None,
            )
            tracker = ObligationTracker(
                monitors, poll_interval=0.2, on_report=lambda report: None)
            watchdog.start()
            tracker.start()

        try:
            result = asyncio.run(self._drive(schedule, ops))
        finally:
            if watchdog is not None:
                watchdog.stop()
                tracker.stop()
            if owns_service:
                service.stop()

        (counts, recorders, windows, elapsed, in_flight,
         backstop_cancels, error_samples, probe) = result

        diagnostics: list[str] = []
        extra: dict[str, Any] = {"loop_probe": probe}
        if watchdog is not None:
            diagnostics += [r.describe() for r in watchdog.reports]
            diagnostics += [r.describe() for r in tracker.reports]
        diagnostics += error_samples
        if backstop_cancels:
            extra["backstop_cancels"] = backstop_cancels

        base_params = {
            "frontend": "asyncio",
            "arrivals": self.arrivals.name,
            "duration_s": self.arrivals.duration,
            "deadline_s": self.deadline,
            "admission_capacity": self.admission_capacity,
            "op_seed": self.op_seed,
        }
        base_params.update(params or {})
        return LoadReport(
            service=service.name,
            scenario=self.scenario,
            seed=self.arrivals.seed,
            params=base_params,
            counts=counts,
            latency=recorders,
            windows=windows,
            elapsed=elapsed,
            in_flight=in_flight,
            diagnostics=diagnostics,
            extra=extra,
        )

    # ------------------------------------------------------------ loop body
    async def _drive(self, schedule, ops):
        service = self.service
        loop = asyncio.get_running_loop()

        counts: dict[str, dict[str, int]] = {}
        recorders: dict[str, LatencyRecorder] = {}
        windows = WindowedSeries(self.window_s)
        admitted = 0
        resolved = [0]
        backstop_cancels = [0]
        error_samples: list[str] = []
        tasks: set[asyncio.Task] = set()

        # everything below runs on the single loop thread — no locks needed
        def bump(group: str, outcome: str) -> None:
            cell = counts.get(group)
            if cell is None:
                cell = counts[group] = {
                    "completed": 0, "timed_out": 0, "failed_fast": 0,
                    "shed": 0, "errors": 0,
                }
                recorders[group] = LatencyRecorder()
            cell[outcome] += 1
            if outcome != "shed":
                resolved[0] += 1

        start = time.monotonic()
        probe_drifts: list[float] = []
        probe_stop = asyncio.Event()

        async def probe() -> None:
            # if any await in this loop ever blocks the loop *thread*
            # (a parked monitor lock, a blocking future.get), every
            # scheduled callback — including this one — fires late
            expected = time.monotonic() + PROBE_INTERVAL_S
            while not probe_stop.is_set():
                await asyncio.sleep(max(0.0, expected - time.monotonic()))
                now = time.monotonic()
                probe_drifts.append(max(0.0, now - expected))
                expected = now + PROBE_INTERVAL_S

        async def one_request(offset: float, op: Any) -> None:
            group = service.group(op)
            deadline = start + offset + self.deadline
            token = CancelToken()
            backstop = loop.call_later(
                max(0.0, deadline - time.monotonic()) + self.cancel_grace,
                token.cancel)
            try:
                await service.handle_async(op, deadline, token)
                outcome = "completed"
            except WaitTimeoutError:
                outcome = "timed_out"
            except WaitCancelledError:
                outcome = "timed_out"
                backstop_cancels[0] += 1
            except (BrokenMonitorError, TaskError) as exc:
                outcome = "failed_fast"
                if len(error_samples) < 5:
                    error_samples.append(
                        f"failed_fast: {type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - full accounting
                outcome = "errors"
                if len(error_samples) < 5:
                    error_samples.append(
                        f"error: {type(exc).__name__}: {exc}")
            finally:
                backstop.cancel()
            latency = time.monotonic() - (start + offset)
            bump(group, outcome)
            if outcome == "completed":
                recorders[group].record(latency)
                windows.record(offset, outcome, latency)
            else:
                windows.record(offset, outcome)

        probe_task = asyncio.ensure_future(probe())
        try:
            for offset, op in zip(schedule, ops):
                delay = start + offset - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                if len(tasks) >= self.admission_capacity:
                    bump(service.group(op), "shed")
                    windows.record(offset, "shed")
                    continue
                admitted += 1
                task = asyncio.ensure_future(one_request(offset, op))
                tasks.add(task)
                task.add_done_callback(tasks.discard)

            if tasks:
                await asyncio.wait(tasks, timeout=self.drain_timeout)
        finally:
            probe_stop.set()
            probe_task.cancel()
            for task in tasks:  # lost requests: counted, not awaited
                task.cancel()

        elapsed = time.monotonic() - start
        in_flight = admitted - resolved[0]
        probe_summary = _summarize_probe(probe_drifts)
        return (counts, recorders, windows, elapsed, in_flight,
                backstop_cancels[0], error_samples, probe_summary)


def _summarize_probe(drifts: list[float]) -> dict[str, float]:
    if not drifts:
        return {"samples": 0, "max_drift_ms": 0.0, "p95_drift_ms": 0.0}
    ordered = sorted(drifts)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return {
        "samples": len(drifts),
        "max_drift_ms": round(ordered[-1] * 1e3, 3),
        "p95_drift_ms": round(p95 * 1e3, 3),
    }


# --------------------------------------------------------------------------
# scenario entry points (the async halves of the steady / burst lanes)
# --------------------------------------------------------------------------

def run_steady_load_async(
    service: str = "buffer",
    *,
    rate: float = 60.0,
    duration: float = 3.0,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.5,
    admission_capacity: int = 1024,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """Poisson arrivals on the coroutine frontend — same SLO as threaded."""
    svc = make_service(service, seed=seed, **(service_kwargs or {}))
    sim = AsyncLoadSimulator(
        svc,
        PoissonArrivals(rate, duration, seed),
        scenario="steady_async",
        deadline=deadline,
        admission_capacity=admission_capacity,
    )
    report = sim.run(params={"rate": rate})
    if strict:
        report.assert_accounted()
        report.enforce(slo or SLO(
            p95_ms=0.8 * deadline * 1e3,
            p99_ms=1.5 * deadline * 1e3,
            max_timeout_frac=0.05,
            max_shed_frac=0.0,
            max_failed_frac=0.0,
        ))
    return report


def run_burst_load_async(
    service: str = "buffer",
    *,
    base_rate: float = 30.0,
    burst_rate: float = 150.0,
    duration: float = 3.0,
    period: float = 1.0,
    burst_fraction: float = 0.25,
    seed: int = DEFAULT_SEED,
    deadline: float = 0.3,
    admission_capacity: int = 64,
    slo: Optional[SLO] = None,
    strict: bool = True,
    service_kwargs: Optional[dict[str, Any]] = None,
) -> LoadReport:
    """On/off overload on the coroutine frontend; recovery asserted."""
    from repro.loadsim.scenarios import _assert_recovered

    svc = make_service(service, seed=seed, **(service_kwargs or {}))
    arrivals = BurstArrivals(
        base_rate, burst_rate, duration, seed,
        period=period, burst_fraction=burst_fraction)
    sim = AsyncLoadSimulator(
        svc,
        arrivals,
        scenario="burst_async",
        deadline=deadline,
        admission_capacity=admission_capacity,
    )
    report = sim.run(params={
        "base_rate": base_rate, "burst_rate": burst_rate,
        "period": period, "burst_fraction": burst_fraction,
    })
    if strict:
        report.assert_accounted()
        report.enforce(slo or SLO(max_failed_frac=0.05))
        last_burst_end = (
            int((duration - 1e-9) / period) * period + burst_fraction * period)
        after = min(last_burst_end + deadline, duration - sim.window_s)
        _assert_recovered(report, after=after, p95_ms=deadline * 1e3,
                          max_bad_frac=0.25)
    return report
