"""Monitor-backed *services*: the paper's problems behind a request API.

A :class:`Service` adapts one evaluation problem (bounded buffer, pizza
store, multicast channels) to the shape the load simulator drives:

* ``make_op(rng)`` draws one request deterministically from the op seed;
* ``handle(op, deadline, cancel)`` executes it with a per-request
  deadline riding on ``wait_until(..., deadline=)`` (or on the delegated
  future's ``get``), raising ``WaitTimeoutError`` / ``TaskError`` /
  ``BrokenMonitorError`` on the documented failure paths;
* ``handle_async(op, deadline, cancel)`` (services with
  ``supports_async``) is the coroutine twin driven by the asyncio lane in
  :mod:`repro.loadsim.aio` — same ops, same failure taxonomy, requests
  multiplexed onto one event loop through
  :class:`~repro.aio.AsyncMonitorClient`;
* ``monitors()`` exposes the monitor objects for the stall watchdog,
  obligation tracker, and partition freezing;
* ``attach_supervisors(seed)`` arms jittered
  :class:`~repro.resilience.supervision.ServerSupervisor`\\ s on every
  ActiveMonitor server the service owns (the worker-failure scenario's
  restart path).

Per-shard :class:`Bulkhead`\\ s bound how many workers can be blocked
*inside* one backend at a time: when a shard is partitioned (its monitor
lock frozen), at most ``bulkhead`` workers wedge on its lock — everyone
else fails fast at the bulkhead and the healthy shards keep their SLO.
That is the load-shedding half of graceful degradation; the admission
queue in :mod:`repro.loadsim.scenarios` is the other half.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Any, Optional

from repro.active import ActiveMonitor, asynchronous
from repro.core import S
from repro.core.predicates import Predicate
from repro.problems.bounded_buffer import ActiveBoundedQueue
from repro.problems.multicast import AsyncChannelQueue, ChannelQueue
from repro.problems.pizza_store import (
    CAPACITY,
    N_INGREDIENTS,
    RESTOCK,
    MonitorStore,
    make_recipes,
)
from repro.resilience.supervision import ServerSupervisor, supervise
from repro.runtime.errors import WaitTimeoutError

__all__ = [
    "Bulkhead",
    "BufferService",
    "MulticastService",
    "PizzaStoreService",
    "SERVICES",
    "Service",
    "make_service",
]


class Bulkhead:
    """Deadline-bounded concurrency limiter for one backend shard."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sem = threading.Semaphore(capacity)

    def acquire(self, deadline: Optional[float] = None) -> bool:
        """Take a slot, giving up at ``deadline``; False when saturated."""
        if deadline is None:
            return self._sem.acquire()
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # grab a free slot if one is available right now, else fail
            return self._sem.acquire(blocking=False)
        return self._sem.acquire(timeout=remaining)

    def release(self) -> None:
        self._sem.release()


class Service:
    """Base class for a monitor-backed service under open-loop load."""

    name = "service"
    #: True when the service implements :meth:`handle_async` — the
    #: coroutine request path the asyncio driver lane exercises
    supports_async = False

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.started = False
        self.supervisors: list[ServerSupervisor] = []
        #: shard ids currently partitioned (set by the partition scenario
        #: before the run so reports can split healthy vs partitioned)
        self.partitioned: set[int] = set()

    # ------------------------------------------------------------- life cycle
    def start(self) -> None:
        self.started = True

    def stop(self) -> None:
        self.started = False

    # -------------------------------------------------------------- requests
    def make_op(self, rng: random.Random) -> Any:
        raise NotImplementedError

    def handle(self, op: Any, deadline: float, cancel=None) -> None:
        raise NotImplementedError

    async def handle_async(self, op: Any, deadline: float,
                           cancel=None) -> None:
        """Coroutine twin of :meth:`handle` — same ops, same failure
        taxonomy, driven from an event loop instead of a worker thread."""
        raise NotImplementedError(f"{self.name} has no asyncio lane")

    def group(self, op: Any) -> str:
        """Report group for one request ("all" unless partition-aware)."""
        return "all"

    # ----------------------------------------------------------- observation
    def monitors(self) -> list:
        return []

    def partition_targets(self, shard: int) -> list:
        """The monitors a partition scenario freezes (first ``shard``)."""
        raise NotImplementedError(f"{self.name} does not support partitions")

    def attach_supervisors(self, seed: int = 0, **kwargs) -> list:
        """Arm jittered supervisors on every server this service owns."""
        return []

    def _supervise_all(self, servers, seed: int, **kwargs) -> list:
        defaults = dict(jitter=True, backoff_base=0.01, backoff_cap=0.25,
                        max_restarts=5, max_elapsed=2.0)
        defaults.update(kwargs)
        self.supervisors = [
            supervise(s, seed=seed + i, **defaults)
            for i, s in enumerate(servers) if s is not None
        ]
        return self.supervisors


class BufferService(Service):
    """The bounded buffer as a service: delegated puts, deadline takes.

    ``put`` requests ride the ActiveMonitor delegation pipeline (a
    LightFuture with the request deadline on its ``get``), so killing the
    buffer's server thread mid-run exercises fail-fast futures, the
    supervisor restart, and the synchronous fallback.  ``take`` requests
    wait under the monitor with ``wait_until(..., deadline=)``.
    """

    name = "buffer"
    supports_async = True

    # the op mix leans slightly toward puts: a 50/50 mix is a driftless
    # random walk whose troughs hit an empty buffer, and takes that then
    # wait for the *next scheduled put* read as service timeouts at low
    # offered rates — supply starvation, not the overload under test
    def __init__(self, seed: int = 0, *, capacity: int = 128,
                 prefill: int = 16, put_fraction: float = 0.55):
        super().__init__(seed)
        self.capacity = capacity
        self.prefill = prefill
        self.put_fraction = put_fraction
        self.queue: Optional[ActiveBoundedQueue] = None
        self._aio_client = None
        self._take_ready = Predicate(S.count > 0)

    def start(self) -> None:
        self.queue = ActiveBoundedQueue(self.capacity, mode="async")
        self._aio_client = None  # clients bind to one loop; rebind per run
        for i in range(self.prefill):
            self.queue.put(i).get(timeout=5.0)
        super().start()

    def stop(self) -> None:
        if self.queue is not None:
            self.queue.shutdown()
        super().stop()

    def make_op(self, rng: random.Random) -> tuple:
        if rng.random() < self.put_fraction:
            return ("put", rng.randrange(1 << 16))
        return ("take",)

    def handle(self, op: tuple, deadline: float, cancel=None) -> None:
        if op[0] == "put":
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WaitTimeoutError("put deadline expired before submit")
            self.queue.put(op[1]).get(timeout=remaining, cancel=cancel)
        else:
            self.queue.take_until(deadline=deadline, cancel=cancel)

    async def handle_async(self, op: tuple, deadline: float,
                           cancel=None) -> None:
        """Coroutine request path: delegated puts, ``wait_until`` takes.

        ``put`` awaits the delegated future (awaitable backpressure in
        :meth:`AsyncMonitorClient.call` when the task queue is full);
        ``take`` parks a waiterless waiter on ``count > 0`` and then
        consumes through the guarded ``take_async`` delegation — the
        documented pairing for lockless-resume waits.
        """
        client = self._aio_client
        if client is None:
            from repro.aio import AsyncMonitorClient
            client = self._aio_client = AsyncMonitorClient(self.queue)
        if op[0] == "put":
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WaitTimeoutError("put deadline expired before submit")
            try:
                await asyncio.wait_for(client.call("put", op[1]), remaining)
            except asyncio.TimeoutError:
                raise WaitTimeoutError(
                    "put not completed within deadline") from None
        else:
            await client.wait_until(
                self._take_ready, deadline=deadline, cancel=cancel)
            remaining = max(deadline - time.monotonic(), 0.001)
            try:
                await asyncio.wait_for(client.call("take_async"), remaining)
            except asyncio.TimeoutError:
                raise WaitTimeoutError(
                    "take not completed within deadline") from None

    def monitors(self) -> list:
        return [self.queue] if self.queue is not None else []

    def attach_supervisors(self, seed: int = 0, **kwargs) -> list:
        return self._supervise_all([self.queue.server], seed, **kwargs)


class _SupplyDesk(ActiveMonitor):
    """Delegated restocking: the pizza store's supply chain as an
    ActiveMonitor, so the worker-failure scenario has a server to kill
    (restocks stall or fail fast, cooks feel it as rising timeouts,
    the supervisor restarts the desk and the store recovers)."""

    def __init__(self, store: MonitorStore, **kwargs):
        super().__init__(**kwargs)
        self._store = store

    @asynchronous()
    def restock(self, ingredient: int, n: int) -> None:
        self._store.supply(ingredient, n)


class PizzaStoreService(Service):
    """The pizza store as a service: multisynch cooks with deadlines.

    Each request is one ``cook_until`` — a multi-monitor global AND wait
    (Fig. 4.7's shape) bounded by the request deadline.  A background
    supplier keeps ingredients stocked through the delegated
    :class:`_SupplyDesk`.
    """

    name = "pizza"

    # ``prefill`` (units per ingredient) and ``restock_interval`` set the
    # supply side: prefill CAPACITY + fast restocks = cooks rarely block;
    # a small prefill + slow restocks throttle cooks on ingredient waits,
    # which is how the overload lanes make the admission queue actually
    # back up and shed
    def __init__(self, seed: int = 0, *, strategy: str = "av",
                 restock_interval: float = 0.003,
                 prefill: int = CAPACITY):
        super().__init__(seed)
        self.strategy = strategy
        self.restock_interval = restock_interval
        self.prefill = prefill
        self.store: Optional[MonitorStore] = None
        self.desk: Optional[_SupplyDesk] = None
        self.recipes = make_recipes(seed=seed or 11)
        self._stop_evt = threading.Event()
        self._supplier: Optional[threading.Thread] = None

    def start(self) -> None:
        self.store = MonitorStore(self.strategy.upper())
        for i in range(N_INGREDIENTS):
            self.store.supply(i, self.prefill)
        self.desk = _SupplyDesk(self.store)
        self._stop_evt.clear()
        self._supplier = threading.Thread(
            target=self._supply_loop, name="loadsim-supplier", daemon=True
        )
        self._supplier.start()
        super().start()

    def _supply_loop(self) -> None:
        i = 0
        while not self._stop_evt.wait(self.restock_interval):
            # futures deliberately dropped: Rule 2 serializes this thread's
            # submissions, and a dead desk fails them fast (the outage the
            # worker-failure scenario measures)
            self.desk.restock(i % N_INGREDIENTS, RESTOCK)
            i += 1

    def stop(self) -> None:
        self._stop_evt.set()
        if self._supplier is not None:
            self._supplier.join(5.0)
        if self.desk is not None:
            self.desk.shutdown()
        super().stop()

    def make_op(self, rng: random.Random) -> dict:
        return self.recipes[rng.randrange(len(self.recipes))]

    def handle(self, op: dict, deadline: float, cancel=None) -> None:
        self.store.cook_until(op, deadline=deadline, cancel=cancel)

    def monitors(self) -> list:
        out: list = list(self.store.ingredients) if self.store else []
        if self.desk is not None:
            out.append(self.desk)
        return out

    def attach_supervisors(self, seed: int = 0, **kwargs) -> list:
        return self._supervise_all([self.desk.server], seed, **kwargs)


class MulticastService(Service):
    """Multicast channels as a sharded service with per-shard bulkheads.

    Requests put a message on a seeded-random channel; one drainer thread
    per channel takes messages off.  ``variant="sync"`` waits under the
    channel monitor (the partition scenario freezes a shard of these
    locks); ``variant="active"`` delegates puts to per-channel servers
    (the worker-failure scenario kills one).
    """

    name = "multicast"

    def __init__(self, seed: int = 0, *, n_channels: int = 4,
                 capacity: int = 64, variant: str = "sync",
                 bulkhead: int = 2):
        super().__init__(seed)
        if variant not in ("sync", "active"):
            raise ValueError(f"unknown multicast variant {variant!r}")
        self.n_channels = n_channels
        self.capacity = capacity
        self.variant = variant
        self.bulkhead_capacity = bulkhead
        self.channels: list = []
        self.bulkheads: list[Bulkhead] = []
        self._stop_evt = threading.Event()
        self._drainers: list[threading.Thread] = []

    def start(self) -> None:
        if self.variant == "sync":
            self.channels = [ChannelQueue(self.capacity, mode="sync")
                             for _ in range(self.n_channels)]
        else:
            self.channels = [AsyncChannelQueue(self.capacity, mode="async")
                             for _ in range(self.n_channels)]
        self.bulkheads = [Bulkhead(self.bulkhead_capacity)
                          for _ in range(self.n_channels)]
        self._stop_evt.clear()
        self._drainers = [
            threading.Thread(target=self._drain_loop, args=(i,),
                             name=f"loadsim-drain-{i}", daemon=True)
            for i in range(self.n_channels)
        ]
        for t in self._drainers:
            t.start()
        super().start()

    def _drain_loop(self, idx: int) -> None:
        channel = self.channels[idx]
        while not self._stop_evt.is_set():
            try:
                channel.take_until(deadline=time.monotonic() + 0.05)
            except WaitTimeoutError:
                continue

    def stop(self) -> None:
        self._stop_evt.set()
        for t in self._drainers:
            t.join(5.0)
        for ch in self.channels:
            ch.shutdown()
        super().stop()

    def make_op(self, rng: random.Random) -> tuple:
        return (rng.randrange(self.n_channels), rng.randrange(1 << 16))

    def handle(self, op: tuple, deadline: float, cancel=None) -> None:
        idx, value = op
        gate = self.bulkheads[idx]
        if not gate.acquire(deadline):
            raise WaitTimeoutError(
                f"channel {idx} bulkhead saturated past the deadline")
        try:
            channel = self.channels[idx]
            if self.variant == "sync":
                channel.put_until(value, deadline=deadline, cancel=cancel)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WaitTimeoutError(
                        "put deadline expired before submit")
                channel.put(value).get(timeout=remaining, cancel=cancel)
        finally:
            gate.release()

    def group(self, op: tuple) -> str:
        if not self.partitioned:
            return "all"
        return "partitioned" if op[0] in self.partitioned else "healthy"

    def monitors(self) -> list:
        return list(self.channels)

    def partition_targets(self, shard: int) -> list:
        shard = max(1, min(shard, self.n_channels - 1))
        self.partitioned = set(range(shard))
        return self.channels[:shard]

    def attach_supervisors(self, seed: int = 0, **kwargs) -> list:
        return self._supervise_all(
            [ch.server for ch in self.channels], seed, **kwargs)


SERVICES = {
    "buffer": BufferService,
    "pizza": PizzaStoreService,
    "multicast": MulticastService,
}


def make_service(name: str, seed: int = 0, **kwargs) -> Service:
    """Instantiate a service from the catalog (not yet started)."""
    try:
        cls = SERVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown service {name!r}; known: {sorted(SERVICES)}") from None
    return cls(seed=seed, **kwargs)
