"""Simulated automatic-signal monitors over the DES kernel.

Implements the four signaling disciplines of Chapter 2 inside the simulated
machine so their scaling behaviour can be measured at paper-scale thread
counts (the kernel charges ``ctx_switch_cost`` per wakeup and the monitor
charges ``eval_cost`` per predicate evaluation and ``tag_cost`` per tag-index
probe):

* ``baseline``     — one condition variable, broadcast on every exit;
* ``autosynch_t``  — relay signaling, linear scan over waiters;
* ``autosynch``    — relay signaling with equivalence/threshold tag indexes;
* (explicit variants are hand-written per workload in
  :mod:`repro.sim.workloads`.)

Predicates here are plain closures over shared state — safe because the
simulation itself is sequential; costs are charged explicitly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.kernel import Kernel, SimCondVar

Pred = Callable[[], bool]

#: tag hints: ("eq", keyfn, key) | ("th", keyfn, op, const) | None
TagHint = Optional[tuple]


class _SimWaiter:
    __slots__ = ("pred", "cv", "hint", "signaled")

    def __init__(self, pred: Pred, cv: SimCondVar, hint: TagHint):
        self.pred = pred
        self.cv = cv
        self.hint = hint
        self.signaled = False


_OPS = {
    ">": lambda v, k: v > k,
    ">=": lambda v, k: v >= k,
    "<": lambda v, k: v < k,
    "<=": lambda v, k: v <= k,
}


class SimMonitor:
    """One monitor object in the simulated machine."""

    def __init__(
        self,
        kernel: Kernel,
        mode: str = "autosynch",
        eval_cost: float = 1.0,
        tag_cost: float = 0.5,
    ):
        if mode not in ("baseline", "autosynch_t", "autosynch"):
            raise ValueError(f"unknown sim monitor mode {mode!r}")
        self.kernel = kernel
        self.mode = mode
        self.eval_cost = eval_cost
        self.tag_cost = tag_cost
        self.lock = kernel.lock("monitor")
        self._broadcast = kernel.condvar(self.lock, "broadcast")
        self.waiters: list[_SimWaiter] = []
        self.predicate_evals = 0
        self.signals = 0
        self.broadcasts = 0

    # -- monitor sections (compose with `yield from`) ---------------------------
    def enter(self):
        yield ("acquire", self.lock)

    def exit(self):
        yield from self._relay()
        yield ("release", self.lock)

    def wait_until(self, pred: Pred, hint: TagHint = None):
        """The simulated waituntil (caller holds the monitor lock)."""
        self.predicate_evals += 1
        yield ("compute", self.eval_cost, "eval")
        if pred():
            return
        if self.mode == "baseline":
            while True:
                yield ("wait", self._broadcast)
                self.predicate_evals += 1
                yield ("compute", self.eval_cost, "eval")
                if pred():
                    return
        cv = self.kernel.condvar(self.lock, "waiter")
        waiter = _SimWaiter(pred, cv, hint)
        self.waiters.append(waiter)
        try:
            while True:
                yield from self._relay()   # pass the baton before sleeping
                yield ("wait", cv)
                waiter.signaled = False
                self.predicate_evals += 1
                yield ("compute", self.eval_cost, "eval")
                if pred():
                    return
        finally:
            self.waiters.remove(waiter)

    # -- relay rule --------------------------------------------------------------
    def _relay(self):
        if self.mode == "baseline":
            self.broadcasts += 1
            yield ("signal_all", self._broadcast)
            return
        winner = None
        if self.mode == "autosynch_t":
            for waiter in self.waiters:
                if waiter.signaled:
                    continue
                self.predicate_evals += 1
                yield ("compute", self.eval_cost, "eval")
                if waiter.pred():
                    winner = waiter
                    break
        else:
            winner = yield from self._tag_search()
        if winner is not None:
            winner.signaled = True
            self.signals += 1
            yield ("signal", winner.cv)

    def _tag_search(self):
        """Tag-accelerated search: equivalence hash probes first, threshold
        roots next, untagged waiters last."""
        eq_groups: dict[Any, dict[Any, list[_SimWaiter]]] = {}
        th_groups: dict[Any, list[tuple[float, int, _SimWaiter]]] = {}
        untagged: list[_SimWaiter] = []
        for i, waiter in enumerate(self.waiters):
            if waiter.signaled:
                continue
            hint = waiter.hint
            if hint and hint[0] == "eq":
                eq_groups.setdefault(hint[1], {}).setdefault(hint[2], []).append(waiter)
            elif hint and hint[0] == "th":
                th_groups.setdefault((hint[1], hint[2]), []).append(
                    (hint[3], i, waiter)
                )
            else:
                untagged.append(waiter)
        for keyfn, table in eq_groups.items():
            yield ("compute", self.tag_cost, "tag")      # one expression evaluation
            candidates = table.get(keyfn())
            if candidates:
                for waiter in candidates:
                    self.predicate_evals += 1
                    yield ("compute", self.eval_cost, "eval")
                    if waiter.pred():
                        return waiter
        for (keyfn, op), entries in th_groups.items():
            yield ("compute", self.tag_cost, "tag")
            value = keyfn()
            ascending = op in (">", ">=")
            entries.sort(key=lambda e: e[0], reverse=not ascending)
            satisfies = _OPS[op]
            for const, _, waiter in entries:
                if not satisfies(value, const):
                    break                          # monotone: rest also false
                self.predicate_evals += 1
                yield ("compute", self.eval_cost, "eval")
                if waiter.pred():
                    return waiter
        for waiter in untagged:
            self.predicate_evals += 1
            yield ("compute", self.eval_cost, "eval")
            if waiter.pred():
                return waiter
        return None
