"""Simulated multicast channels (Fig. 5.2's shape at paper-scale clients).

One server drains N client queues:

* ``gl`` — one lock + broadcast condition over every queue: each client put
  and each server take serialize on the same lock, and every put broadcast-
  wakes everyone;
* ``so`` — per-queue locks with selectone-style service: the server
  try-locks queues speculatively and, when all guards are false, parks with
  per-queue registrations that a client's put signals (the synchronized
  phase of Algorithm 7 with critical-clause-style wakeup).

With several cores, per-queue locking lets clients enqueue concurrently
while the server drains — the effect behind the paper's AS/AV/CC ≫ GL.
"""

from __future__ import annotations

from typing import Any

from repro.sim.kernel import Kernel, SimCondVar

CS_WORK = 2.0
LOCAL_WORK = 4.0


def sim_multicast(
    variant: str,
    n_clients: int,
    requests_per_client: int,
    capacity: int = 16,
    n_cores: int = 8,
) -> dict[str, Any]:
    """Fig. 5.2 in the simulator: ``gl`` vs ``so`` (selectone)."""
    kernel = Kernel(n_cores=n_cores)
    counts = [0] * n_clients
    total = n_clients * requests_per_client
    served = [0]

    def jitter(tid: int, op: int) -> float:
        return float((tid * 19 + op * 5) % 13)

    if variant == "gl":
        lock = kernel.lock("store")
        cond = kernel.condvar(lock)

        def client(i: int):
            for op in range(requests_per_client):
                yield ("compute", jitter(i, op))
                yield ("acquire", lock)
                while counts[i] >= capacity:
                    yield ("wait", cond)
                yield ("compute", CS_WORK)
                counts[i] += 1
                yield ("signal_all", cond)
                yield ("release", lock)
                yield ("compute", LOCAL_WORK)

        def server():
            while served[0] < total:
                yield ("acquire", lock)
                while not any(counts):
                    yield ("wait", cond)
                idx = next(i for i, c in enumerate(counts) if c)
                yield ("compute", CS_WORK)
                counts[idx] -= 1
                served[0] += 1
                yield ("signal_all", cond)
                yield ("release", lock)

    elif variant == "so":
        locks = [kernel.lock(f"q{i}") for i in range(n_clients)]
        #: queues whose put should wake the parked server
        registrations: list[list] = [[] for _ in range(n_clients)]
        park_lock = kernel.lock("server-park")
        not_full = [kernel.condvar(locks[i]) for i in range(n_clients)]

        def client(i: int):
            for op in range(requests_per_client):
                yield ("compute", jitter(i, op))
                yield ("acquire", locks[i])
                while counts[i] >= capacity:
                    yield ("wait", not_full[i])
                yield ("compute", CS_WORK)
                counts[i] += 1
                # exit-hook duty: signal a parked selectone server
                for entry in list(registrations[i]):
                    if not entry[1]:
                        entry[1] = True
                        yield ("acquire", park_lock)
                        yield ("signal", entry[0])
                        yield ("release", park_lock)
                yield ("release", locks[i])
                yield ("compute", LOCAL_WORK)

        def server():
            while served[0] < total:
                # speculative phase: try each queue's guard
                hit = False
                for i in range(n_clients):
                    yield ("acquire", locks[i])
                    if counts[i] > 0:
                        yield ("compute", CS_WORK)
                        counts[i] -= 1
                        served[0] += 1
                        yield ("signal", not_full[i])
                        yield ("release", locks[i])
                        hit = True
                        break
                    yield ("release", locks[i])
                if hit or served[0] >= total:
                    continue
                # synchronized phase: register on every queue, park
                cv = SimCondVar(park_lock)
                entry = [cv, False]
                for i in range(n_clients):
                    yield ("acquire", locks[i])
                    registrations[i].append(entry)
                    stale = counts[i] > 0
                    yield ("release", locks[i])
                    if stale:
                        entry[1] = True
                        break
                if not entry[1]:
                    yield ("acquire", park_lock)
                    if not entry[1]:
                        yield ("wait", cv)
                    yield ("release", park_lock)
                for i in range(n_clients):
                    yield ("acquire", locks[i])
                    registrations[i] = [e for e in registrations[i] if e is not entry]
                    yield ("release", locks[i])

    else:
        raise ValueError(f"unknown sim multicast variant {variant!r}")

    for i in range(n_clients):
        kernel.spawn(client(i))
    kernel.spawn(server())
    kernel.run(max_time=5e7)
    return {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
        "served": served[0],
        "completed": served[0] >= total,
    }
