"""Simulated ActiveMonitor: delegation on the DES multicore.

Chapter 3's claim — asynchronous delegated execution beats lock-based
monitors because workers overlap local computation with critical sections
running on the monitor's server core — is exactly the effect the GIL hides
from real-thread runs.  This module reproduces it on the simulated machine:

* :class:`SimFuture` — future with simulated park/unpark;
* :class:`SimActiveMonitor` — a server *simulated thread* draining a task
  queue; asynchronous submissions cost ``submit_cost`` and return
  immediately; synchronous submissions block on the future;
* unexecutable tasks (precondition false) park in a pending set and are
  re-scanned after every state change, as in the real runtime.

The server owns the monitor state outright (every access is a task), so
Rule 1 holds by construction and no monitor lock is simulated — only the
short task-queue lock, which mirrors the real implementation's mostly
uncontended acquisitions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.kernel import Kernel


class SimFuture:
    """Single-result future in the simulated machine."""

    __slots__ = ("lock", "cv", "done", "value")

    def __init__(self, kernel: Kernel):
        self.lock = kernel.lock("future")
        self.cv = kernel.condvar(self.lock, "future-cv")
        self.done = False
        self.value: Any = None

    def get(self):
        """Generator: block until completed; returns the value."""
        yield ("acquire", self.lock)
        while not self.done:
            yield ("wait", self.cv)
        yield ("release", self.lock)
        return self.value

    def complete(self, value: Any):
        """Generator: complete and wake the (single) waiter."""
        yield ("acquire", self.lock)
        self.done = True
        self.value = value
        yield ("signal", self.cv)
        yield ("release", self.lock)


class SimTask:
    __slots__ = ("pre", "cost", "effect", "future")

    def __init__(self, pre, cost: float, effect, future: Optional[SimFuture]):
        self.pre = pre          #: () -> bool, or None
        self.cost = cost        #: simulated critical-section work
        self.effect = effect    #: () -> value, applied when executed
        self.future = future


class SimActiveMonitor:
    """Monitor-as-server on the simulated machine."""

    def __init__(self, kernel: Kernel, submit_cost: float = 1.0,
                 eval_cost: float = 0.5):
        self.kernel = kernel
        self.submit_cost = submit_cost
        self.eval_cost = eval_cost
        self.qlock = kernel.lock("taskq")
        self.qcv = kernel.condvar(self.qlock, "taskq-cv")
        self.queue: deque[SimTask] = deque()
        self.pending: list[SimTask] = []
        self.executed = 0
        self._expected: Optional[int] = None

    # ----------------------------------------------------------- submission
    def submit_async(self, pre, cost: float, effect) -> SimFuture:
        """Generator: enqueue a task and return its future without waiting.

        Callers enforcing the paper's Rule 2 (at most one outstanding
        asynchronous task per worker) should ``yield from future.get()`` on
        the *previous* submission's future before submitting the next —
        :class:`Rule2Worker` packages that pattern.
        """
        future = SimFuture(self.kernel)
        task = SimTask(pre, cost, effect, future)
        yield ("compute", self.submit_cost)
        yield ("acquire", self.qlock)
        self.queue.append(task)
        yield ("signal", self.qcv)
        yield ("release", self.qlock)
        return future

    def call_sync(self, pre, cost: float, effect):
        """Generator: enqueue a task and block on its future."""
        future = SimFuture(self.kernel)
        task = SimTask(pre, cost, effect, future)
        yield ("compute", self.submit_cost)
        yield ("acquire", self.qlock)
        self.queue.append(task)
        yield ("signal", self.qcv)
        yield ("release", self.qlock)
        value = yield from future.get()
        return value

    # --------------------------------------------------------------- server
    def server(self, expected_tasks: int):
        """Generator: the monitor thread; exits after ``expected_tasks``."""
        self._expected = expected_tasks
        while self.executed < expected_tasks:
            yield ("acquire", self.qlock)
            while self.queue:
                self.pending.append(self.queue.popleft())
            task = None
            for candidate in self.pending:
                if candidate.pre is not None:
                    yield ("compute", self.eval_cost)
                if candidate.pre is None or candidate.pre():
                    task = candidate
                    break
            if task is None:
                yield ("wait", self.qcv)
                yield ("release", self.qlock)
                continue
            self.pending.remove(task)
            yield ("release", self.qlock)
            # execute outside the queue lock: the server exclusively owns
            # the monitor state (Rule 1 by construction)
            yield ("compute", task.cost)
            value = task.effect()
            self.executed += 1
            if task.future is not None:
                yield from task.future.complete(value)


class Rule2Worker:
    """Per-worker Rule-2 enforcement: one outstanding async task at a time."""

    __slots__ = ("monitor", "_last")

    def __init__(self, monitor: SimActiveMonitor):
        self.monitor = monitor
        self._last: Optional[SimFuture] = None

    def put_async(self, pre, cost: float, effect):
        """Generator: wait for the previous async task, then submit."""
        if self._last is not None and not self._last.done:
            yield from self._last.get()
        self._last = yield from self.monitor.submit_async(pre, cost, effect)

    def call_sync(self, pre, cost: float, effect):
        value = yield from self.monitor.call_sync(pre, cost, effect)
        return value
