"""Deterministic discrete-event multicore simulator (the hardware substitute)."""

from repro.sim.active import Rule2Worker, SimActiveMonitor, SimFuture
from repro.sim.kernel import Kernel, SimCondVar, SimLock, SimThread
from repro.sim.monitors import SimMonitor
from repro.sim.multicast import sim_multicast
from repro.sim.multiobj import sim_pizza_store, sim_take_and_put
from repro.sim.workloads import (
    sim_bounded_buffer,
    sim_param_bounded_buffer,
    sim_round_robin,
)
from repro.sim.workloads_active import sim_active_queue
from repro.sim.workloads_ch2 import sim_dining, sim_h2o, sim_readers_writers

__all__ = [
    "Kernel",
    "SimLock",
    "SimCondVar",
    "SimThread",
    "SimMonitor",
    "SimActiveMonitor",
    "SimFuture",
    "Rule2Worker",
    "sim_bounded_buffer",
    "sim_param_bounded_buffer",
    "sim_round_robin",
    "sim_active_queue",
    "sim_pizza_store",
    "sim_take_and_put",
    "sim_multicast",
    "sim_h2o",
    "sim_dining",
    "sim_readers_writers",
]
