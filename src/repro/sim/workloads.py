"""Simulated workloads regenerating the paper's scaling figures at full
thread counts (2..256) on a simulated multicore.

Each function builds a kernel, spawns simulated threads, runs to quiescence,
and returns ``(virtual_time, context_switches, monitor_stats)``.  The
explicit variants hand-code condition variables exactly as the paper's Java
baselines do (single ``signal`` where the waiter is known, ``signal_all``
where it is not).
"""

from __future__ import annotations

from typing import Any

from repro.sim.kernel import Kernel
from repro.sim.monitors import SimMonitor

#: simulated cost of the work a monitor operation does on shared state
CS_WORK = 2.0
#: simulated out-of-monitor work between operations
LOCAL_WORK = 4.0


def _result(kernel: Kernel, monitor: SimMonitor | None) -> dict[str, Any]:
    stats = {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
        "time_by_category": dict(kernel.time_by_category),
        "blocked_time": dict(kernel.blocked_time),
    }
    if monitor is not None:
        stats.update(
            predicate_evals=monitor.predicate_evals,
            signals=monitor.signals,
            broadcasts=monitor.broadcasts,
        )
    return stats


# ------------------------------------------------------------- bounded buffer
def sim_bounded_buffer(
    mode: str,
    n_producers: int,
    n_consumers: int,
    items_per_producer: int,
    capacity: int = 8,
    n_cores: int = 8,
    local_work: float = LOCAL_WORK,
) -> dict[str, Any]:
    """Fig. 2.4 in the simulator: explicit / baseline / autosynch_t / autosynch.

    Producers and consumers run with deterministic per-thread jitter so the
    buffer actually oscillates between full and empty (forcing condition
    waits) instead of settling into a lock-step rhythm.
    """
    kernel = Kernel(n_cores=n_cores)
    state = {"count": 0}
    total = n_producers * items_per_producer
    per_consumer, leftover = divmod(total, n_consumers)

    def jitter(tid: int, op: int) -> float:
        return float((tid * 17 + op * 29) % 23)

    if mode == "explicit":
        lock = kernel.lock()
        not_full = kernel.condvar(lock)
        not_empty = kernel.condvar(lock)

        def producer(tid: int):
            for op in range(items_per_producer):
                yield ("compute", jitter(tid, op))
                yield ("acquire", lock)
                while state["count"] == capacity:
                    yield ("wait", not_full)
                yield ("compute", CS_WORK)
                state["count"] += 1
                yield ("signal", not_empty)
                yield ("release", lock)
                yield ("compute", local_work)

        def consumer(tid: int, quota: int):
            for op in range(quota):
                yield ("compute", jitter(tid, op))
                yield ("acquire", lock)
                while state["count"] == 0:
                    yield ("wait", not_empty)
                yield ("compute", CS_WORK)
                state["count"] -= 1
                yield ("signal", not_full)
                yield ("release", lock)
                yield ("compute", local_work)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def producer(tid: int):
            for op in range(items_per_producer):
                yield ("compute", jitter(tid, op))
                yield from monitor.enter()
                yield from monitor.wait_until(
                    lambda: state["count"] < capacity,
                    hint=("th", lambda: state["count"], "<", capacity),
                )
                yield ("compute", CS_WORK)
                state["count"] += 1
                yield from monitor.exit()
                yield ("compute", local_work)

        def consumer(tid: int, quota: int):
            for op in range(quota):
                yield ("compute", jitter(tid, op))
                yield from monitor.enter()
                yield from monitor.wait_until(
                    lambda: state["count"] > 0,
                    hint=("th", lambda: state["count"], ">", 0),
                )
                yield ("compute", CS_WORK)
                state["count"] -= 1
                yield from monitor.exit()
                yield ("compute", local_work)

    for i in range(n_producers):
        kernel.spawn(producer(i))
    for i in range(n_consumers):
        kernel.spawn(consumer(n_producers + i, per_consumer + (1 if i < leftover else 0)))
    kernel.run()
    assert kernel.all_done(), "simulated bounded buffer deadlocked"
    return _result(kernel, monitor)


# -------------------------------------------------- parameterized bounded buffer
def sim_param_bounded_buffer(
    mode: str,
    n_consumers: int,
    batches_per_consumer: int,
    capacity: int = 512,
    max_batch: int = 128,
    n_cores: int = 8,
    seed: int = 42,
) -> dict[str, Any]:
    """Figs. 2.9/2.10 in the simulator: explicit (signalAll) vs autosynch."""
    import random

    rng = random.Random(seed)
    kernel = Kernel(n_cores=n_cores)
    state = {"count": 0}
    plans = [
        [rng.randint(1, max_batch) for _ in range(batches_per_consumer)]
        for _ in range(n_consumers)
    ]
    supply: list[int] = [n for plan in plans for n in plan]
    rng.shuffle(supply)

    if mode == "explicit":
        lock = kernel.lock()
        insufficient_space = kernel.condvar(lock)
        insufficient_items = kernel.condvar(lock)

        def producer():
            for n in supply:
                yield ("acquire", lock)
                while state["count"] + n > capacity:
                    yield ("wait", insufficient_space)
                yield ("compute", CS_WORK)
                state["count"] += n
                yield ("signal_all", insufficient_items)
                yield ("release", lock)

        def consumer(plan):
            for num in plan:
                yield ("acquire", lock)
                while state["count"] < num:
                    yield ("wait", insufficient_items)
                yield ("compute", CS_WORK)
                state["count"] -= num
                yield ("signal_all", insufficient_space)
                yield ("release", lock)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def producer():
            for n in supply:
                yield from monitor.enter()
                yield from monitor.wait_until(
                    lambda n=n: state["count"] + n <= capacity,
                    hint=("th", lambda: state["count"], "<=", capacity - n),
                )
                yield ("compute", CS_WORK)
                state["count"] += n
                yield from monitor.exit()

        def consumer(plan):
            for num in plan:
                yield from monitor.enter()
                yield from monitor.wait_until(
                    lambda num=num: state["count"] >= num,
                    hint=("th", lambda: state["count"], ">=", num),
                )
                yield ("compute", CS_WORK)
                state["count"] -= num
                yield from monitor.exit()

    kernel.spawn(producer())
    for plan in plans:
        kernel.spawn(consumer(plan))
    kernel.run()
    assert kernel.all_done(), "simulated parameterized buffer deadlocked"
    return _result(kernel, monitor)


# ------------------------------------------------------------------ round robin
def sim_round_robin(
    mode: str,
    n_threads: int,
    rounds: int,
    n_cores: int = 8,
    local_work: float = 0.0,
) -> dict[str, Any]:
    """Figs. 2.6/2.11 in the simulator: the equivalence-tag showcase.

    Per-thread deterministic jitter between rounds prevents the degenerate
    alignment where FIFO lock order happens to equal round-robin order and
    nobody ever reaches a condition wait.
    """
    kernel = Kernel(n_cores=n_cores)
    state = {"current": 0}

    def jitter(my_id: int, round_no: int) -> float:
        return float((my_id * 7 + round_no * 13) % 11)

    if mode == "explicit":
        lock = kernel.lock()
        turn = [kernel.condvar(lock) for _ in range(n_threads)]

        def worker(my_id: int):
            for r in range(rounds):
                yield ("compute", jitter(my_id, r))
                yield ("acquire", lock)
                while state["current"] != my_id:
                    yield ("wait", turn[my_id])
                yield ("compute", CS_WORK)
                state["current"] = (state["current"] + 1) % n_threads
                yield ("signal", turn[state["current"]])
                yield ("release", lock)
                if local_work:
                    yield ("compute", local_work)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def worker(my_id: int):
            for r in range(rounds):
                yield ("compute", jitter(my_id, r))
                yield from monitor.enter()
                yield from monitor.wait_until(
                    lambda my_id=my_id: state["current"] == my_id,
                    hint=("eq", lambda: state["current"], my_id),
                )
                yield ("compute", CS_WORK)
                state["current"] = (state["current"] + 1) % n_threads
                yield from monitor.exit()
                if local_work:
                    yield ("compute", local_work)

    for i in range(n_threads):
        kernel.spawn(worker(i))
    kernel.run()
    assert kernel.all_done(), "simulated round robin deadlocked"
    return _result(kernel, monitor)
