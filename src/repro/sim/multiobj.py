"""Simulated multi-object synchronization: GL vs per-object monitors + CC.

Regenerates the shape of Fig. 4.7 (pizza store) at paper-scale thread
counts: a coarse global lock serializes every cook, while per-ingredient
locks acquired in id order (multisynch) let cooks with disjoint recipes
overlap across simulated cores, with critical-clause signaling waking a
cook only when one of its ingredients was restocked.
"""

from __future__ import annotations

import random
from typing import Any

from repro.sim.kernel import Kernel, SimCondVar

CS_WORK = 2.0
EVAL_COST = 0.5


def sim_pizza_store(
    variant: str,
    n_cooks: int,
    pizzas_per_cook: int,
    n_ingredients: int = 15,
    restock: int = 6,
    n_cores: int = 8,
    seed: int = 11,
) -> dict[str, Any]:
    """Fig. 4.7 in the simulator: ``gl`` vs ``cc``.

    Suppliers restock round-robin; cooks consume 3-ingredient recipes.
    Returns virtual time, context switches, and signaling-evaluation counts.
    """
    rng = random.Random(seed)
    recipes = []
    for _ in range(15):
        chosen = rng.sample(range(n_ingredients), 3)
        recipes.append({i: rng.randint(1, 4) for i in chosen})
    plans = [
        [recipes[rng.randrange(len(recipes))] for _ in range(pizzas_per_cook)]
        for _ in range(n_cooks)
    ]
    kernel = Kernel(n_cores=n_cores)
    quantity = [0] * n_ingredients
    remaining = [n_cooks * pizzas_per_cook]
    stats = {"evals": 0, "false_signals": 0}

    if variant == "gl":
        lock = kernel.lock("store")
        cond = kernel.condvar(lock)

        def cook(plan):
            for recipe in plan:
                yield ("acquire", lock)
                parked_before = False
                while True:
                    stats["evals"] += len(recipe)
                    yield ("compute", EVAL_COST * len(recipe))
                    if all(quantity[i] >= n for i, n in recipe.items()):
                        break
                    if parked_before:
                        stats["false_signals"] += 1   # broadcast futile wakeup
                    parked_before = True
                    yield ("wait", cond)
                yield ("compute", CS_WORK)
                for i, n in recipe.items():
                    quantity[i] -= n
                remaining[0] -= 1
                yield ("release", lock)

        def supplier():
            i = 0
            while remaining[0] > 0:
                yield ("acquire", lock)
                quantity[i % n_ingredients] += restock
                yield ("compute", CS_WORK)
                yield ("signal_all", cond)
                yield ("release", lock)
                i += 1
                yield ("compute", 3.0)   # travel between deliveries

    elif variant in ("as", "av", "cc"):
        locks = [kernel.lock(f"ing{i}") for i in range(n_ingredients)]
        #: per-ingredient waiter tables; entry layout per strategy:
        #:   AS: [cv, signaled]
        #:   AV: [cv, signaled, cells, recipe]   (cells: ingredient -> bool)
        #:   CC: [cv, signaled, threshold]
        tables: list[list[list]] = [[] for _ in range(n_ingredients)]
        park_lock = kernel.lock("park")

        def cook(plan):
            for recipe in plan:
                order = sorted(recipe)
                parked_before = False
                while True:
                    for i in order:
                        yield ("acquire", locks[i])
                    stats["evals"] += len(recipe)
                    yield ("compute", EVAL_COST * len(recipe))
                    if all(quantity[i] >= n for i, n in recipe.items()):
                        break
                    if parked_before:
                        stats["false_signals"] += 1   # woke, re-checked false
                    parked_before = True
                    cv = SimCondVar(park_lock)
                    if variant == "av":
                        cells = {i: quantity[i] >= n for i, n in recipe.items()}
                        entry = [cv, False, cells, dict(recipe)]
                        for i in recipe:
                            tables[i].append(entry)
                    elif variant == "cc":
                        # Algorithm 3: the critical clause of a false
                        # conjunction is ONE false conjunct — register only
                        # on the first insufficient ingredient
                        short = next(
                            i for i, n in recipe.items() if quantity[i] < n
                        )
                        tables[short].append([cv, False, recipe[short]])
                    else:  # as
                        entry = [cv, False]
                        for i in recipe:
                            tables[i].append(entry)
                    yield ("acquire", park_lock)
                    for i in reversed(order):
                        yield ("release", locks[i])
                    yield ("wait", cv)
                    yield ("release", park_lock)
                    for i in recipe:
                        tables[i] = [e for e in tables[i] if e[0] is not cv]
                yield ("compute", CS_WORK)
                for i, n in recipe.items():
                    quantity[i] -= n
                remaining[0] -= 1
                for i in reversed(order):
                    yield ("release", locks[i])

        def supplier():
            i = 0
            while remaining[0] > 0:
                idx = i % n_ingredients
                yield ("acquire", locks[idx])
                quantity[idx] += restock
                yield ("compute", CS_WORK)
                for entry in list(tables[idx]):
                    if entry[1]:
                        continue
                    if variant == "as":
                        wake = True           # always-signal: no evaluation
                    elif variant == "av":
                        # refresh this ingredient's mirror cell, then check P̂
                        stats["evals"] += 1
                        yield ("compute", EVAL_COST)
                        entry[2][idx] = quantity[idx] >= entry[3][idx]
                        wake = all(entry[2].values())
                    else:  # cc: evaluate only the local critical clause
                        stats["evals"] += 1
                        yield ("compute", EVAL_COST)
                        wake = quantity[idx] >= entry[2]
                    if wake:
                        entry[1] = True
                        yield ("acquire", park_lock)
                        yield ("signal", entry[0])
                        yield ("release", park_lock)
                yield ("release", locks[idx])
                i += 1
                yield ("compute", 3.0)

    else:
        raise ValueError(f"unknown sim pizza variant {variant!r}")

    for plan in plans:
        kernel.spawn(cook(plan))
    kernel.spawn(supplier())
    kernel.run(max_time=5e7)
    done = remaining[0] == 0
    return {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
        "evals": stats["evals"],
        "false_signals": stats["false_signals"],
        "completed": done,
    }


def sim_take_and_put(
    variant: str,
    n_threads: int,
    moves_per_thread: int,
    n_queues: int = 16,
    n_cores: int = 8,
    seed: int = 3,
) -> dict[str, Any]:
    """Fig. 4.6's core contrast on the simulated multicore.

    Buffers are generously prefilled (the paper's 2048-slot regime), so the
    global condition is essentially always true and the figure reduces to
    locking structure: ``gl`` serializes every move through one lock, while
    ``fg`` (the multisynch discipline shared by AS/AV/CC when waits are
    rare) takes the two queue locks in id order — disjoint moves overlap
    across cores.
    """
    rng = random.Random(seed)
    kernel = Kernel(n_cores=n_cores)
    counts = [10_000] * n_queues       # ample: no move ever blocks
    plans = [
        [tuple(rng.sample(range(n_queues), 2)) for _ in range(moves_per_thread)]
        for _ in range(n_threads)
    ]

    def jitter(t: int, op: int) -> float:
        return float((t * 13 + op * 7) % 11)

    if variant == "gl":
        lock = kernel.lock("global")

        def mover(tid: int, plan):
            for op, (src, dst) in enumerate(plan):
                yield ("compute", jitter(tid, op))
                yield ("acquire", lock)
                yield ("compute", EVAL_COST * 2 + CS_WORK)
                counts[src] -= 1
                counts[dst] += 1
                yield ("release", lock)
                yield ("compute", 3.0)     # local work between moves

    elif variant == "fg":
        locks = [kernel.lock(f"q{i}") for i in range(n_queues)]

        def mover(tid: int, plan):
            for op, (src, dst) in enumerate(plan):
                yield ("compute", jitter(tid, op))
                first, second = min(src, dst), max(src, dst)
                yield ("acquire", locks[first])
                yield ("acquire", locks[second])
                yield ("compute", EVAL_COST * 2 + CS_WORK)
                counts[src] -= 1
                counts[dst] += 1
                yield ("release", locks[second])
                yield ("release", locks[first])
                yield ("compute", 3.0)

    else:
        raise ValueError(f"unknown sim take&put variant {variant!r}")

    for tid, plan in enumerate(plans):
        kernel.spawn(mover(tid, plan))
    kernel.run(max_time=5e7)
    assert kernel.all_done(), "simulated take&put wedged"
    assert sum(counts) == 10_000 * n_queues, "items not conserved"
    return {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
        "moves": n_threads * moves_per_thread,
    }
