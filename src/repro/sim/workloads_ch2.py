"""Simulated H2O, dining-philosophers and ticket readers/writers workloads —
completing simulator coverage of every chapter-2 figure (2.5, 2.7, 2.8).

As with the other simulated workloads, the explicit variants are hand-tuned
condition-variable programs and the automatic variants run through
:class:`~repro.sim.monitors.SimMonitor` under the chosen discipline.
"""

from __future__ import annotations

from typing import Any

from repro.sim.kernel import Kernel
from repro.sim.monitors import SimMonitor

CS_WORK = 2.0


def _result(kernel: Kernel, monitor: SimMonitor | None) -> dict[str, Any]:
    out = {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
    }
    if monitor is not None:
        out["predicate_evals"] = monitor.predicate_evals
        out["signals"] = monitor.signals
        out["broadcasts"] = monitor.broadcasts
    return out


# ------------------------------------------------------------------------ H2O
def sim_h2o(mode: str, n_hydrogen: int, molecules: int, n_cores: int = 8
            ) -> dict[str, Any]:
    """Fig. 2.5 in the simulator (shared predicates only)."""
    kernel = Kernel(n_cores=n_cores)
    state = {"avail_o": 0, "avail_h": 0, "wait_o": 0, "wait_h": 0}
    tickets = [2 * molecules]

    def o_condition():
        return state["avail_o"] > 0 or state["wait_h"] >= 2

    def h_condition():
        return state["avail_h"] > 0 or (state["wait_o"] >= 1 and state["wait_h"] >= 2)

    def o_body():
        if state["avail_o"] == 0:
            state["wait_h"] -= 2
            state["avail_h"] += 2
            state["wait_o"] -= 1
        else:
            state["avail_o"] -= 1

    def h_body():
        if state["avail_h"] == 0:
            state["wait_h"] -= 2
            state["avail_h"] += 1
            state["wait_o"] -= 1
            state["avail_o"] += 1
        else:
            state["avail_h"] -= 1

    if mode == "explicit":
        lock = kernel.lock()
        cond = kernel.condvar(lock)

        def oxygen():
            for _ in range(molecules):
                yield ("acquire", lock)
                state["wait_o"] += 1
                while not o_condition():
                    yield ("wait", cond)
                yield ("compute", CS_WORK)
                o_body()
                yield ("signal_all", cond)
                yield ("release", lock)

        def hydrogen(tid: int):
            while True:
                yield ("acquire", lock)
                if tickets[0] == 0:
                    yield ("release", lock)
                    return
                tickets[0] -= 1
                state["wait_h"] += 1
                while not h_condition():
                    yield ("wait", cond)
                yield ("compute", CS_WORK)
                h_body()
                yield ("signal_all", cond)
                yield ("release", lock)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def oxygen():
            for _ in range(molecules):
                yield from monitor.enter()
                state["wait_o"] += 1
                yield from monitor.wait_until(
                    o_condition, hint=("th", lambda: state["wait_h"], ">=", 2)
                )
                yield ("compute", CS_WORK)
                o_body()
                yield from monitor.exit()

        def hydrogen(tid: int):
            while True:
                yield from monitor.enter()
                if tickets[0] == 0:
                    yield from monitor.exit()
                    return
                tickets[0] -= 1
                state["wait_h"] += 1
                yield from monitor.wait_until(h_condition)
                yield ("compute", CS_WORK)
                h_body()
                yield from monitor.exit()

    kernel.spawn(oxygen())
    for i in range(n_hydrogen):
        kernel.spawn(hydrogen(i))
    kernel.run(max_time=5e7)
    assert kernel.all_done(), "simulated H2O stranded"
    return _result(kernel, monitor)


# ------------------------------------------------------------------- dining
def sim_dining(mode: str, n_philosophers: int, meals: int, n_cores: int = 8
               ) -> dict[str, Any]:
    """Fig. 2.8 in the simulator (single table monitor)."""
    kernel = Kernel(n_cores=n_cores)
    forks = [True] * n_philosophers

    def jitter(i: int, r: int) -> float:
        return float((i * 11 + r * 17) % 13)

    eat_time = 6.0   # eating happens outside the monitor (forks held)

    if mode == "explicit":
        lock = kernel.lock()
        conds = [kernel.condvar(lock) for _ in range(n_philosophers)]

        def philosopher(i: int):
            left, right = i, (i + 1) % n_philosophers
            for r in range(meals):
                yield ("compute", jitter(i, r))
                yield ("acquire", lock)               # pick_up section
                while not (forks[left] and forks[right]):
                    yield ("wait", conds[i])
                forks[left] = forks[right] = False
                yield ("compute", CS_WORK)
                yield ("release", lock)
                yield ("compute", eat_time)           # eat concurrently
                yield ("acquire", lock)               # put_down section
                forks[left] = forks[right] = True
                yield ("compute", CS_WORK)
                yield ("signal", conds[(i - 1) % n_philosophers])
                yield ("signal", conds[(i + 1) % n_philosophers])
                yield ("release", lock)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def philosopher(i: int):
            left, right = i, (i + 1) % n_philosophers
            for r in range(meals):
                yield ("compute", jitter(i, r))
                yield from monitor.enter()            # pick_up section
                yield from monitor.wait_until(
                    lambda left=left, right=right: forks[left] and forks[right]
                )
                forks[left] = forks[right] = False
                yield ("compute", CS_WORK)
                yield from monitor.exit()
                yield ("compute", eat_time)           # eat concurrently
                yield from monitor.enter()            # put_down section
                forks[left] = forks[right] = True
                yield ("compute", CS_WORK)
                yield from monitor.exit()

    for i in range(n_philosophers):
        kernel.spawn(philosopher(i))
    kernel.run(max_time=5e7)
    assert kernel.all_done(), "simulated dining stranded"
    return _result(kernel, monitor)


# ---------------------------------------------------------- readers/writers
def sim_readers_writers(mode: str, n_writers: int, n_readers: int, rounds: int,
                        n_cores: int = 8) -> dict[str, Any]:
    """Fig. 2.7 in the simulator (ticket discipline, equivalence hints)."""
    kernel = Kernel(n_cores=n_cores)
    state = {"tickets": 0, "serving": 0, "readers": 0}

    def jitter(i: int, r: int) -> float:
        return float((i * 23 + r * 7) % 17)

    if mode == "explicit":
        lock = kernel.lock()
        turn: dict[int, object] = {}

        def cond_for(ticket: int):
            cv = turn.get(ticket)
            if cv is None:
                cv = kernel.condvar(lock)
                turn[ticket] = cv
            return cv

        def signal_next():
            cv = turn.get(state["serving"])
            return ("signal", cv) if cv is not None else None

        def reader(i: int):
            for r in range(rounds):
                yield ("compute", jitter(i, r))
                yield ("acquire", lock)
                ticket = state["tickets"]
                state["tickets"] += 1
                while state["serving"] != ticket:
                    yield ("wait", cond_for(ticket))
                turn.pop(ticket, None)
                state["readers"] += 1
                state["serving"] += 1
                request = signal_next()
                if request:
                    yield request
                yield ("compute", CS_WORK)
                state["readers"] -= 1
                yield ("release", lock)

        def writer(i: int):
            for r in range(rounds):
                yield ("compute", jitter(1000 + i, r))
                yield ("acquire", lock)
                ticket = state["tickets"]
                state["tickets"] += 1
                while state["serving"] != ticket or state["readers"] != 0:
                    yield ("wait", cond_for(ticket))
                turn.pop(ticket, None)
                yield ("compute", CS_WORK)
                state["serving"] += 1
                request = signal_next()
                if request:
                    yield request
                yield ("release", lock)

        monitor = None
    else:
        monitor = SimMonitor(kernel, mode=mode)

        def reader(i: int):
            for r in range(rounds):
                yield ("compute", jitter(i, r))
                yield from monitor.enter()
                ticket = state["tickets"]
                state["tickets"] += 1
                yield from monitor.wait_until(
                    lambda ticket=ticket: state["serving"] == ticket,
                    hint=("eq", lambda: state["serving"], ticket),
                )
                state["readers"] += 1
                state["serving"] += 1
                yield ("compute", CS_WORK)
                state["readers"] -= 1
                yield from monitor.exit()

        def writer(i: int):
            for r in range(rounds):
                yield ("compute", jitter(1000 + i, r))
                yield from monitor.enter()
                ticket = state["tickets"]
                state["tickets"] += 1
                yield from monitor.wait_until(
                    lambda ticket=ticket: state["serving"] == ticket
                    and state["readers"] == 0,
                    hint=("eq", lambda: state["serving"], ticket),
                )
                yield ("compute", CS_WORK)
                state["serving"] += 1
                yield from monitor.exit()

    for i in range(n_readers):
        kernel.spawn(reader(i))
    for i in range(n_writers):
        kernel.spawn(writer(i))
    kernel.run(max_time=5e7)
    assert kernel.all_done(), "simulated readers/writers stranded"
    return _result(kernel, monitor)
