"""Simulated Chapter-3 workloads: delegation vs locking on the DES multicore.

``sim_active_queue`` regenerates Fig. 3.4's bounded-FIFO-queue contrast:

* ``lk`` — workers acquire the monitor lock themselves (explicit monitor);
* ``am`` — enqueues are delegated to the server thread (asynchronous);
  dequeues are synchronous (future-blocking), as in the real ActiveMonitor.

With per-operation local work and several simulated cores, delegation lets
producers overlap their local computation with the server's critical
sections — the effect the paper measures and the GIL erases.
"""

from __future__ import annotations

from typing import Any

from repro.sim.active import SimActiveMonitor
from repro.sim.kernel import Kernel

CS_WORK = 3.0
LOCAL_WORK = 6.0


def sim_active_queue(
    variant: str,
    n_threads: int,
    ops_per_thread: int,
    capacity: int = 16,
    n_cores: int = 8,
    local_work: float = LOCAL_WORK,
) -> dict[str, Any]:
    """Fig. 3.4 in the simulator (one capacity point)."""
    kernel = Kernel(n_cores=n_cores)
    state = {"count": 0}
    n_producers = max(1, n_threads // 2)
    n_consumers = max(1, n_threads - n_producers)
    total_in = n_producers * ops_per_thread
    per_consumer, leftover = divmod(total_in, n_consumers)

    def jitter(tid: int, op: int) -> float:
        return float((tid * 13 + op * 7) % 11)

    if variant == "lk":
        lock = kernel.lock()
        not_full = kernel.condvar(lock)
        not_empty = kernel.condvar(lock)

        def producer(tid: int):
            for op in range(ops_per_thread):
                yield ("compute", jitter(tid, op))
                yield ("acquire", lock)
                while state["count"] == capacity:
                    yield ("wait", not_full)
                yield ("compute", CS_WORK)
                state["count"] += 1
                yield ("signal", not_empty)
                yield ("release", lock)
                yield ("compute", local_work)

        def consumer(tid: int, quota: int):
            for op in range(quota):
                yield ("compute", jitter(tid, op))
                yield ("acquire", lock)
                while state["count"] == 0:
                    yield ("wait", not_empty)
                yield ("compute", CS_WORK)
                state["count"] -= 1
                yield ("signal", not_full)
                yield ("release", lock)
                yield ("compute", local_work)

        server_tasks = 0
    elif variant == "am":
        from repro.sim.active import Rule2Worker

        monitor = SimActiveMonitor(kernel)

        def put_effect():
            state["count"] += 1

        def take_effect():
            state["count"] -= 1
            return state["count"]

        def producer(tid: int):
            worker = Rule2Worker(monitor)   # Rule 2: one outstanding task
            for op in range(ops_per_thread):
                yield ("compute", jitter(tid, op))
                yield from worker.put_async(
                    lambda: state["count"] < capacity, CS_WORK, put_effect
                )
                yield ("compute", local_work)

        def consumer(tid: int, quota: int):
            for op in range(quota):
                yield ("compute", jitter(tid, op))
                yield from monitor.call_sync(
                    lambda: state["count"] > 0, CS_WORK, take_effect
                )
                yield ("compute", local_work)

        server_tasks = 2 * total_in
        kernel.spawn(monitor.server(server_tasks))
    else:
        raise ValueError(f"unknown variant {variant!r}")

    for i in range(n_producers):
        kernel.spawn(producer(i))
    for i in range(n_consumers):
        kernel.spawn(consumer(n_producers + i, per_consumer + (1 if i < leftover else 0)))
    kernel.run()
    assert state["count"] == 0, "simulated queue imbalance"
    return {
        "time": kernel.now,
        "context_switches": kernel.context_switches,
        "ops": 2 * total_in,
    }
