"""Deterministic discrete-event multicore simulator.

The paper's evaluation machines (16×4-core and 4×10-core Xeons) are not
available, and CPython's GIL serializes real threads anyway; this kernel
reproduces the *shape* of every thread-scaling figure by simulating the
scheduling behaviour the paper's analysis actually rests on: context-switch
cost per wakeup, serialized critical sections, predicate-evaluation work,
and bounded hardware parallelism.

Simulated threads are Python generators yielding kernel requests:

* ``("compute", cycles)``      — occupy a core for ``cycles`` time units;
* ``("acquire", lock)``        — block until the lock is granted;
* ``("release", lock)``        — hand the lock to the next waiter (FIFO);
* ``("wait", condvar)``        — atomically release the condvar's lock and
  sleep until signaled, then re-acquire;
* ``("signal", condvar)`` / ``("signal_all", condvar)``;
* plain ``yield`` of a positive number is shorthand for compute.

Causality: synchronization requests are executed in strict global
(time, sequence) order — a thread that reaches a lock operation at local
time ``t`` is suspended until every pending event earlier than ``t`` has
been processed.  This makes runs fully deterministic and makes FIFO lock
grants honour true arrival times, not host scheduling accidents.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Generator, Optional

SimGen = Generator[Any, Any, None]

_SYNC_KINDS = ("acquire", "release", "wait", "signal", "signal_all")


class SimLock:
    """FIFO mutex in the simulated machine."""

    __slots__ = ("owner", "queue", "name")

    def __init__(self, name: str = "lock"):
        self.owner: Optional["SimThread"] = None
        self.queue: deque["SimThread"] = deque()
        self.name = name

    def __repr__(self):
        return f"<SimLock {self.name}>"


class SimCondVar:
    """Condition variable bound to a :class:`SimLock`."""

    __slots__ = ("lock", "queue", "name")

    def __init__(self, lock: SimLock, name: str = "cv"):
        self.lock = lock
        self.queue: deque["SimThread"] = deque()
        self.name = name


class SimThread:
    """Bookkeeping for one simulated thread."""

    __slots__ = ("gen", "tid", "done", "pending", "blocked_at", "blocked_kind")

    def __init__(self, gen: SimGen, tid: int):
        self.gen = gen
        self.tid = tid
        self.done = False
        #: a sync request that reached its action time but had to queue
        #: behind earlier global events
        self.pending: Any = None
        #: virtual time at which the thread blocked, and why ("lock"/"wait")
        self.blocked_at: float | None = None
        self.blocked_kind: str = ""

    def __repr__(self):
        return f"<SimThread {self.tid}>"


class Kernel:
    """The simulated machine: cores, clock, scheduler."""

    def __init__(self, n_cores: int = 8, ctx_switch_cost: float = 5.0):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.ctx_switch_cost = ctx_switch_cost
        self._cores = [0.0] * n_cores          # earliest-free time per core
        self._events: list[tuple[float, int, SimThread]] = []
        # deterministic single-threaded kernel: these counts are only ever
        # drawn from the simulation loop itself, never across OS threads
        self._seq = itertools.count()    # monlint: disable=W014
        self._tids = itertools.count()   # monlint: disable=W014
        self.threads: list[SimThread] = []
        self.context_switches = 0
        self.now = 0.0
        self._max_time = float("inf")
        #: virtual time charged per compute category — a ``("compute", c,
        #: "tag")`` request adds to ``time_by_category["tag"]``; uncategorized
        #: computes land in "work".  Regenerates Table 2.1 in the simulator.
        self.time_by_category: dict[str, float] = {}
        #: total virtual time threads spent blocked, split by cause
        self.blocked_time: dict[str, float] = {"lock": 0.0, "wait": 0.0}

    # ---------------------------------------------------------------- spawn
    def spawn(self, gen: SimGen) -> SimThread:
        thread = SimThread(gen, next(self._tids))
        self.threads.append(thread)
        self._push(thread, 0.0)
        return thread

    def _push(self, thread: SimThread, at: float) -> None:
        heapq.heappush(self._events, (at, next(self._seq), thread))

    def _wake(self, thread: SimThread, at: float) -> None:
        """Schedule a blocked thread's resumption (pays a context switch)."""
        self.context_switches += 1
        if thread.blocked_at is not None:
            self.blocked_time[thread.blocked_kind] += max(0.0, at - thread.blocked_at)
            thread.blocked_at = None
        self._push(thread, at + self.ctx_switch_cost)

    # ------------------------------------------------------------------ run
    def run(self, max_time: float = float("inf")) -> float:
        """Run to quiescence (or ``max_time``); returns the final clock."""
        self._max_time = max_time
        while self._events:
            ready_at, _, thread = heapq.heappop(self._events)
            if ready_at > max_time:
                self.now = max_time
                return self.now
            t = ready_at
            blocked = False
            # a sync request deferred from an earlier step executes first
            if thread.pending is not None:
                request = thread.pending
                thread.pending = None
                blocked = not self._apply_sync(thread, request, t)
            if not blocked:
                # charge core occupancy for the compute segment(s)
                core = min(range(self.n_cores), key=self._cores.__getitem__)
                start = max(t, self._cores[core])
                end = self._advance(thread, start)
                self._cores[core] = end
                self.now = max(self.now, end)
            else:
                self.now = max(self.now, t)
        return self.now

    def _advance(self, thread: SimThread, t: float) -> float:
        """Run ``thread`` from time ``t`` until it blocks, defers, or ends."""
        gen = thread.gen
        step = gen.send if hasattr(gen, "send") else (lambda _none: next(gen))
        while True:
            try:
                request = step(None)
            except StopIteration:
                thread.done = True
                return t
            if isinstance(request, (int, float)):
                t += request
                self.time_by_category["work"] = (
                    self.time_by_category.get("work", 0.0) + request
                )
                if t > self._max_time:
                    return t    # deadline: abandon this thread's remainder
                continue
            kind = request[0]
            if kind == "compute":
                t += request[1]
                category = request[2] if len(request) > 2 else "work"
                self.time_by_category[category] = (
                    self.time_by_category.get(category, 0.0) + request[1]
                )
                if t > self._max_time:
                    return t    # deadline: abandon this thread's remainder
                continue
            if kind not in _SYNC_KINDS:
                raise ValueError(f"unknown sim request {request!r}")
            # sync requests execute in global time order: if an earlier
            # event is pending, defer this request to time t
            if self._events and self._events[0][0] < t:
                thread.pending = request
                self._push(thread, t)
                return t
            if not self._apply_sync(thread, request, t):
                return t  # blocked
            # else: request completed synchronously, keep running

    def _apply_sync(self, thread: SimThread, request: tuple, t: float) -> bool:
        """Execute one sync request at time ``t``.

        Returns False when the thread blocked (caller must stop stepping it).
        """
        kind = request[0]
        if kind == "acquire":
            lock: SimLock = request[1]
            if lock.owner is None:
                lock.owner = thread
                return True
            lock.queue.append(thread)
            thread.blocked_at = t
            thread.blocked_kind = "lock"
            return False
        if kind == "release":
            self._release(request[1], t)
            return True
        if kind == "wait":
            cv: SimCondVar = request[1]
            cv.queue.append(thread)
            self._release(cv.lock, t)
            thread.blocked_at = t
            thread.blocked_kind = "wait"
            return False
        if kind == "signal":
            cv = request[1]
            if cv.queue:
                self._grant_or_queue(cv.queue.popleft(), cv.lock, t)
            return True
        # signal_all
        cv = request[1]
        while cv.queue:
            self._grant_or_queue(cv.queue.popleft(), cv.lock, t)
        return True

    def _release(self, lock: SimLock, t: float) -> None:
        if lock.queue:
            successor = lock.queue.popleft()
            lock.owner = successor
            self._wake(successor, t)
        else:
            lock.owner = None

    def _grant_or_queue(self, thread: SimThread, lock: SimLock, t: float) -> None:
        if lock.owner is None:
            lock.owner = thread
            self._wake(thread, t)
        else:
            lock.queue.append(thread)

    # ------------------------------------------------------------- factories
    def lock(self, name: str = "lock") -> SimLock:
        return SimLock(name)

    def condvar(self, lock: SimLock, name: str = "cv") -> SimCondVar:
        return SimCondVar(lock, name)

    def all_done(self) -> bool:
        return all(t.done for t in self.threads)
