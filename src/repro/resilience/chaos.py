"""Deterministic fault injection for schedule-fuzzing the monitor stack.

The liveness arguments of the paper (relay invariance Prop. 2, Rules 1–3 /
Lemma 1) quantify over *all* schedules, but an unperturbed test run explores
very few.  This module plants named injection sites across the stack so the
test suite can widen the explored schedule space deterministically:

========================  ====================================================
site                      where it fires
========================  ====================================================
``monitor_enter``         before a monitor lock acquisition
``monitor_exit``          after a monitor section's final release
``relay``                 on entry to the relay-signal rule
``signal``                just before a chosen waiter is signaled
``queue_put``             producer side of the server task queue
``queue_steal``           consumer batch-steal of the server task queue
``server_loop``           top of every server-thread loop iteration
========================  ====================================================

Three fault kinds are supported, all drawn from one seeded PRNG so a failing
schedule replays from its seed:

* **delays** — ``time.sleep`` of a random duration in ``delay_range`` with
  probability ``delay_prob`` (stretches race windows);
* **forced context switches** — ``time.sleep(0)`` with probability
  ``switch_prob`` (releases the GIL at the site);
* **thread kills** — raise :class:`ThreadKilledFault` the *n*-th time a site
  fires (one-shot per configured site), e.g. to murder a server thread and
  exercise supervision/fail-fast paths.

Cost discipline (mirrors ``repro.analysis.runtime``): every instrumented hot
path guards its call with the module-global :data:`enabled` flag, so the
disabled cost is one attribute load and one branch — nothing else.

Usage::

    from repro.resilience import chaos

    chaos.configure(seed=42, delay_prob=0.2, switch_prob=0.3)
    chaos.enable()
    try:
        run_workload()
    finally:
        chaos.disable()

    # or, equivalently:
    with chaos.active(seed=42, delay_prob=0.2):
        run_workload()
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Optional

__all__ = [
    "SITES",
    "ThreadKilledFault",
    "active",
    "configure",
    "disable",
    "enable",
    "enabled",
    "fire",
    "reset",
    "stats",
]

#: Every named injection site wired into the stack.
SITES = (
    "monitor_enter",
    "monitor_exit",
    "relay",
    "signal",
    "queue_put",
    "queue_steal",
    "server_loop",
)

#: Fast flag read by instrumented hot paths (``if chaos.enabled: ...``).
#: A plain module attribute mutated under the GIL — same discipline as
#: ``repro.analysis.runtime.enabled``.
enabled = False


class ThreadKilledFault(BaseException):
    """An injected thread-kill fault.

    Deliberately a :class:`BaseException`: user-level ``except Exception``
    handlers must not swallow an injected kill, exactly like a real
    asynchronous thread death.  The server loop's death handler (and
    nothing else) is expected to field it.
    """

    def __init__(self, site: str):
        super().__init__(f"chaos: thread killed at site {site!r}")
        self.site = site


class _ChaosState:
    """The process-global injection engine (one instance, reconfigured)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._reset_locked()

    # ------------------------------------------------------------ life cycle
    def _reset_locked(self) -> None:
        self.rng = random.Random(0)
        self.delay_prob = 0.0
        self.delay_range = (0.0001, 0.001)
        self.switch_prob = 0.0
        self.sites: Optional[frozenset[str]] = None  # None = all sites
        self.site_probs: dict[str, dict[str, Any]] = {}
        self.kill: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self.injected: dict[str, int] = {"delay": 0, "switch": 0, "kill": 0}

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def configure(
        self,
        *,
        seed: Optional[int] = None,
        delay_prob: Optional[float] = None,
        delay_range: Optional[tuple[float, float]] = None,
        switch_prob: Optional[float] = None,
        sites: Optional[Iterable[str]] = None,
        site_probs: Optional[dict[str, dict[str, Any]]] = None,
        kill: Optional[dict[str, int]] = None,
    ) -> None:
        """Set injection parameters; unspecified ones keep their value.

        ``kill`` maps a site name to the 1-based fire count at which a
        :class:`ThreadKilledFault` is raised there (one-shot).  ``sites``
        restricts injection to a subset of :data:`SITES` (None = all).

        ``site_probs`` overrides the global probabilities for individual
        sites, e.g. ``{"server_loop": {"delay_prob": 1.0}}`` injects
        delays only into server loops while every other site keeps the
        global rates.  Recognized per-site keys: ``delay_prob``,
        ``switch_prob``, ``delay_range``.  Overridden sites draw from the
        same seeded PRNG as everything else, so a given (seed,
        configuration) pair still replays the identical fault schedule.
        """
        for name in (list(sites or ()) + list(kill or ())
                     + list(site_probs or ())):
            if name not in SITES:
                raise ValueError(f"unknown chaos site {name!r}; known: {SITES}")
        _SITE_PROB_KEYS = {"delay_prob", "switch_prob", "delay_range"}
        for name, overrides in (site_probs or {}).items():
            unknown = set(overrides) - _SITE_PROB_KEYS
            if unknown:
                raise ValueError(
                    f"unknown site_probs keys {sorted(unknown)} for site "
                    f"{name!r}; known: {sorted(_SITE_PROB_KEYS)}")
        with self._lock:
            if seed is not None:
                self.rng = random.Random(seed)
            if delay_prob is not None:
                self.delay_prob = delay_prob
            if delay_range is not None:
                self.delay_range = delay_range
            if switch_prob is not None:
                self.switch_prob = switch_prob
            if sites is not None:
                self.sites = frozenset(sites)
            if site_probs is not None:
                self.site_probs = {k: dict(v) for k, v in site_probs.items()}
            if kill is not None:
                self.kill = dict(kill)

    # -------------------------------------------------------------- injection
    def fire(self, site: str, obj: Any = None) -> None:
        """Run the configured fault decision for one site hit.

        Called only behind the :data:`enabled` guard.  The PRNG draw and
        all bookkeeping happen under a private lock (deterministic fault
        *sequence* for a given seed and thread interleaving); the sleep
        itself happens outside it.
        """
        delay = 0.0
        switch = False
        with self._lock:
            if self.sites is not None and site not in self.sites:
                return
            n = self.fired.get(site, 0) + 1
            self.fired[site] = n
            k = self.kill.get(site)
            if k is not None and n >= k:
                del self.kill[site]
                self.injected["kill"] += 1
                raise ThreadKilledFault(site)
            overrides = self.site_probs.get(site)
            if overrides is None:
                delay_prob = self.delay_prob
                switch_prob = self.switch_prob
                delay_range = self.delay_range
            else:
                delay_prob = overrides.get("delay_prob", self.delay_prob)
                switch_prob = overrides.get("switch_prob", self.switch_prob)
                delay_range = overrides.get("delay_range", self.delay_range)
            roll = self.rng.random()
            if roll < delay_prob:
                delay = self.rng.uniform(*delay_range)
                self.injected["delay"] += 1
            elif roll < delay_prob + switch_prob:
                switch = True
                self.injected["switch"] += 1
        if delay:
            time.sleep(delay)
        elif switch:
            time.sleep(0)  # drop the GIL: forced context-switch opportunity

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {"fired": dict(self.fired), "injected": dict(self.injected)}


_state = _ChaosState()

#: bound once — instrumented call sites do ``chaos.fire("site")``
fire = _state.fire
configure = _state.configure
stats = _state.stats


def enable() -> None:
    """Arm the injection sites (configure first)."""
    global enabled
    enabled = True


def disable() -> None:
    """Disarm all sites (configuration is kept; ``reset()`` clears it)."""
    global enabled
    enabled = False


def reset() -> None:
    """Disarm and restore the default (inject-nothing) configuration."""
    disable()
    _state.reset()


@contextmanager
def active(**config):
    """``with chaos.active(seed=42, delay_prob=0.2): ...`` — configure,
    arm, and disarm on exit (configuration is kept for inspection)."""
    configure(**config)
    enable()
    try:
        yield _state
    finally:
        disable()
