"""Server supervision: detect dead server threads, fail fast, restart.

A monitor server thread (§3.3) that dies — an injected fault, a bug in a
policy, an OOM-killed interpreter thread — used to leave every queued and
in-flight future pending forever, and every later ``submit`` feeding a
queue nobody drains.  Supervision closes that liveness hole:

1. the server loop's death handler fails all in-flight and queued futures
   *immediately* (``futures_failed_fast`` metric) — callers observe a
   :class:`~repro.runtime.errors.TaskError` instead of hanging;
2. an attached :class:`ServerSupervisor` then restarts the server thread
   under bounded exponential backoff (``server_restarts`` metric), up to
   ``max_restarts`` times, after which it gives up and the monitor degrades
   to synchronous execution (the paper's "asynchronous executions disabled"
   fallback, §1.6).

Attach with :func:`supervise`::

    box = ActiveBoundedQueue(64)
    sup = supervise(box, max_restarts=3)
"""

from __future__ import annotations

import random
import threading
import time
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.active.activemonitor import ActiveMonitor
    from repro.active.server import MonitorServer

__all__ = ["ServerSupervisor", "supervise"]


class ServerSupervisor:
    """Restart policy for one :class:`MonitorServer`.

    ``handle_death`` runs on the dying server thread (after it already
    failed the in-flight futures), so backoff sleeping costs no extra
    thread.  All decisions are serialized under one lock, making the
    poll-based :meth:`check` safe to call concurrently (e.g. from a
    :class:`~repro.resilience.watchdog.StallWatchdog` callback).
    """

    def __init__(
        self,
        server: "MonitorServer",
        *,
        max_restarts: int = 5,
        backoff_base: float = 0.01,
        backoff_factor: float = 2.0,
        backoff_cap: float = 1.0,
        jitter: bool = False,
        max_elapsed: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if max_elapsed is not None and max_elapsed < 0:
            raise ValueError("max_elapsed must be >= 0")
        self.server = server
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        #: decorrelated jitter (AWS-architecture-blog style): each delay is
        #: drawn from ``uniform(base, 3 * previous)``, capped.  Under chaos
        #: that kills many servers at once, deterministic exponential
        #: backoff synchronizes every restart into one thundering herd;
        #: decorrelation spreads them out while keeping the same envelope.
        self.jitter = jitter
        #: total restart *budget* in seconds: once the sum of backoff sleeps
        #: would exceed it, the supervisor gives up even with restarts left.
        self.max_elapsed = max_elapsed
        self._rng = random.Random(seed)
        self._prev_backoff = backoff_base
        self._backoff_spent = 0.0
        self._lock = threading.Lock()
        self._restarts = 0
        self.gave_up = False
        #: every death the supervisor fielded, in order
        self.deaths: list[Optional[BaseException]] = []
        server.supervisor = self

    # ------------------------------------------------------------- properties
    @property
    def restarts(self) -> int:
        return self._restarts

    @property
    def backoff_spent(self) -> float:
        """Total seconds slept in backoff so far (vs ``max_elapsed``)."""
        return self._backoff_spent

    def backoff_for(self, attempt: int) -> float:
        """Backoff before restart number ``attempt``.

        Plain bounded exponential by default; with ``jitter=True`` the
        delay is decorrelated — ``uniform(base, 3 * previous)``, capped —
        which keeps the first delay >= ``backoff_base`` and every delay
        <= ``backoff_cap`` but desynchronizes concurrent supervisors
        (deterministic for a given ``seed`` and call sequence).
        """
        if not self.jitter:
            return min(self.backoff_cap,
                       self.backoff_base * (self.backoff_factor ** attempt))
        delay = min(
            self.backoff_cap,
            self._rng.uniform(self.backoff_base, self._prev_backoff * 3.0),
        )
        self._prev_backoff = max(delay, self.backoff_base)
        return delay

    # ---------------------------------------------------------------- control
    def handle_death(self, exc: Optional[BaseException]) -> bool:
        """Field one server-thread death; returns True when restarted.

        Called by the server's death handler (in-flight futures are already
        failed at this point).  Sleeps the backoff, then respawns the
        server thread — unless the server was stopped deliberately, the
        restart budget is exhausted, or the registry denies a slot.
        """
        server = self.server
        with self._lock:
            self.deaths.append(exc)
            if server._stop:
                return False
            if self._restarts >= self.max_restarts:
                self.gave_up = True
                return False
            attempt = self._restarts
            delay = self.backoff_for(attempt)
            if (self.max_elapsed is not None
                    and self._backoff_spent + delay > self.max_elapsed):
                # the *budget* is exhausted even though restarts remain:
                # sleeping further would stretch the outage past what the
                # operator allowed, so degrade to synchronous execution now
                self.gave_up = True
                return False
            self._restarts += 1
            self._backoff_spent += delay
            time.sleep(delay)
            if server._stop:  # stop() raced the backoff: stay down
                return False
            restarted = server.restart()
            if restarted:
                server.monitor._metrics.add("server_restarts")
            else:
                self.gave_up = True
            return restarted

    def check(self) -> bool:
        """Poll-based detection: True when the server is healthy.

        Catches deaths that bypassed the in-thread handler (should not
        happen in pure Python, but belt-and-braces for embedders): a
        server claiming to be alive whose thread is gone is treated as a
        death with no exception.
        """
        server = self.server
        thread = server._thread
        if server.alive and thread is not None and not thread.is_alive():
            server._on_death(None)
            return False
        return server.alive

    def detach(self) -> None:
        """Stop supervising (the server keeps its fail-fast death handler)."""
        if self.server.supervisor is self:
            self.server.supervisor = None


def supervise(
    target: Union["ActiveMonitor", "MonitorServer"],
    **kwargs,
) -> ServerSupervisor:
    """Attach a :class:`ServerSupervisor` to a server or an ActiveMonitor.

    Raises ``ValueError`` for an ActiveMonitor running without a server
    (mode="sync", asynchronous execution disabled, or registry-denied).
    """
    server = getattr(target, "server", None) or target
    if not hasattr(server, "submit"):
        raise ValueError(f"{target!r} has no monitor server to supervise")
    return ServerSupervisor(server, **kwargs)
