"""Opt-in stall watchdog: structured reports for wedged monitor stacks.

A deadlock or lost-signal bug in a monitor program usually presents as
"the test hangs" — zero information.  The watchdog turns that into a
structured report: which monitors have parked waiters, what predicates
they are waiting on (by compiled-source cache key), who holds which
monitor, and how deep the server queues are.

Design constraints:

* **Off by default, zero hooks.**  The watchdog is a pure polling daemon
  thread; it installs nothing in the monitor hot path.  When you never
  start one, the cost is exactly zero.
* **Lock-free observation.**  Every read is a racy attribute load under
  the GIL (generation counters, waiter lists, queue lengths).  A report
  is a best-effort snapshot — the watchdog must never acquire a monitor
  lock, or it could itself block on the stall it is diagnosing.

Progress is tracked through each monitor's ``_generation`` counter, which
the core bumps on every section exit: a monitor with parked waiters (or a
queued backlog) whose generation has not moved for ``quiet_period``
seconds is reported as stalled.

The watchdog catches the *quiet* failure mode — nothing moves at all.
Its complement, :class:`repro.resilience.obligations.ObligationTracker`,
catches the *busy* one: sections keep exiting, but none of them ever
writes a variable some parked waiter reads (an undischarged signal
obligation — monlint W010 observed live).

Usage::

    dog = StallWatchdog([buf, rw], quiet_period=2.0,
                        on_stall=lambda r: print(r))
    dog.start()
    ...
    dog.stop()
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["MonitorStall", "StallReport", "StallWatchdog"]


@dataclass
class MonitorStall:
    """Snapshot of one stalled monitor."""

    monitor_id: int
    monitor_class: str
    generation: int
    quiet_seconds: float        #: time since the generation last moved
    depth: int                  #: reentrancy depth of the current holder (racy)
    broken: bool                #: poisoned via mark_broken()
    waiters: list[str]          #: one description per parked local waiter
                                #: (includes each predicate's read set)
    global_waiters: int         #: parked multisynch global-condition waiters
    queue_depth: Optional[int]  #: server task-queue backlog (active monitors)
    pending: Optional[int]      #: tasks stolen but not yet executed
    server_alive: Optional[bool]
    var_gens: dict = field(default_factory=dict)
    """Per-variable write generations at snapshot time.  Cross-reference
    with the waiters' read sets: a parked predicate whose read variables
    all show generation 0 is waiting on state nobody has ever written."""

    def describe(self) -> str:
        bits = [
            f"monitor #{self.monitor_id} {self.monitor_class}: "
            f"generation {self.generation} quiet for {self.quiet_seconds:.1f}s"
        ]
        if self.broken:
            bits.append("  state: BROKEN (poisoned)")
        if self.depth:
            bits.append(f"  held (depth={self.depth})")
        if self.var_gens:
            gens = " ".join(
                f"{k}={v}" for k, v in sorted(self.var_gens.items())
            )
            bits.append(f"  write generations: {gens}")
        for w in self.waiters:
            bits.append(f"  waiter: {w}")
        if self.global_waiters:
            bits.append(f"  global waiters parked: {self.global_waiters}")
        if self.queue_depth is not None:
            bits.append(
                f"  server: alive={self.server_alive} "
                f"queue={self.queue_depth} pending={self.pending}"
            )
        return "\n".join(bits)


@dataclass
class StallReport:
    """Everything the watchdog observed in one stalled poll."""

    quiet_period: float
    stalls: list[MonitorStall] = field(default_factory=list)

    def describe(self) -> str:
        head = (
            f"STALL: {len(self.stalls)} monitor(s) made no progress for "
            f">= {self.quiet_period:.1f}s while work was outstanding"
        )
        return "\n".join([head] + [s.describe() for s in self.stalls])

    __str__ = describe


def _describe_waiter(waiter: Any) -> str:
    describe = getattr(waiter, "describe", None)
    if describe is not None:
        try:
            return describe()
        except Exception:  # racy read of a live structure; never fail a report
            pass
    return repr(waiter)


class StallWatchdog:
    """Poll a set of monitors; report when progress stops under load."""

    def __init__(
        self,
        monitors: Iterable[Any] = (),
        *,
        quiet_period: float = 5.0,
        poll_interval: Optional[float] = None,
        on_stall: Optional[Callable[[StallReport], None]] = None,
    ):
        if quiet_period <= 0:
            raise ValueError("quiet_period must be > 0")
        self.quiet_period = quiet_period
        self.poll_interval = (
            poll_interval if poll_interval is not None
            else max(0.05, quiet_period / 4.0)
        )
        self.on_stall = on_stall
        self._monitors: list[Any] = []
        self._last_gen: dict[int, tuple[int, float]] = {}  # id -> (gen, t_changed)
        self._reported: set[int] = set()
        self._lock = threading.Lock()
        self._stop_evt = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.last_report: Optional[StallReport] = None
        self.reports: list[StallReport] = []
        for m in monitors:
            self.watch(m)

    # ----------------------------------------------------------------- set-up
    def watch(self, monitor: Any) -> None:
        """Add a monitor (plain or active) to the watch set."""
        with self._lock:
            if all(m is not monitor for m in self._monitors):
                self._monitors.append(monitor)

    def unwatch(self, monitor: Any) -> None:
        with self._lock:
            self._monitors = [m for m in self._monitors if m is not monitor]
            self._last_gen.pop(id(monitor), None)
            self._reported.discard(id(monitor))

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_evt.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stall-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_evt.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "StallWatchdog":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- inspection
    def poll_once(self) -> Optional[StallReport]:
        """Run one observation pass; returns a report when a stall is seen.

        Exposed for tests and for callers that want watchdog semantics
        without the background thread.
        """
        now = time.monotonic()
        stalls: list[MonitorStall] = []
        with self._lock:
            monitors = list(self._monitors)
        for m in monitors:
            stall = self._observe(m, now)
            if stall is not None:
                stalls.append(stall)
        if not stalls:
            return None
        report = StallReport(quiet_period=self.quiet_period, stalls=stalls)
        self.last_report = report
        self.reports.append(report)
        cb = self.on_stall
        if cb is not None:
            try:
                cb(report)
            except Exception:  # observer errors must not kill the watchdog
                pass
        else:
            print(report.describe(), file=sys.stderr)
        return report

    # ------------------------------------------------------------------ internals
    def _run(self) -> None:
        while not self._stop_evt.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception:
                # An observation race must never kill the watchdog thread.
                pass

    def _observe(self, m: Any, now: float) -> Optional[MonitorStall]:
        gen = getattr(m, "_generation", 0)
        key = id(m)
        prev = self._last_gen.get(key)
        if prev is None or prev[0] != gen:
            self._last_gen[key] = (gen, now)
            self._reported.discard(key)
            return None
        quiet = now - prev[1]
        if quiet < self.quiet_period or key in self._reported:
            return None

        # Racy snapshot — every read is a single attribute/len load.
        cond_mgr = getattr(m, "_cond_mgr", None)
        waiters = list(cond_mgr.waiters) if cond_mgr is not None else []
        var_gens = dict(getattr(cond_mgr, "var_gens", None) or {})
        global_table = getattr(m, "_repro_global_waiters", None)
        global_count = len(global_table) if global_table else 0
        server = getattr(m, "_server", None)
        queue_depth = pending = server_alive = None
        if server is not None:
            try:
                queue_depth = len(server.queue)
                pending = len(server.pending)
                server_alive = server.alive
            except Exception:
                pass

        backlog = bool(waiters) or global_count or (queue_depth or 0) or (pending or 0)
        if not backlog:
            # Quiet but idle: nothing is waiting, so nothing is stalled.
            return None

        self._reported.add(key)
        return MonitorStall(
            monitor_id=getattr(m, "monitor_id", -1),
            monitor_class=type(m).__name__,
            generation=gen,
            quiet_seconds=quiet,
            depth=getattr(m, "_depth", 0),
            broken=getattr(m, "_broken", None) is not None,
            waiters=[_describe_waiter(w) for w in waiters],
            global_waiters=global_count,
            queue_depth=queue_depth,
            pending=pending,
            server_alive=server_alive,
            var_gens=var_gens,
        )
