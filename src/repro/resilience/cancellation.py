"""Cooperative cancellation for monitor waits and future evaluation.

A :class:`CancelToken` is the cancellation analogue of the paper's closure
property (Def. 2): because any thread can re-evaluate a parked predicate,
a waiter can always be *deregistered* without losing a relay signal — the
abandoning thread re-runs the relay rule before unparking, handing any
baton it held to another satisfied waiter.  That is what makes external
cancellation safe here, where it would be a correctness hazard for
hand-signaled condition variables.

Usage::

    token = CancelToken()
    ...
    self.wait_until(S.count > 0, cancel=token)   # raises WaitCancelledError
    future.get(cancel=token)                     # when token.cancel() fires

Tokens are multi-use and thread-safe: one token may guard many concurrent
waits across many monitors; ``cancel()`` wakes all of them.  Cancellation
is sticky — once cancelled, every subsequent guarded wait fails immediately
(build a new token to start a new cancellation scope).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.runtime.errors import WaitCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """A sticky, thread-safe cancellation flag with wakeup callbacks.

    Waiters register a callback (that signals their condition variable /
    event) before parking; ``cancel()`` runs every registered callback so
    no wait sleeps through its own cancellation.  Callbacks run on the
    *cancelling* thread and must therefore be cheap and lock-disciplined —
    the framework's internal wakers only notify a CV under its own lock
    (reentrant-safe even when the canceller is inside the same monitor).
    """

    __slots__ = ("_lock", "_cancelled", "_reason", "_callbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: Any = None
        self._callbacks: list[Callable[[], None]] = []

    # ------------------------------------------------------------- cancelling
    def cancel(self, reason: Any = None) -> bool:
        """Cancel the token; returns False when it was already cancelled.

        Every registered wakeup callback runs exactly once (on this
        thread); callbacks registered after cancellation run immediately
        at registration instead.
        """
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            try:
                cb()
            except Exception:  # noqa: BLE001 — a waker must not kill the canceller
                pass
        return True

    # -------------------------------------------------------------- observing
    def cancelled(self) -> bool:
        """Racy-read-safe check (a plain bool mutated under the GIL)."""
        return self._cancelled

    @property
    def reason(self) -> Any:
        return self._reason

    def raise_if_cancelled(self, what: str = "operation") -> None:
        if self._cancelled:
            raise WaitCancelledError(f"{what} cancelled", self._reason)

    # -------------------------------------------------- waker registration
    def add_callback(self, callback: Callable[[], None]) -> None:
        """Register a wakeup callback; runs immediately if already cancelled."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def remove_callback(self, callback: Callable[[], None]) -> None:
        """Deregister a callback (no-op when it already ran or was removed)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = f"cancelled reason={self._reason!r}" if self._cancelled else "live"
        return f"<CancelToken {state}>"
