"""Cooperative cancellation for monitor waits and future evaluation.

A :class:`CancelToken` is the cancellation analogue of the paper's closure
property (Def. 2): because any thread can re-evaluate a parked predicate,
a waiter can always be *deregistered* without losing a relay signal — the
abandoning thread re-runs the relay rule before unparking, handing any
baton it held to another satisfied waiter.  That is what makes external
cancellation safe here, where it would be a correctness hazard for
hand-signaled condition variables.

Usage::

    token = CancelToken()
    ...
    self.wait_until(S.count > 0, cancel=token)   # raises WaitCancelledError
    future.get(cancel=token)                     # when token.cancel() fires

Tokens are multi-use and thread-safe: one token may guard many concurrent
waits across many monitors; ``cancel()`` wakes all of them.  Cancellation
is sticky — once cancelled, every subsequent guarded wait fails immediately
(build a new token to start a new cancellation scope).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Callable, Optional

from repro.runtime.atomics import AtomicCounter
from repro.runtime.errors import WaitCancelledError

__all__ = ["CancelTimer", "CancelToken"]


class CancelToken:
    """A sticky, thread-safe cancellation flag with wakeup callbacks.

    Waiters register a callback (that signals their condition variable /
    event) before parking; ``cancel()`` runs every registered callback so
    no wait sleeps through its own cancellation.  Callbacks run on the
    *cancelling* thread and must therefore be cheap and lock-disciplined —
    the framework's internal wakers only notify a CV under its own lock
    (reentrant-safe even when the canceller is inside the same monitor).
    """

    __slots__ = ("_lock", "_cancelled", "_reason", "_callbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason: Any = None
        self._callbacks: list[Callable[[], None]] = []

    # ------------------------------------------------------------- cancelling
    def cancel(self, reason: Any = None) -> bool:
        """Cancel the token; returns False when it was already cancelled.

        Every registered wakeup callback runs exactly once (on this
        thread); callbacks registered after cancellation run immediately
        at registration instead.
        """
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            try:
                cb()
            except Exception:  # noqa: BLE001 — a waker must not kill the canceller
                pass
        return True

    # -------------------------------------------------------------- observing
    def cancelled(self) -> bool:
        """Racy-read-safe check (a plain bool mutated under the GIL)."""
        return self._cancelled

    @property
    def reason(self) -> Any:
        return self._reason

    def raise_if_cancelled(self, what: str = "operation") -> None:
        if self._cancelled:
            raise WaitCancelledError(f"{what} cancelled", self._reason)

    # ------------------------------------------------------------- deadlines
    def cancel_after(self, delay: float, reason: Any = None) -> "CancelTimer":
        """Arm a one-shot timer that cancels this token ``delay`` seconds
        from now (deadline-scoped cancellation without hand-rolled timers).

        Returns a :class:`CancelTimer` handle; call its :meth:`~CancelTimer.
        cancel` to disarm when the guarded operation completes first.  All
        timers share one daemon scheduler thread (no thread-per-timer), so
        arming one per request is cheap even at high request rates.  A
        non-positive ``delay`` cancels on the scheduler thread immediately;
        re-arming an already-cancelled token is a no-op (cancellation is
        sticky).  The default reason is ``"deadline"`` so a
        :class:`~repro.runtime.errors.WaitCancelledError` raised by the
        timer is distinguishable from an explicit ``cancel()``.
        """
        if reason is None:
            reason = "deadline"
        return _scheduler().arm(self, delay, reason)

    # -------------------------------------------------- waker registration
    def add_callback(self, callback: Callable[[], None]) -> None:
        """Register a wakeup callback; runs immediately if already cancelled."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def remove_callback(self, callback: Callable[[], None]) -> None:
        """Deregister a callback (no-op when it already ran or was removed)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def __repr__(self) -> str:
        state = f"cancelled reason={self._reason!r}" if self._cancelled else "live"
        return f"<CancelToken {state}>"


class CancelTimer:
    """Handle for one armed :meth:`CancelToken.cancel_after` deadline."""

    __slots__ = ("_disarmed", "deadline", "reason", "token")

    def __init__(self, token: CancelToken, deadline: float, reason: Any):
        self.token = token
        self.deadline = deadline
        self.reason = reason
        self._disarmed = False

    def cancel(self) -> None:
        """Disarm the timer (idempotent; safe after it already fired —
        firing a disarmed timer is a no-op, not an error)."""
        self._disarmed = True

    @property
    def armed(self) -> bool:
        return not self._disarmed

    def _fire(self) -> None:
        if not self._disarmed:
            self.token.cancel(self.reason)


class _DeadlineScheduler:
    """One shared daemon thread expiring :class:`CancelTimer` deadlines.

    A binary heap orders pending deadlines; the thread sleeps until the
    earliest one (or until a new, earlier timer is armed).  Disarmed timers
    are dropped lazily when they surface at the heap top, so ``cancel`` on
    a handle is O(1).  The thread is started lazily on the first ``arm``
    and never joined — it parks on a condition variable when idle.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._heap: list[tuple[float, int, CancelTimer]] = []
        self._tiebreak = AtomicCounter()
        self._thread: Optional[threading.Thread] = None

    def arm(self, token: CancelToken, delay: float, reason: Any) -> CancelTimer:
        timer = CancelTimer(token, time.monotonic() + delay, reason)
        with self._cond:
            heapq.heappush(
                self._heap, (timer.deadline, self._tiebreak.next(), timer))
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="repro-cancel-scheduler", daemon=True
                )
                self._thread.start()
            self._cond.notify()
        return timer

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._heap:
                    self._cond.wait()
                deadline, _, timer = self._heap[0]
                now = time.monotonic()
                if timer._disarmed:
                    heapq.heappop(self._heap)
                    continue
                if deadline > now:
                    self._cond.wait(deadline - now)
                    continue
                heapq.heappop(self._heap)
            # outside the lock: cancel() runs arbitrary waker callbacks
            timer._fire()


_scheduler_instance: Optional[_DeadlineScheduler] = None
_scheduler_lock = threading.Lock()


def _scheduler() -> _DeadlineScheduler:
    global _scheduler_instance
    sched = _scheduler_instance
    if sched is None:
        with _scheduler_lock:
            sched = _scheduler_instance
            if sched is None:
                sched = _scheduler_instance = _DeadlineScheduler()
    return sched
