"""Robustness layer: deadlines, cancellation, supervision, chaos testing.

The paper's algorithms guarantee safety and liveness for *cooperative*
threads on a *healthy* runtime.  This package covers everything outside
that happy path:

* :mod:`repro.resilience.cancellation` — :class:`CancelToken` for
  abandoning monitor waits and future joins cooperatively;
* :mod:`repro.resilience.supervision` — restart dead server threads with
  bounded backoff after failing their futures fast;
* :mod:`repro.resilience.watchdog` — opt-in stall detector producing
  structured reports of parked waiters and queue backlogs;
* :mod:`repro.resilience.obligations` — opt-in signal-obligation checker
  flagging waiters that outlive many section exits with zero writes to
  any variable they read (runtime twin of monlint W010);
* :mod:`repro.resilience.chaos` — seeded fault injection (delays, forced
  context switches, thread kills) at named sites across the stack.

Deadline-bounded waiting itself (``wait_until(..., timeout=)``, monitor
poisoning, ``BrokenMonitorError``) lives in the core/runtime layers; see
``docs/robustness.md`` for the full semantics.

Submodules are loaded lazily (PEP 562): the core hot path imports
:mod:`repro.resilience.chaos`, and an eager import of supervision here
would cycle back through ``repro.active``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "CancelTimer",
    "CancelToken",
    "ObligationReport",
    "ObligationTracker",
    "ServerSupervisor",
    "StallReport",
    "StallWatchdog",
    "ThreadKilledFault",
    "WaiterObligation",
    "chaos",
    "supervise",
]

_EXPORTS = {
    "CancelTimer": ("repro.resilience.cancellation", "CancelTimer"),
    "CancelToken": ("repro.resilience.cancellation", "CancelToken"),
    "ServerSupervisor": ("repro.resilience.supervision", "ServerSupervisor"),
    "supervise": ("repro.resilience.supervision", "supervise"),
    "StallWatchdog": ("repro.resilience.watchdog", "StallWatchdog"),
    "StallReport": ("repro.resilience.watchdog", "StallReport"),
    "ObligationTracker": ("repro.resilience.obligations", "ObligationTracker"),
    "ObligationReport": ("repro.resilience.obligations", "ObligationReport"),
    "WaiterObligation": ("repro.resilience.obligations", "WaiterObligation"),
    "ThreadKilledFault": ("repro.resilience.chaos", "ThreadKilledFault"),
    "chaos": ("repro.resilience.chaos", None),
}

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience import chaos
    from repro.resilience.cancellation import CancelTimer, CancelToken
    from repro.resilience.chaos import ThreadKilledFault
    from repro.resilience.obligations import (
        ObligationReport,
        ObligationTracker,
        WaiterObligation,
    )
    from repro.resilience.supervision import ServerSupervisor, supervise
    from repro.resilience.watchdog import StallReport, StallWatchdog


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
