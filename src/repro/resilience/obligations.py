"""Opt-in runtime signal-obligation checker.

The static liveness pass (``repro.analysis.liveness``, rules W010–W012)
proves at lint time that every ``wait_until`` has *some* reachable section
able to write a variable its predicate reads.  This module is its runtime
twin, for the obligations static analysis cannot see (opaque predicates,
reflective writes, config-dependent paths): an :class:`ObligationTracker`
registers each parked waiter's read set, debits writes from exiting
sections via the condition manager's per-variable write generations
(``var_gens``, the same flow that powers dependency-filtered relay), and
escalates a structured :class:`ObligationReport` when a waiter has
outlived ``generation_budget`` monitor exits with **zero debits** — the
monitor is demonstrably making progress, yet nobody has ever written
anything the waiter reads.

That distinguishes obligation starvation from the
:class:`~repro.resilience.watchdog.StallWatchdog`'s quiet-monitor stalls:
the watchdog fires when *nothing* moves; the tracker fires when the world
moves but a waiter's variables never do — the runtime signature of an
undischargeable obligation (W010's "nobody writes what you read", seen
live).

Design constraints (shared with the watchdog):

* **Off by default, zero hooks.**  The tracker is a pure polling daemon;
  it installs nothing in the monitor hot path.  Never start one and the
  cost is exactly zero.
* **Lock-free observation.**  Every read is a racy attribute load under
  the GIL; a report is a best-effort snapshot.  The tracker never
  acquires a monitor lock — it could otherwise block on the very stall it
  is diagnosing.

Candidate write sites come from the static side when available: classes
compiled with ``@monitor_compile`` carry ``_repro_write_sites`` (variable
→ writing methods), and callers may pass an explicit ``static_sites``
mapping produced by the lint pass.

Usage::

    tracker = ObligationTracker([buf], generation_budget=50,
                                on_report=lambda r: print(r))
    tracker.start()
    ...
    tracker.stop()
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["ObligationReport", "ObligationTracker", "WaiterObligation"]


@dataclass
class WaiterObligation:
    """One starving waiter: its obligation, and who could discharge it."""

    monitor_id: int
    monitor_class: str
    predicate: str                 #: compiled predicate source (or repr)
    read_set: Optional[tuple]      #: sorted read variables; None = opaque
    generations_outlived: int      #: monitor exits since first observed
    #: per-variable write-generation delta since first observed — all
    #: zeros is exactly "no section ever wrote what this waiter reads"
    var_deltas: dict = field(default_factory=dict)
    #: sections the static pass says *could* write a read variable
    candidate_sites: dict = field(default_factory=dict)
    #: which wake path serves this waiter: "direct" when the monitor's
    #: AOT signal plans cover it (section exits signal it without a relay
    #: search), "relay" otherwise — so stall triage blames the right layer
    signal_path: str = "relay"

    @property
    def unwritten_vars(self) -> list:
        """Read variables with zero write-generation movement."""
        return sorted(v for v, d in self.var_deltas.items() if d == 0)

    def describe(self) -> str:
        reads = (
            "{" + ",".join(self.read_set) + "}"
            if self.read_set is not None else "?"
        )
        bits = [
            f"obligation unmet on monitor #{self.monitor_id} "
            f"{self.monitor_class}: waiter on {self.predicate} "
            f"reads={reads} outlived {self.generations_outlived} "
            f"section exits with zero debits (path={self.signal_path})"
        ]
        for var in self.unwritten_vars:
            sites = self.candidate_sites.get(var)
            if sites:
                bits.append(
                    f"  {var!r}: never written; candidate writers: "
                    + ", ".join(sites)
                )
            else:
                bits.append(
                    f"  {var!r}: never written; no known write site "
                    "(statically unsatisfiable — see monlint W010)"
                )
        return "\n".join(bits)


@dataclass
class ObligationReport:
    """Everything one poll observed about starving waiters."""

    generation_budget: int
    obligations: list = field(default_factory=list)

    def describe(self) -> str:
        head = (
            f"OBLIGATION: {len(self.obligations)} waiter(s) starved for "
            f">= {self.generation_budget} monitor generations with no "
            "write to any variable they read"
        )
        return "\n".join([head] + [o.describe() for o in self.obligations])

    __str__ = describe


class ObligationTracker:
    """Poll monitors; report waiters whose obligations nobody discharges.

    ``generation_budget`` is the number of monitor-section exits a waiter
    may outlive with zero debits before escalation — generations, not
    seconds, so a busy monitor is judged by its own progress rate and an
    idle one never false-positives (no exits, no escalation; that case
    belongs to the :class:`StallWatchdog`).
    """

    def __init__(
        self,
        monitors: Iterable[Any] = (),
        *,
        generation_budget: int = 50,
        poll_interval: float = 0.1,
        on_report: Optional[Callable[[ObligationReport], None]] = None,
        static_sites: Optional[dict] = None,
    ):
        if generation_budget <= 0:
            raise ValueError("generation_budget must be > 0")
        self.generation_budget = generation_budget
        self.poll_interval = poll_interval
        self.on_report = on_report
        #: class name → variable → candidate write sites (from the static
        #: liveness pass); merged with each class's _repro_write_sites
        self.static_sites = dict(static_sites or {})
        self._monitors: list[Any] = []
        #: (id(waiter), id(predicate)) → (first_gen, first_var_gens);
        #: waiters are pooled and recycled, so id(waiter) alone could
        #: alias a new wait — the predicate id disambiguates the reuse
        self._first_seen: dict = {}
        self._reported: set = set()
        self._lock = threading.Lock()
        self._stop_evt = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.last_report: Optional[ObligationReport] = None
        self.reports: list[ObligationReport] = []
        for m in monitors:
            self.watch(m)

    # ----------------------------------------------------------------- set-up
    def watch(self, monitor: Any) -> None:
        with self._lock:
            if all(m is not monitor for m in self._monitors):
                self._monitors.append(monitor)

    def unwatch(self, monitor: Any) -> None:
        with self._lock:
            self._monitors = [m for m in self._monitors if m is not monitor]

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_evt.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obligation-tracker", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_evt.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ObligationTracker":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------- inspection
    def poll_once(self) -> Optional[ObligationReport]:
        """One observation pass; returns a report when starvation is seen.

        Exposed for tests and for callers that want obligation checking
        without the background thread.
        """
        found: list[WaiterObligation] = []
        with self._lock:
            monitors = list(self._monitors)
        live_keys: set = set()
        for m in monitors:
            found.extend(self._observe(m, live_keys))
        # drop state for waiters that left (satisfied, timed out, …)
        for key in list(self._first_seen):
            if key not in live_keys:
                self._first_seen.pop(key, None)
                self._reported.discard(key)
        if not found:
            return None
        report = ObligationReport(
            generation_budget=self.generation_budget, obligations=found
        )
        self.last_report = report
        self.reports.append(report)
        cb = self.on_report
        if cb is not None:
            try:
                cb(report)
            except Exception:  # observer errors must not kill the tracker
                pass
        else:
            print(report.describe(), file=sys.stderr)
        return report

    # ------------------------------------------------------------- internals
    def _run(self) -> None:
        while not self._stop_evt.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception:
                # an observation race must never kill the tracker thread
                pass

    def _candidate_sites(self, monitor: Any, variables) -> dict:
        """variable → human-readable candidate write sites, merging the
        preprocessor's per-class summary with any static-pass input."""
        cls_name = type(monitor).__name__
        compiled_sites = getattr(type(monitor), "_repro_write_sites", None) or {}
        static = self.static_sites.get(cls_name, {})
        out: dict = {}
        for var in variables:
            sites = [f"{cls_name}.{m}()" for m in compiled_sites.get(var, [])]
            sites += [s for s in static.get(var, []) if s not in sites]
            if sites:
                out[var] = sites
        return out

    def _observe(self, m: Any, live_keys: set) -> list:
        cond_mgr = getattr(m, "_cond_mgr", None)
        if cond_mgr is None:
            return []
        gen = getattr(m, "_generation", 0)
        var_gens = dict(getattr(cond_mgr, "var_gens", None) or {})
        view = getattr(cond_mgr, "obligation_view", None)
        if view is None:  # pragma: no cover — bare stand-in objects
            return []
        out: list[WaiterObligation] = []
        try:
            triples = view()
        except Exception:
            return []
        for waiter, read_set, desc in triples:
            pred = getattr(waiter, "predicate", None)
            key = (id(waiter), id(pred))
            live_keys.add(key)
            names = sorted(read_set) if read_set is not None else sorted(var_gens)
            first = self._first_seen.get(key)
            if first is None:
                self._first_seen[key] = (
                    gen, {n: var_gens.get(n, 0) for n in names}
                )
                continue
            first_gen, first_gens = first
            outlived = gen - first_gen
            if outlived < self.generation_budget or key in self._reported:
                continue
            deltas = {
                n: var_gens.get(n, 0) - first_gens.get(n, 0) for n in names
            }
            if read_set is None and not deltas:
                # opaque waiter on a monitor with no tracked writes at
                # all: generation movement alone proves sections run dry
                deltas = {}
            elif any(deltas.values()):
                continue  # somebody wrote a read variable: debited
            self._reported.add(key)
            pred_desc = desc
            describe = getattr(pred, "describe", None)
            if describe is not None:
                try:
                    pred_desc = describe()
                except Exception:
                    pass
            out.append(WaiterObligation(
                monitor_id=getattr(m, "monitor_id", -1),
                monitor_class=type(m).__name__,
                predicate=pred_desc,
                read_set=tuple(sorted(read_set)) if read_set is not None else None,
                generations_outlived=outlived,
                var_deltas=deltas,
                candidate_sites=self._candidate_sites(m, deltas),
                signal_path=(
                    "direct" if getattr(waiter, "aot_direct", False)
                    else "relay"
                ),
            ))
        return out
