"""Boolean predicate DSL: atoms, connectives, DNF conversion, closure.

A predicate handed to ``wait_until`` is converted to disjunctive normal form
(§2.2: "we assume that every predicate P = ∨ cᵢ is in disjunctive normal
form … every Boolean formula can be converted into DNF using De Morgan's
laws and distributive law").  Each conjunction then receives one tag via
Algorithm 1 (see :mod:`repro.core.tags`).

Three atom kinds exist:

* :class:`Comparison` — ``shared_expr op constant`` after normalization;
  these yield Equivalence / Threshold tags;
* :class:`FuncAtom` — an opaque boolean callable of the monitor (the paper's
  ``foo1()``); always a None tag;
* plain Python callables passed to ``wait_until`` are wrapped in a
  :class:`FuncAtom` automatically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core import compiled as _compiled
from repro.core.expressions import (
    _EMPTY_READS,
    Const,
    Expr,
    linear_key,
    union_reads,
)
from repro.runtime.config import config_snapshot
from repro.runtime.errors import PredicateError

#: Cap on DNF size to guard against exponential blow-up of pathological
#: formulas; real synchronization conditions are tiny.
MAX_DNF_CONJUNCTIONS = 256

#: sentinel for Predicate's lazily computed read set (None is meaningful)
_READS_UNSET = object()

_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_EVAL = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class BoolNode:
    """Base class of the boolean expression tree."""

    __slots__ = ()

    def evaluate(self, monitor: Any) -> bool:
        raise NotImplementedError

    def __and__(self, other: "BoolNode") -> "And":
        return And([self, _as_bool(other)])

    def __rand__(self, other):
        return And([_as_bool(other), self])

    def __or__(self, other: "BoolNode") -> "Or":
        return Or([self, _as_bool(other)])

    def __ror__(self, other):
        return Or([_as_bool(other), self])

    def __invert__(self) -> "BoolNode":
        return self.negate()

    def negate(self) -> "BoolNode":
        raise NotImplementedError

    def dnf(self) -> list[tuple["Atom", ...]]:
        """Return the formula as a list of conjunctions of atoms."""
        raise NotImplementedError

    def read_set(self):
        """Shared-variable names this formula reads, or None if unknown.

        The conservative default — opaque callables (:class:`FuncAtom`) may
        read anything, so any formula containing one reads "everything".
        """
        return None


def _as_bool(value) -> BoolNode:
    if isinstance(value, BoolNode):
        return value
    if callable(value):
        return FuncAtom(value)
    if isinstance(value, bool):
        return TrueAtom() if value else FalseAtom()
    raise PredicateError(f"cannot use {value!r} as a boolean predicate")


class Atom(BoolNode):
    """A leaf of the boolean tree."""

    __slots__ = ()

    def dnf(self):
        return [(self,)]


class TrueAtom(Atom):
    __slots__ = ()

    def evaluate(self, monitor):
        return True

    def negate(self):
        return FalseAtom()

    def read_set(self):
        return _EMPTY_READS

    def __repr__(self):
        return "true"


class FalseAtom(Atom):
    __slots__ = ()

    def evaluate(self, monitor):
        return False

    def negate(self):
        return TrueAtom()

    def read_set(self):
        return _EMPTY_READS

    def __repr__(self):
        return "false"


class FuncAtom(Atom):
    """Opaque boolean function of the monitor state (None tag).

    ``fn`` may take the monitor as its single argument, or no arguments at
    all (a closure over ``self``); arity is probed once at construction.
    """

    __slots__ = ("fn", "negated", "_takes_monitor")

    def __init__(self, fn: Callable[..., bool], negated: bool = False):
        self.fn = fn
        self.negated = negated
        code = getattr(fn, "__code__", None)
        if code is None:
            self._takes_monitor = False
        else:
            required = code.co_argcount - len(getattr(fn, "__defaults__", None) or ())
            if hasattr(fn, "__self__"):
                required -= 1  # bound method: self is pre-bound
            self._takes_monitor = required >= 1

    def evaluate(self, monitor):
        result = bool(self.fn(monitor) if self._takes_monitor else self.fn())
        return (not result) if self.negated else result

    def negate(self):
        return FuncAtom(self.fn, not self.negated)

    def __repr__(self):
        bang = "!" if self.negated else ""
        return f"{bang}{getattr(self.fn, '__name__', 'fn')}()"


class Comparison(Atom):
    """``lhs op rhs`` over expression trees.

    At construction the comparison is *normalized*: if ``lhs - rhs`` is
    linear in shared terms, the atom is rewritten as
    ``canonical_shared_expr op constant`` so equal-shaped conditions share a
    canonical key.  Non-linear comparisons keep their structural form; they
    are still evaluable but only taggable when one side is constant.
    """

    __slots__ = ("lhs", "op", "rhs", "_shape", "_cmp")

    def __init__(self, lhs: Expr, op: str, rhs: Expr):
        if op not in _EVAL:
            raise PredicateError(f"unsupported comparison {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs
        self._cmp = _EVAL[op]
        self._shape = self._normalize()

    def _normalize(self):
        """Return ``(expr_key, op, const)`` or None when untaggable."""
        lin_l = self.lhs.linear()
        lin_r = self.rhs.linear()
        if lin_l is not None and lin_r is not None:
            terms = dict(lin_l[0])
            for k, v in lin_r[0].items():
                terms[k] = terms.get(k, 0.0) - v
                if terms[k] == 0.0:
                    del terms[k]
            const = lin_r[1] - lin_l[1]
            if not terms:
                return None  # constant comparison; degenerate
            items = sorted(terms.items(), key=lambda kv: repr(kv[0]))
            scale = items[0][1]
            op = self.op
            if scale < 0 and op in ("<", "<=", ">", ">="):
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            return (linear_key(terms), op, const / scale)
        # fall back: shared expr vs plain constant (e.g. equality on objects);
        # expressed as a single canonical term with coefficient 1 so the key
        # format matches the linear normalizer's.
        if isinstance(self.rhs, Const):
            return (((self.lhs.key(), 1.0),), self.op, self.rhs.value)
        if isinstance(self.lhs, Const):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(self.op, self.op)
            return (((self.rhs.key(), 1.0),), flipped, self.lhs.value)
        return None

    def shared_subexpressions(self):
        """Yield every Expr node in this atom (for evaluator registration)."""
        stack = [self.lhs, self.rhs]
        while stack:
            node = stack.pop()
            yield node
            lhs = getattr(node, "lhs", None)
            rhs = getattr(node, "rhs", None)
            if lhs is not None:
                stack.append(lhs)
            if rhs is not None:
                stack.append(rhs)

    @property
    def tag_shape(self):
        """``(expr_key, op, const)`` for the tagger, or None."""
        return self._shape

    def read_set(self):
        return union_reads(self.lhs.read_set(), self.rhs.read_set())

    def evaluate(self, monitor):
        return self._cmp(self.lhs.evaluate(monitor), self.rhs.evaluate(monitor))

    def negate(self):
        return Comparison(self.lhs, _NEGATE[self.op], self.rhs)

    def __bool__(self):
        # guards against `if S.x == 3:` silently taking a branch
        raise PredicateError(
            "predicate atoms have no truth value; pass them to wait_until"
        )

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class And(BoolNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[BoolNode]):
        flat: list[BoolNode] = []
        for c in children:
            c = _as_bool(c)
            if isinstance(c, And):
                flat.extend(c.children)
            else:
                flat.append(c)
        self.children = tuple(flat)

    def evaluate(self, monitor):
        return all(c.evaluate(monitor) for c in self.children)

    def negate(self):
        return Or([c.negate() for c in self.children])

    def dnf(self):
        # distribute: cartesian product of child DNFs
        result: list[tuple[Atom, ...]] = [()]
        for child in self.children:
            child_dnf = child.dnf()
            result = [r + c for r in result for c in child_dnf]
            if len(result) > MAX_DNF_CONJUNCTIONS:
                raise PredicateError("predicate too large to convert to DNF")
        return result

    def read_set(self):
        return union_reads(*(c.read_set() for c in self.children))

    def __repr__(self):
        return "(" + " && ".join(map(repr, self.children)) + ")"


class Or(BoolNode):
    __slots__ = ("children",)

    def __init__(self, children: Sequence[BoolNode]):
        flat: list[BoolNode] = []
        for c in children:
            c = _as_bool(c)
            if isinstance(c, Or):
                flat.extend(c.children)
            else:
                flat.append(c)
        self.children = tuple(flat)

    def evaluate(self, monitor):
        return any(c.evaluate(monitor) for c in self.children)

    def negate(self):
        return And([c.negate() for c in self.children])

    def dnf(self):
        result: list[tuple[Atom, ...]] = []
        for child in self.children:
            result.extend(child.dnf())
            if len(result) > MAX_DNF_CONJUNCTIONS:
                raise PredicateError("predicate too large to convert to DNF")
        return result

    def read_set(self):
        return union_reads(*(c.read_set() for c in self.children))

    def __repr__(self):
        return "(" + " || ".join(map(repr, self.children)) + ")"


class Predicate:
    """A wait condition: the DNF of a boolean tree plus evaluation support.

    Construction applies the closure operation implicitly: any constant in
    the tree was captured from the waiting thread's locals at build time, so
    evaluation by *other* threads is sound for the whole waituntil period
    (Prop. 1).

    Hot paths evaluate through :meth:`fast_eval` / :meth:`evaluator`, which
    use a code-generated flat closure (see :mod:`repro.core.compiled`) when
    ``Config.compile_predicates`` is on, falling back to the tree-walking
    :meth:`evaluate` for shapes the compiler cannot express.  Compilation
    is *tiered*: a predicate evaluated once (the common build-check-proceed
    DSL idiom) is interpreted; one that is re-evaluated — a reused
    Predicate object, or a parked waiter the relay rule keeps re-checking —
    is compiled on its second use, so single-shot predicates never pay the
    synthesis cost.
    """

    __slots__ = ("root", "conjunctions", "_evaluator", "_uses", "_read_set",
                 "aot_match")

    def __init__(self, condition: BoolNode | Callable[..., bool] | bool):
        self.root = _as_bool(condition)
        self.conjunctions: list[tuple[Atom, ...]] = self.root.dnf()
        self._evaluator: Callable[[Any], Any] | None = None
        self._uses = 0
        self._read_set: Any = _READS_UNSET
        #: static AOT match metadata (:class:`repro.analysis.aot.PredicateMatch`),
        #: stamped at first registration with a monitor compiled for direct
        #: signaling: which write-site plans can flip this predicate, or a
        #: non-match record for opaque read sets.  None until stamped.
        self.aot_match: Any = None

    def evaluate(self, monitor: Any) -> bool:
        return self.root.evaluate(monitor)

    def read_set(self) -> Any:
        """Shared-variable names this predicate reads (cached).

        ``None`` means "unknown — may read anything" (some atom is an opaque
        callable); dependency-filtered relay then always re-evaluates the
        waiter.  A frozenset is exact: a monitor exit whose dirty set is
        disjoint from it cannot have flipped the predicate."""
        rs = self._read_set
        if rs is _READS_UNSET:
            rs = self.root.read_set()
            self._read_set = rs
        return rs

    def fast_eval(self, monitor: Any) -> Any:
        """Hot-path evaluation with tiered compilation (see class docs)."""
        ev = self._evaluator
        if ev is not None:
            return ev(monitor)
        if _compiled._crosscheck:
            return self.evaluator()(monitor)
        n = self._uses + 1
        self._uses = n
        if n >= 2:
            return self.evaluator()(monitor)
        return self.root.evaluate(monitor)

    def evaluator(self) -> Callable[[Any], Any]:
        """The fastest available evaluation callable for this predicate.

        Returns the compiled closure (cached after the first call), the
        tree-walking :meth:`evaluate` when compilation is disabled or
        unsupported, or — while :func:`repro.core.compiled.crosscheck` is
        active — an uncached wrapper running both paths and asserting they
        agree.
        """
        if not config_snapshot().compile_predicates:
            if _compiled._crosscheck:
                return _compiled.crosscheck_wrap(self.evaluate, self.evaluate, repr(self))
            return self.evaluate
        ev = self._evaluator
        if ev is None:
            ev = _compiled.compile_predicate(self)
            if ev is None:
                ev = self.evaluate
            self._evaluator = ev
        if _compiled._crosscheck:
            return _compiled.crosscheck_wrap(ev, self.evaluate, repr(self))
        return ev

    def describe(self) -> str:
        """Stable, lock-free identification for diagnostics.

        Prefers the compiled-source cache key (identical for structurally
        equal predicates, across runs) and falls back to ``repr``.  Never
        evaluates the predicate — safe to call from watchdog/obligation
        threads observing a live monitor."""
        from repro.core import compiled  # local: avoid import cycle at load

        key = compiled.source_key(self)
        return key if key is not None else repr(self)

    def __repr__(self):
        return f"Predicate({self.root!r})"


def conjunction_true(conj: Iterable[Atom], monitor: Any) -> bool:
    """Evaluate a single DNF conjunction."""
    return all(a.evaluate(monitor) for a in conj)
