"""Predicate/expression compiler: DSL trees → flat Python closures.

The interpreter in :mod:`repro.core.predicates` evaluates a ``waituntil``
condition by walking an ``Expr``/``BoolNode`` object tree — five-plus
dynamic dispatches for a predicate as small as ``count + 3 <= capacity``.
The relay rule evaluates predicates *on behalf of other threads* on every
monitor exit (§2.3), so that walk sits squarely on the hot path AutoSynch's
whole design tries to flatten.

This module code-generates the equivalent flat closure
(``lambda m: m.count + 3 <= m.capacity``-shaped) via source synthesis +
:func:`compile`:

* every ``Const`` / ``SharedExpr.fn`` / ``FuncAtom.fn`` becomes an
  *environment slot* rather than a source literal, so the synthesized source
  text is a pure function of the tree's **shape**.  Identical source ⇒ one
  cached code object: all waiters whose predicates share a structure
  (``count >= 3`` vs ``count >= 48``) share one compiled template and only
  differ in the bound environment tuple — the closure analogue of the
  paper's canonical shared-expression sharing (§2.4);
* boolean connectives compile to ``and``/``or`` chains with the same
  short-circuit order, truthiness coercion, and exception behavior as the
  interpreter's ``all()``/``any()`` generators;
* anything the generator cannot express (exotic nodes, unhashable shapes,
  pathological depth) falls back transparently to the tree-walking
  interpreter — :func:`compile_predicate` returns ``None`` and callers keep
  the ``Predicate.evaluate`` bound method.

Differential safety: the interpreter remains the executable specification.
:func:`crosscheck` wraps every compiled evaluator so both paths run and any
divergence (value, truthiness, or raised exception) fails loudly; the test
suite runs the problem corpus under it (Ghost-Signals-style paranoia — fast
paths must be *proven* equivalent, not assumed).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from keyword import iskeyword
from typing import Any, Callable, Optional

__all__ = [
    "compile_predicate",
    "compile_expr_key",
    "crosscheck",
    "crosscheck_active",
    "cache_info",
    "clear_cache",
    "CompiledDivergence",
]


class _Unsupported(Exception):
    """Internal: the tree contains a node the generator cannot express."""


class CompiledDivergence(AssertionError):
    """Compiled and interpreted evaluation disagreed (crosscheck mode)."""


# --------------------------------------------------------------------------
# source synthesis
#
# ``_gen_*`` functions append runtime values to ``env`` and return a source
# fragment referencing ``m`` (the monitor) and ``_e{i}`` (env slots) in
# traversal order.  The finished source string doubles as the cache key:
# equal source ⇔ equal shape ⇔ shareable code object.
# --------------------------------------------------------------------------

def _slot(env: list, value: Any) -> str:
    env.append(value)
    return f"_e{len(env) - 1}"


def _gen_expr(node: Any, env: list) -> str:
    # local imports would cost per call; the cycle is broken by importing
    # this module lazily from predicates.py instead
    kind = type(node).__name__
    if kind == "Const":
        return _slot(env, node.value)
    if kind == "SharedVar":
        name = node.name
        if name.isidentifier() and not iskeyword(name):
            return f"m.{name}"
        return f"getattr(m, {_slot(env, name)})"
    if kind == "SharedExpr":
        return f"{_slot(env, node.fn)}(m)"
    if kind == "BinOp":
        lhs = _gen_expr(node.lhs, env)
        rhs = _gen_expr(node.rhs, env)
        if node.op not in ("+", "-", "*", "%"):
            raise _Unsupported(node.op)
        return f"({lhs} {node.op} {rhs})"
    raise _Unsupported(kind)


_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _gen_bool(node: Any, env: list) -> str:
    kind = type(node).__name__
    if kind == "TrueAtom":
        return "True"
    if kind == "FalseAtom":
        return "False"
    if kind == "Comparison":
        if node.op not in _CMP_OPS:
            raise _Unsupported(node.op)
        lhs = _gen_expr(node.lhs, env)
        rhs = _gen_expr(node.rhs, env)
        return f"({lhs} {node.op} {rhs})"
    if kind == "FuncAtom":
        call = f"{_slot(env, node.fn)}(m)" if node._takes_monitor else f"{_slot(env, node.fn)}()"
        return f"(not {call})" if node.negated else f"bool({call})"
    if kind == "And":
        if not node.children:
            return "True"
        # ``all(c.evaluate(m) for c in children)`` ≡ bool()-coerced ``and``
        # chain: same short-circuit order, same strict-bool result
        return "(" + " and ".join(f"bool({_gen_bool(c, env)})" for c in node.children) + ")"
    if kind == "Or":
        if not node.children:
            return "False"
        return "(" + " or ".join(f"bool({_gen_bool(c, env)})" for c in node.children) + ")"
    raise _Unsupported(kind)


# --------------------------------------------------------------------------
# template cache: source string → maker(env) → evaluator closure
# --------------------------------------------------------------------------

#: bound on distinct cached shapes; real programs have a handful, and the
#: cap only disables *caching* (compilation still works) past it
MAX_CACHED_SHAPES = 2048

_maker_cache: dict[str, Callable[[tuple], Callable[[Any], Any]]] = {}
_cache_lock = threading.Lock()
_stats = {"shape_hits": 0, "shape_misses": 0, "fallbacks": 0, "uncached": 0}

#: compiled templates only ever read these two names
_GLOBALS = {"bool": bool, "getattr": getattr, "__builtins__": {}}


def _build_maker(source: str, n_slots: int) -> Callable[[tuple], Callable[[Any], Any]]:
    lines = ["def _make(_env):"]
    if n_slots == 1:
        lines.append("    _e0, = _env")
    elif n_slots:
        lines.append("    " + ", ".join(f"_e{i}" for i in range(n_slots)) + " = _env")
    lines.append("    def _compiled(m):")
    lines.append(f"        return {source}")
    lines.append("    return _compiled")
    code = compile("\n".join(lines), "<repro.core.compiled>", "exec")
    namespace: dict[str, Any] = dict(_GLOBALS)
    exec(code, namespace)  # noqa: S102 — source synthesized above, no user text
    return namespace["_make"]


def _maker_for(source: str, n_slots: int):
    with _cache_lock:
        maker = _maker_cache.get(source)
        if maker is not None:
            _stats["shape_hits"] += 1
            return maker
        _stats["shape_misses"] += 1
    maker = _build_maker(source, n_slots)
    with _cache_lock:
        if len(_maker_cache) < MAX_CACHED_SHAPES:
            _maker_cache[source] = maker
        else:
            _stats["uncached"] += 1
    return maker


def cache_info() -> dict[str, int]:
    """Cache/fallback counters (for tests and the benchmark report)."""
    with _cache_lock:
        out = dict(_stats)
        out["cached_shapes"] = len(_maker_cache)
    return out


def clear_cache() -> None:
    with _cache_lock:
        _maker_cache.clear()
        for k in _stats:
            _stats[k] = 0


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

def compile_predicate(predicate: Any) -> Optional[Callable[[Any], Any]]:
    """Compile ``predicate.root`` to a flat closure, or ``None`` to fall
    back to tree-walking.  The closure takes the monitor and returns exactly
    what ``Predicate.evaluate`` would — including raising the same
    exceptions from the same sub-evaluation order.
    """
    env: list = []
    try:
        source = _gen_bool(predicate.root, env)
        maker = _maker_for(source, len(env))
        return maker(tuple(env))
    except (_Unsupported, RecursionError, SyntaxError, ValueError):
        with _cache_lock:
            _stats["fallbacks"] += 1
        return None


def source_key(predicate: Any) -> Optional[str]:
    """Return the generated-source cache key for a predicate, or ``None``.

    The source string is exactly the key the closure cache is keyed by —
    stable across threads and processes for structurally equal predicates —
    which makes it the right identifier for diagnostics (stall-watchdog
    reports, waiter dumps) that need to say *what* a thread waits on
    without holding any lock or evaluating anything.
    """
    env: list = []
    try:
        return _gen_bool(predicate.root, env)
    except (_Unsupported, RecursionError, AttributeError, TypeError, ValueError):
        return None


def compile_expr_key(
    expr_key: tuple,
    resolve_node: Callable[[Any], Any],
) -> Optional[Callable[[Any], Any]]:
    """Compile a canonical shared-expression key to a flat evaluator.

    ``expr_key`` is the tag normalizer's ``((term_key, coeff), ...)`` form;
    ``resolve_node(term_key)`` returns the registered ``Expr`` node for
    non-``("var", name)`` terms (or ``None`` when unknown, which aborts
    compilation so the interpreter's lazy TypeError behavior is preserved).
    Matches ``ConditionManager._evaluate_expr_key`` exactly: a single
    unit-coefficient term returns the raw term value; otherwise terms are
    accumulated left-to-right onto ``0.0``.
    """
    env: list = []

    def term_src(term_key: Any) -> str:
        if (
            isinstance(term_key, tuple)
            and len(term_key) == 2
            and term_key[0] == "var"
            and isinstance(term_key[1], str)
            and term_key[1].isidentifier()
            and not iskeyword(term_key[1])
        ):
            return f"m.{term_key[1]}"
        node = resolve_node(term_key)
        if node is None:
            raise _Unsupported(term_key)
        return _gen_expr(node, env)

    try:
        if len(expr_key) == 1 and expr_key[0][1] == 1.0:
            source = term_src(expr_key[0][0])
        else:
            parts = [
                f"({coeff!r}) * ({term_src(term_key)})"
                for term_key, coeff in expr_key
            ]
            source = "(0.0 + " + " + ".join(parts) + ")"
        maker = _maker_for(source, len(env))
        return maker(tuple(env))
    except (_Unsupported, RecursionError, SyntaxError, ValueError):
        with _cache_lock:
            _stats["fallbacks"] += 1
        return None


# --------------------------------------------------------------------------
# crosscheck mode (differential testing)
# --------------------------------------------------------------------------

_crosscheck = False


def crosscheck_active() -> bool:
    return _crosscheck


@contextmanager
def crosscheck():
    """Within this context every compiled evaluator also runs the
    interpreter and raises :class:`CompiledDivergence` on any disagreement
    in value, truthiness, or raised exception.  Predicates must be pure
    (the monitor contract already requires this; monlint's purity probe
    enforces it), since both paths evaluate.
    """
    global _crosscheck
    prior = _crosscheck
    _crosscheck = True
    try:
        yield
    finally:
        _crosscheck = prior


def crosscheck_wrap(
    compiled: Callable[[Any], Any],
    interpreted: Callable[[Any], Any],
    label: str,
) -> Callable[[Any], Any]:
    """Build the dual-evaluation wrapper used in crosscheck mode."""

    def _checked(m):
        try:
            expected = interpreted(m)
            expected_exc = None
        except BaseException as exc:  # noqa: BLE001 — compared, then re-raised
            expected = None
            expected_exc = exc
        try:
            got = compiled(m)
            got_exc = None
        except BaseException as exc:  # noqa: BLE001 — compared below
            got = None
            got_exc = exc
        if expected_exc is not None or got_exc is not None:
            if (
                expected_exc is None
                or got_exc is None
                or type(expected_exc) is not type(got_exc)
                or str(expected_exc) != str(got_exc)
            ):
                raise CompiledDivergence(
                    f"{label}: interpreted raised {expected_exc!r}, "
                    f"compiled raised {got_exc!r}"
                )
            raise expected_exc
        if expected != got or bool(expected) != bool(got):
            raise CompiledDivergence(
                f"{label}: interpreted → {expected!r}, compiled → {got!r}"
            )
        return expected

    return _checked
