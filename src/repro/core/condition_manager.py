"""The condition manager: waiter registry + relay signaling.

This is the component the paper's §1.2 describes as "responsible for
determining which thread to signal by analyzing the predicates and the state
of the shared object".  Three signaling disciplines are implemented so the
benchmarks can compare them exactly as Chapter 2's evaluation does:

* ``autosynch`` — tag-accelerated relay signaling (the full system);
* ``autosynch_t`` — relay signaling with a linear scan over waiters (the
  paper's *AutoSynch-T*: tags disabled);
* ``baseline`` — one condition variable, broadcast on every exit, every
  woken thread re-checks its own predicate (the paper's *Baseline*).

All entry points require the monitor lock to be held by the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.core.expressions import Expr
from repro.core.predicates import Predicate
from repro.core.tag_index import TagIndex
from repro.core.tags import tag_predicate
from repro.core.waiter import Waiter
from repro.runtime.config import get_config
from repro.runtime.metrics import Metrics, PhaseTimer

SIGNALING_MODES = ("autosynch", "autosynch_t", "baseline")


class ConditionManager:
    """Per-monitor waiter registry implementing the relay signaling rule."""

    def __init__(self, monitor: Any, lock: threading.RLock, metrics: Metrics,
                 mode: str = "autosynch"):
        if mode not in SIGNALING_MODES:
            raise ValueError(f"unknown signaling mode {mode!r}")
        self.monitor = monitor
        self.lock = lock
        self.metrics = metrics
        self.mode = mode
        self.waiters: list[Waiter] = []     # insertion order (autosynch_t scan)
        self.index = TagIndex()             # tag structures (autosynch)
        self._broadcast_cv = threading.Condition(lock)  # baseline mode
        #: cache of compiled shared-expression evaluators, keyed by expr_key
        self._expr_cache: dict[Any, Expr] = {}
        #: §2.5.1: recycled per-waiter condition variables — when a waiter
        #: leaves, its CV joins an inactive pool for reuse, bounded by
        #: ``inactive_predicate_factor × live waiters`` (the paper's 2n cap)
        self._cv_pool: list[threading.Condition] = []

    # ------------------------------------------------------------------ wait
    def wait(self, predicate: Predicate) -> None:
        """Block until ``predicate`` holds; caller holds the monitor lock.

        Implements the waiting side of the relay protocol: before parking,
        the thread passes the baton (relay-signals some other satisfied
        waiter, since this thread is "going into waiting state"); after each
        wakeup it re-evaluates, counting futile wakeups when the state moved
        under it between signal and lock re-acquisition.
        """
        m = self.metrics
        if predicate.evaluate(self.monitor):
            m.bump("predicate_evals")
            return
        m.bump("predicate_evals")
        m.bump("waits")

        if self.mode == "baseline":
            self._wait_baseline(predicate)
            return

        waiter = Waiter(predicate, self.lock,
                        cv=self._cv_pool.pop() if self._cv_pool else None)
        self._register(waiter)
        try:
            while True:
                # Pass the baton before sleeping (relay rule: a thread going
                # into waiting state signals some satisfied waiter).
                self.relay_signal()
                cfg = get_config()
                with PhaseTimer(m, "await_time", cfg.phase_timing):
                    waiter.cv.wait()
                waiter.signaled = False
                m.bump("wakeups")
                if waiter.poison is not None:
                    # our predicate blew up while a signaler evaluated it;
                    # the failure belongs to this thread — re-raise it here
                    raise waiter.poison
                if predicate.evaluate(self.monitor):
                    m.bump("predicate_evals")
                    return
                m.bump("predicate_evals")
                m.bump("futile_wakeups")
        finally:
            self._deregister(waiter)

    def _wait_baseline(self, predicate: Predicate) -> None:
        m = self.metrics
        self._broadcast_cv.notify_all()  # baton-pass equivalent
        m.bump("broadcasts")
        while True:
            self._broadcast_cv.wait()
            m.bump("wakeups")
            if predicate.evaluate(self.monitor):
                m.bump("predicate_evals")
                return
            m.bump("predicate_evals")
            m.bump("futile_wakeups")

    # ---------------------------------------------------------------- signal
    def relay_signal(self) -> Optional[Waiter]:
        """Signal one waiter whose condition is true, if any (relay rule).

        Called whenever a thread exits the monitor or goes to wait.  Returns
        the signaled waiter (already marked) or None.  Guarantees relay
        invariance (Prop. 2): if some waiter's predicate is true, an active
        thread exists afterwards.
        """
        m = self.metrics
        cfg = get_config()
        if self.mode == "baseline":
            if self._waiting_baseline():
                with PhaseTimer(m, "relay_time", cfg.phase_timing):
                    self._broadcast_cv.notify_all()
                m.bump("broadcasts")
            return None
        if not self.waiters:
            return None
        with PhaseTimer(m, "relay_time", cfg.phase_timing):
            waiter = self._find_satisfied_waiter()
            if waiter is not None:
                waiter.signal()
                m.bump("signals")
            return waiter

    def _find_satisfied_waiter(self) -> Optional[Waiter]:
        m = self.metrics
        if self.mode == "autosynch_t":
            for waiter in self.waiters:
                if waiter.signaled:
                    continue
                m.bump("predicate_evals")
                if self._safe_evaluate(waiter):
                    return waiter
            return None
        # autosynch: tag-index search
        cfg = get_config()

        def evaluate_expr(expr_key):
            m.bump("tag_checks")
            return self._evaluate_expr_key(expr_key)

        def predicate_true(waiter: Waiter) -> bool:
            if waiter.signaled:
                return False
            m.bump("predicate_evals")
            return self._safe_evaluate(waiter)

        with PhaseTimer(m, "tag_time", cfg.phase_timing):
            return self.index.search(evaluate_expr, predicate_true)

    def _safe_evaluate(self, waiter: Waiter) -> bool:
        """Evaluate a waiter's predicate on behalf of another thread.

        A predicate that *raises* must not crash the signaling thread (it
        did nothing wrong); instead the waiter is poisoned and woken so the
        exception re-raises in the thread that owns the broken predicate —
        returning True here routes the relay signal to it.
        """
        try:
            return waiter.evaluate(self.monitor)
        except BaseException as exc:  # noqa: BLE001 — re-raised by the owner
            waiter.poison = exc
            return True

    # ------------------------------------------------------------- internals
    def _register(self, waiter: Waiter) -> None:
        self.waiters.append(waiter)
        if self.mode == "autosynch":
            self._cache_expressions(waiter.predicate)
            for tag in tag_predicate(waiter.predicate.conjunctions):
                waiter.records.append(self.index.add(tag, waiter))

    def _cache_expressions(self, predicate: Predicate) -> None:
        """Record evaluators for every sub-expression appearing in the
        predicate, keyed by structural key, so the tag search can evaluate a
        canonical shared expression from its key alone."""
        from repro.core.predicates import Comparison

        for conj in predicate.conjunctions:
            for atom in conj:
                if not isinstance(atom, Comparison):
                    continue
                for node in atom.shared_subexpressions():
                    try:
                        self._expr_cache.setdefault(node.key(), node)
                    except TypeError:
                        pass  # unhashable constant keys are never looked up

    def _deregister(self, waiter: Waiter) -> None:
        try:
            self.waiters.remove(waiter)
        except ValueError:
            pass
        for record in waiter.records:
            self.index.remove(record, waiter)
        waiter.records.clear()
        # recycle the condition variable (paper §2.5.1): cap the inactive
        # pool at factor × live waiters, minimum a small constant
        cap = max(4, get_config().inactive_predicate_factor * (len(self.waiters) + 1))
        if len(self._cv_pool) < cap:
            self._cv_pool.append(waiter.cv)

    def dump_waiters(self) -> list[str]:
        """Human-readable descriptions of every parked predicate — the
        first thing to look at when a program seems wedged."""
        return [repr(w) for w in self.waiters]

    def _waiting_baseline(self) -> bool:
        # Condition keeps private waiter list; len() of it is an internal
        # detail, so track via the public API instead: notify_all on a CV
        # with no waiters is a cheap no-op — just always report True.
        return True

    def _evaluate_expr_key(self, expr_key: Any) -> Any:
        """Evaluate the canonical shared expression identified by a key.

        Keys produced by the linear normalizer are tuples of
        ``(term_key, coeff)``; each term key is ``("var", name)`` or
        ``("expr", name)``.  Non-linear fallback keys are 1-tuples of a
        structural expression key whose first term is evaluated directly.
        """
        # Single unit-coefficient term: return the raw term value (this also
        # covers non-numeric equality keys such as object identity).
        if len(expr_key) == 1 and expr_key[0][1] == 1.0:
            return self._evaluate_term(expr_key[0][0])
        total = 0.0
        for term_key, coeff in expr_key:
            total += coeff * self._evaluate_term(term_key)
        return total

    def _evaluate_term(self, term_key: Any) -> Any:
        if isinstance(term_key, tuple) and len(term_key) == 2 and term_key[0] == "var":
            return getattr(self.monitor, term_key[1])
        expr = self._expr_cache.get(term_key)
        if expr is not None:
            return expr.evaluate(self.monitor)
        raise TypeError(f"cannot evaluate term {term_key!r}")

    def waiting_count(self) -> int:
        return len(self.waiters)
