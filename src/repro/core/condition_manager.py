"""The condition manager: waiter registry + relay signaling.

This is the component the paper's §1.2 describes as "responsible for
determining which thread to signal by analyzing the predicates and the state
of the shared object".  Three signaling disciplines are implemented so the
benchmarks can compare them exactly as Chapter 2's evaluation does:

* ``autosynch`` — tag-accelerated relay signaling (the full system);
* ``autosynch_t`` — relay signaling with a linear scan over waiters (the
  paper's *AutoSynch-T*: tags disabled);
* ``baseline`` — one condition variable, broadcast on every exit, every
  woken thread re-checks its own predicate (the paper's *Baseline*).

All entry points require the monitor lock to be held by the caller.

Hot-path invariants (see docs/performance.md): the already-true
``wait_until`` fast path and a no-candidate relay allocate nothing — config
reads go through :func:`config_snapshot`, predicates evaluate through
compiled closures (:mod:`repro.core.compiled`), phase timers exist only
when ``phase_timing`` is on, non-event counters bump by direct attribute
increment, tag-search callbacks are pre-bound, and Waiter objects (with
their condition variables) recycle through an inactive pool.

Dependency-tracked relay (docs/performance.md): untagged (None-tag) waiters
no longer live in the TagIndex's exhaustive-scan list.  Waiters with a known
predicate read set are bucketed per shared-variable name; a monitor exit
flushes its dirty set here (:meth:`note_writes`), which queues exactly the
waiters whose predicates could have flipped.  A relay search evaluates the
queued waiters (plus opaque-read-set ones, every time), so the untagged
search is O(affected), not O(waiters).  Canonical shared-expression values
used by the tag search are additionally memoized per summed read-variable
generation.

Free-threading contract (no-GIL audit, docs/performance.md): every mutable
structure here — ``var_gens`` bumps, ``_dirty`` flushes, dependency-bucket
marking, the ``_eligible`` queue, waiter (de)registration, the AOT
``direct_signal`` fast path — is only touched while the caller holds the
monitor lock, so none of it depends on GIL atomicity.  The deliberate
lock-free reads are (a) the direct-signal config gate's load of the global
config generation (an int rebind: atomic pointer load on every build,
compared only for inequality) and (b) the diagnostic snapshots
(:meth:`dump_waiters`, :meth:`obligation_view`), which are racy by design
and tolerate skew.

Waiterless (async) waiters: the asyncio frontend (:mod:`repro.aio`)
registers :class:`~repro.core.waiter.AsyncWaiter` records through
:meth:`register_async` — same buckets, same tag records, same AOT direct
coverage, so relay invariance (Prop. 2) needs no new argument.  The two
asymmetries are on the wake and abandon sides: a signaler that finds a
satisfied async waiter *delivers* it (claim, deregister, run the loop
callback) and then **keeps searching** — the async waiter has no thread
that would re-enter the monitor and pass the baton on, so the signaler
relays on its behalf; and an abandoning async waiter (timeout/cancel on
the event-loop thread) never takes the monitor lock — it claims the
record through the flag's micro-lock (:meth:`abandon_async`) and leaves
the unlink to the next lock holder (:meth:`_reap_async`).  The claim flag
makes signal-vs-abandon a race with exactly one winner, so no signal is
lost and none is delivered twice.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.core import compiled
from repro.core.expressions import Expr
from repro.core.predicates import Comparison, Predicate
from repro.core.tag_index import TagIndex
from repro.core.tags import TagKind, tag_predicate
from repro.core.waiter import Waiter
from repro.resilience import chaos as _chaos
from repro.runtime import config as _config_state
from repro.runtime.config import config_snapshot
from repro.runtime.errors import WaitCancelledError, WaitTimeoutError
from repro.runtime.metrics import Metrics, PhaseTimer

if False:  # pragma: no cover — annotation-only import
    from repro.resilience.cancellation import CancelToken

SIGNALING_MODES = ("autosynch", "autosynch_t", "baseline")


class ConditionManager:
    """Per-monitor waiter registry implementing the relay signaling rule."""

    def __init__(self, monitor: Any, lock: threading.RLock, metrics: Metrics,
                 mode: str = "autosynch"):
        if mode not in SIGNALING_MODES:
            raise ValueError(f"unknown signaling mode {mode!r}")
        self.monitor = monitor
        self.lock = lock
        self.metrics = metrics
        self.mode = mode
        self.waiters: list[Waiter] = []     # insertion order (autosynch_t scan)
        self.index = TagIndex()             # tag structures (autosynch)
        self._broadcast_cv = threading.Condition(lock)  # baseline mode
        #: registered sub-expression nodes by structural key, refcounted by
        #: the waiters whose predicates mention them — evicted when the last
        #: referencing waiter deregisters, so long-lived monitors that see
        #: many distinct closures don't grow without bound
        self._expr_cache: dict[Any, Expr] = {}
        self._expr_refs: dict[Any, int] = {}
        #: compiled evaluators for canonical shared-expression keys (the
        #: tag search's ``evaluate_expr``), refcounted the same way; a None
        #: value means "compilation declined — use the interpreter"
        self._expr_evalers: dict[Any, Optional[Callable[[Any], Any]]] = {}
        self._evaler_refs: dict[Any, int] = {}
        #: §2.5.1: recycled Waiter objects (each carrying its condition
        #: variable) — when a waiter leaves it joins an inactive pool for
        #: reuse, bounded by ``inactive_predicate_factor × live waiters``
        #: (the paper's 2n cap)
        self._waiter_pool: list[Waiter] = []
        #: abandoned async waiters awaiting deregistration.  Appended from
        #: the event-loop/canceller thread *without* the monitor lock
        #: (single list ops are atomic under the GIL and internally locked
        #: on free-threaded builds); drained under the lock by the next
        #: relay/direct signal.
        self._async_reap: list[Waiter] = []
        # pre-bound tag-search callbacks: binding methods per relay call
        # would allocate two method objects on every monitor exit
        self._search_expr_cb = self._search_expr
        self._search_pred_cb = self._search_pred
        # ---- dependency tracking -------------------------------------
        #: True when the monitor participates in per-variable write
        #: tracking (real Monitor subclasses carry a ``_dirty`` set; bare
        #: state objects driven directly in tests do not, and keep the
        #: exhaustive untagged scan)
        self._tracked = hasattr(monitor, "_dirty")
        #: per-shared-variable write generation stamps (monotonic; bumped
        #: by :meth:`note_writes` when an exit's dirty set is flushed)
        self.var_gens: dict[str, int] = {}
        #: untagged waiters with a *known* predicate read set, bucketed
        #: below; kept as a list for the exhaustive fallback scan
        self._untagged: list[Waiter] = []
        #: untagged waiters with an *opaque* read set (FuncAtom predicates
        #: and unannotated SharedExprs): re-checked on every relay search
        self._always: list[Waiter] = []
        #: shared-variable name → untagged waiters whose read set holds it
        self._dep_buckets: dict[str, list[Waiter]] = {}
        #: untagged waiters due for (re-)evaluation at the next relay
        #: search: freshly parked, or some read variable was written since
        #: they last evaluated false.  Entries persist across relays that
        #: signal someone else first — a waiter leaves the queue only by
        #: being evaluated (``pending`` flag) — so an early-stopping relay
        #: never loses a signal.
        self._eligible: list[Waiter] = []
        #: canonical expression key → read-variable names (None = opaque)
        self._expr_reads: dict[Any, Optional[frozenset]] = {}
        #: expression key → [stamp, value] memo, valid while the sum of
        #: the read variables' generations equals ``stamp`` (any tracked
        #: write strictly increases the sum)
        self._expr_memo: dict[Any, list] = {}
        # ---- ahead-of-time signal placement --------------------------
        #: method → MethodSignalPlan stamped by ``@monitor_compile``
        #: (docs/performance.md).  When plans exist and tracking is live,
        #: *every* waiter joins the dependency buckets at registration
        #: (tagged ones too), so a planned section exit can run
        #: :meth:`direct_signal` — no tag-index probe, no relay search.
        self._aot_plans = getattr(type(monitor), "_repro_aot_plans", None)
        self._direct_enabled = (
            mode == "autosynch" and self._tracked and bool(self._aot_plans)
        )
        #: per-generation cache of the direct-signal config gate (recomputed
        #: only when the global config generation moves); the hot path reads
        #: the generation int straight off the config module, skipping even
        #: the snapshot call
        self._gate_gen = -1
        self._gate_ok = False

    # ------------------------------------------------------------------ wait
    def wait(self, predicate: Predicate) -> None:
        """Block until ``predicate`` holds; caller holds the monitor lock."""
        result = predicate.fast_eval(self.monitor)
        self.metrics.predicate_evals += 1
        if result:
            return
        self.wait_blocking(predicate)

    def wait_blocking(self, predicate: Predicate,
                      ev: Callable[[Any], Any] | None = None,
                      *,
                      timeout: Optional[float] = None,
                      deadline: Optional[float] = None,
                      cancel: "Optional[CancelToken]" = None) -> None:
        """Park until ``predicate`` holds, given it was just seen false.

        Implements the waiting side of the relay protocol: before parking,
        the thread passes the baton (relay-signals some other satisfied
        waiter, since this thread is "going into waiting state"); after each
        wakeup it re-evaluates, counting futile wakeups when the state moved
        under it between signal and lock re-acquisition.

        ``timeout`` (relative seconds) and ``deadline`` (absolute
        ``time.monotonic()`` instant) bound the wait — whichever expires
        first raises :class:`WaitTimeoutError`; ``cancel`` aborts it with
        :class:`WaitCancelledError`.  An abandoning waiter re-runs the relay
        rule after deregistering: if the relay baton was handed to it while
        it was timing out, the baton passes on to another satisfied waiter,
        preserving relay invariance (Prop. 2).  This is only sound because
        of the closure property (Def. 2) — any thread can evaluate any
        parked predicate, so no signal is ever addressed to a waiter that
        *must* act on it.
        """
        m = self.metrics
        if ev is None:
            ev = predicate.evaluator()
        m.bump("waits")

        if timeout is not None:
            t = time.monotonic() + timeout
            deadline = t if deadline is None else min(deadline, t)
        if cancel is not None and cancel.cancelled():
            m.bump("wait_cancels")
            raise WaitCancelledError(
                f"wait on {predicate!r} cancelled", cancel.reason)

        if self.mode == "baseline":
            self._wait_baseline(ev, deadline=deadline, cancel=cancel)
            return

        waiter = self._obtain_waiter(predicate)
        monitor = self.monitor
        cv = waiter.cv
        cv_wait = cv.wait
        # one snapshot per blocking wait, not one config lookup per wakeup
        phase_timing = config_snapshot().phase_timing
        wake_cb: Optional[Callable[[], None]] = None
        if cancel is not None:
            # The canceller notifies our CV under the monitor lock; RLock
            # makes this safe even when cancel() fires from a thread that
            # is itself inside this monitor.
            def wake_cb() -> None:
                with cv:
                    cv.notify()
            cancel.add_callback(wake_cb)
        satisfied = False
        try:
            while True:
                # Pass the baton before sleeping (relay rule: a thread going
                # into waiting state signals some satisfied waiter).
                self.relay_signal()
                if cancel is not None and cancel.cancelled():
                    m.bump("wait_cancels")
                    raise WaitCancelledError(
                        f"wait on {predicate!r} cancelled", cancel.reason)
                if deadline is None:
                    if phase_timing:
                        with PhaseTimer(m, "await_time"):
                            cv_wait()
                    else:
                        cv_wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        m.bump("wait_timeouts")
                        raise WaitTimeoutError(
                            f"wait on {predicate!r} timed out")
                    if phase_timing:
                        with PhaseTimer(m, "await_time"):
                            cv_wait(remaining)
                    else:
                        cv_wait(remaining)
                waiter.signaled = False
                m.bump("wakeups")
                if waiter.poison is not None:
                    # our predicate blew up while a signaler evaluated it;
                    # the failure belongs to this thread — re-raise it here
                    raise waiter.poison
                result = ev(monitor)
                m.predicate_evals += 1
                if result:
                    satisfied = True
                    return
                m.bump("futile_wakeups")
        finally:
            self._deregister(waiter)
            if wake_cb is not None:
                cancel.remove_callback(wake_cb)
            if not satisfied:
                # Abandoned wait (timeout / cancel / poison): between the
                # cv-wait return and this point the thread holds the monitor
                # lock, so if it *was* signaled, that signal is the relay
                # baton and no other signal can have raced in.  With the
                # waiter now deregistered, re-running the relay hands the
                # baton to some other satisfied waiter — no signal is lost.
                self.relay_signal()

    def _wait_baseline(self, ev: Callable[[Any], Any],
                       deadline: Optional[float] = None,
                       cancel: "Optional[CancelToken]" = None) -> None:
        m = self.metrics
        monitor = self.monitor
        bcv = self._broadcast_cv
        bcv.notify_all()  # baton-pass equivalent
        m.bump("broadcasts")
        wake_cb: Optional[Callable[[], None]] = None
        if cancel is not None:
            def wake_cb() -> None:
                with bcv:
                    bcv.notify_all()
            cancel.add_callback(wake_cb)
        try:
            while True:
                if cancel is not None and cancel.cancelled():
                    m.bump("wait_cancels")
                    raise WaitCancelledError("wait cancelled", cancel.reason)
                if deadline is None:
                    bcv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        m.bump("wait_timeouts")
                        raise WaitTimeoutError("wait timed out")
                    bcv.wait(remaining)
                m.bump("wakeups")
                broken = getattr(monitor, "_broken", None)
                if broken is not None:
                    from repro.runtime.errors import BrokenMonitorError
                    raise BrokenMonitorError(
                        f"{monitor!r} is broken", broken)
                result = ev(monitor)
                m.predicate_evals += 1
                if result:
                    return
                m.bump("futile_wakeups")
        finally:
            if wake_cb is not None:
                cancel.remove_callback(wake_cb)
            # baseline signaling is broadcast: a departing waiter cannot
            # have absorbed anyone else's wakeup, so no re-relay is needed

    # ---------------------------------------------------------------- signal
    def relay_signal(self) -> Optional[Waiter]:
        """Signal one waiter whose condition is true, if any (relay rule).

        Called whenever a thread exits the monitor or goes to wait.  Returns
        the signaled waiter (already marked) or None.  Guarantees relay
        invariance (Prop. 2): if some waiter's predicate is true, an active
        thread exists afterwards.
        """
        m = self.metrics
        if self._async_reap:
            self._reap_async()
        # Flush the exiting section's dirty set *before* any early return:
        # per-variable generations must advance even when nobody waits, or
        # a memoized expression value could be revalidated against a stale
        # stamp later.  Costs one truth test per relay when clean.
        if self._tracked:
            dirty = self.monitor._dirty
            if dirty:
                self.note_writes(dirty)
                dirty.clear()
        if self.mode == "baseline":
            if self._waiting_baseline():
                if config_snapshot().phase_timing:
                    with PhaseTimer(m, "relay_time"):
                        self._broadcast_cv.notify_all()
                else:
                    self._broadcast_cv.notify_all()
                m.bump("broadcasts")
            return None
        if not self.waiters:
            return None
        if _chaos.enabled:
            _chaos.fire("relay", self.monitor)
        if config_snapshot().phase_timing:
            with PhaseTimer(m, "relay_time"):
                waiter = self._find_satisfied_waiter()
        else:
            waiter = self._find_satisfied_waiter()
        # A satisfied async waiter consumes no baton: deliver its loop
        # callback (it has no thread that would re-enter the monitor and
        # relay on exit) and keep searching on its behalf.
        while waiter is not None and waiter.deliver is not None:
            if _chaos.enabled:
                _chaos.fire("signal", waiter)
            if self._deliver_async(waiter):
                m.bump("signals")
            waiter = self._find_satisfied_waiter()
        if waiter is not None:
            if _chaos.enabled:
                _chaos.fire("signal", waiter)
            waiter.signal()
            m.bump("signals")
        return waiter

    def direct_signal(self, plan) -> Optional[Waiter]:
        """Section exit of an AOT-planned method: targeted signal, no search.

        The compile-time matcher (:mod:`repro.analysis.aot`) proved every
        statically visible write of the exiting method lands in
        ``plan.write_set``; because registration is *unified* when plans
        exist (tagged waiters join the dependency buckets too), the only
        waiters whose predicates can have flipped are the opaque ones
        (``_always``, evaluated every exit) and the bucketed readers of the
        written variables — marked pending right here, without the
        per-bucket relay bookkeeping, and drained exactly like the relay's
        filtered scan.  Relay invariance (Prop. 2) holds for the same
        reason it does under dependency filtering: a waiter leaves the
        eligible queue only by being evaluated, and every written
        variable's readers are queued before any early return.

        The static result is never trusted alone: if the observed dirty
        set escapes the plan (monkeypatched method, dynamic attribute
        name), or any config lane wants the generic path (``aot_signal``
        off for A/B, tracking off, phase timing on so Table 2.1 stays
        complete), the exit falls back to :meth:`relay_signal`.
        """
        if not self._direct_enabled:
            return self.relay_signal()
        # config gate, recomputed only when the global config generation
        # moves (reading the generation int off the module skips even the
        # snapshot call — this runs on every planned section exit; the
        # racy module-int load is an atomic pointer load on every build,
        # and a stale value only delays the gate refresh by one exit)
        gen = _config_state._generation
        if gen != self._gate_gen:
            self._gate_gen = gen
            snap = config_snapshot()
            self._gate_ok = (snap.aot_signal and snap.track_dependencies
                             and not snap.phase_timing)
        if not self._gate_ok:
            return self.relay_signal()
        m = self.metrics
        monitor = self.monitor
        if self._async_reap:
            self._reap_async()
        dirty = monitor._dirty
        cand = None
        if dirty:
            if not dirty <= plan.write_set:
                m.relay_aot_fallbacks += 1
                return self.relay_signal()  # flushes dirty itself
            # inline generation bump + reader marking: same effect as
            # note_writes, minus the relay bucket-flush accounting — the
            # exit performs zero relay-search work.  The first fresh reader
            # is held out as ``cand`` (marked pending for cross-bucket
            # dedup, but not queued): the typical exit flips exactly one
            # waiter, and evaluating it in place skips the queue roundtrip.
            gens = self.var_gens
            buckets = self._dep_buckets
            eligible = self._eligible
            for name in dirty:
                gens[name] = gens.get(name, 0) + 1
                bucket = buckets.get(name)
                if bucket:
                    for w in bucket:
                        if not w.pending:
                            w.pending = True
                            if cand is None:
                                cand = w
                            else:
                                eligible.append(w)
            dirty.clear()
        m.relay_skipped_aot += 1
        if not self.waiters:
            if cand is not None:   # pragma: no cover — cand is registered
                self._eligible.append(cand)
            return None
        chaos_on = _chaos.enabled
        if chaos_on:
            _chaos.fire("relay", monitor)
        # _search_pred inlined (signaled check, eval count, poison-on-raise):
        # one exit evaluates at most a handful of candidates, and the extra
        # frame per candidate is the difference between this path and the
        # relay it replaces
        evals = 0
        waiter = None
        if self._always:
            for w in self._always:
                if w.signaled:
                    continue
                evals += 1
                try:
                    hit = w.eval_fn(monitor)
                except BaseException as exc:  # noqa: BLE001 — owner re-raises
                    w.poison = exc
                    hit = True
                if hit:
                    waiter = w
                    break
        if cand is not None:
            # evaluated exactly like a drained queue entry; when an opaque
            # waiter already won, cand goes to the queue unevaluated
            if waiter is None:
                cand.pending = False
                if not cand.signaled:
                    evals += 1
                    try:
                        hit = cand.eval_fn(monitor)
                    except BaseException as exc:  # noqa: BLE001
                        cand.poison = exc
                        hit = True
                    if hit:
                        waiter = cand
            else:
                self._eligible.append(cand)
        if waiter is None:
            eligible = self._eligible
            while eligible:
                w = eligible.pop()
                if not w.pending:
                    continue  # deregistered, or a stale duplicate entry
                w.pending = False
                if w.signaled:
                    continue
                evals += 1
                try:
                    hit = w.eval_fn(monitor)
                except BaseException as exc:  # noqa: BLE001 — owner re-raises
                    w.poison = exc
                    hit = True
                if hit:
                    waiter = w
                    break
        if evals:
            m.predicate_evals += evals
        # async waiters: deliver and continue the drain on their behalf
        # (see relay_signal); in direct mode every waiter sits in the
        # dependency structures, so _scan_untagged is the full continuation
        while waiter is not None and waiter.deliver is not None:
            if chaos_on:
                _chaos.fire("signal", waiter)
            if self._deliver_async(waiter):
                m.bump("signals")
            waiter = self._scan_untagged()
        if waiter is not None:
            if chaos_on:
                _chaos.fire("signal", waiter)
            waiter.signal()
            m.bump("signals")
        return waiter

    def poison_all(self, make_exc: Callable[[], BaseException]) -> int:
        """Poison and wake every parked waiter (caller holds the lock).

        Used by :meth:`Monitor.mark_broken`: each relay-mode waiter gets a
        fresh exception from ``make_exc`` (fresh per waiter, so concurrent
        re-raises don't fight over one traceback) and is signaled; baseline
        mode broadcasts, and the woken threads see ``monitor._broken``
        themselves.  Returns the number of waiters poisoned.
        """
        if self.mode == "baseline":
            self._broadcast_cv.notify_all()
            return 0
        n = 0
        for waiter in list(self.waiters):
            if waiter.poison is None:
                waiter.poison = make_exc()
            if waiter.deliver is not None:
                # async waiters get the poison through their wake callback
                # (the loop re-raises it from the awaited future)
                self._deliver_async(waiter)
            else:
                waiter.signal()
            n += 1
        return n

    # ------------------------------------------------------- async waiters
    def register_async(self, waiter: Waiter) -> None:
        """Register a waiterless waiter (caller holds the monitor lock).

        The record joins exactly the structures a threaded waiter would —
        tag index, dependency buckets, AOT direct-signal coverage — so
        every signaling discipline covers it with no special cases on the
        search side.  Baseline mode is refused: broadcasts wake parked
        threads, and an async waiter has none.
        """
        if self.mode == "baseline":
            from repro.runtime.errors import MonitorError
            raise MonitorError(
                "async waiters require relay signaling "
                "(signaling mode 'baseline' only broadcasts to parked threads)")
        self.metrics.bump("waits")
        self._register(waiter)

    def abandon_async(self, waiter: Waiter) -> bool:
        """Abandon a parked async waiter *without* the monitor lock.

        Called from the event-loop (timeout) or canceller thread.  Claims
        the record through its micro-lock flag; returns False when a
        signaler already delivered — the wait won the race and its outcome
        stands.  On success the record is marked inert (the ``signaled``
        store is racy but advisory: a search that misses it still loses
        the claim in :meth:`_deliver_async` and keeps searching) and
        queued for deregistration by the next lock holder.  No re-relay is
        needed on its behalf: a claimed waiter can never have absorbed the
        relay baton, because delivery itself is the claim.
        """
        if waiter.claimed.test_and_set():
            return False
        waiter.signaled = True
        self._async_reap.append(waiter)
        return True

    def _deliver_async(self, waiter: Waiter) -> bool:
        """Deregister a satisfied/poisoned async waiter and run its wake
        action (caller holds the lock).  Returns False when a concurrent
        timeout/cancel claimed the record first — the signaler then simply
        continues its search, exactly as after a threaded waiter's
        abandonment re-relay.
        """
        waiter.signaled = True
        self._deregister(waiter)
        if waiter.claimed.test_and_set():
            return False
        try:
            waiter.deliver(waiter.poison)
        except Exception:  # noqa: BLE001 — a loop callback must never
            pass           # poison the signaling thread
        return True

    def _reap_async(self) -> None:
        """Unlink abandoned async waiters (caller holds the lock)."""
        reap = self._async_reap
        while reap:
            try:
                w = reap.pop()
            except IndexError:  # pragma: no cover — we are the only popper
                break
            self._deregister(w)

    def note_writes(self, names) -> None:
        """Bump per-variable generations; queue untagged waiters that read
        a written name.  Caller holds the monitor lock.

        Marked waiters become *pending* and stay queued until some relay
        search actually evaluates them — a relay that signals another
        waiter first leaves the rest queued, so dependency filtering never
        drops a waiter whose predicate may have flipped (Prop. 2).
        """
        gens = self.var_gens
        buckets = self._dep_buckets
        eligible = self._eligible
        m = self.metrics
        for name in names:
            gens[name] = gens.get(name, 0) + 1
            bucket = buckets.get(name)
            if bucket:
                m.relay_buckets_scanned += 1
                for w in bucket:
                    if not w.pending:
                        w.pending = True
                        eligible.append(w)

    def _find_satisfied_waiter(self) -> Optional[Waiter]:
        m = self.metrics
        if self.mode == "autosynch_t":
            for waiter in self.waiters:
                if waiter.signaled:
                    continue
                m.predicate_evals += 1
                if self._safe_evaluate(waiter):
                    return waiter
            return None
        # autosynch: tag-index search (equivalence + threshold), then the
        # dependency-filtered untagged scan
        if config_snapshot().phase_timing:
            with PhaseTimer(m, "tag_time"):
                waiter = self.index.search(self._search_expr_cb, self._search_pred_cb)
        else:
            waiter = self.index.search(self._search_expr_cb, self._search_pred_cb)
        if waiter is not None:
            return waiter
        return self._scan_untagged()

    def _scan_untagged(self) -> Optional[Waiter]:
        """Find a satisfied waiter among None-tag registrations.

        Opaque-read-set waiters are re-checked on every relay (a write to
        anything could have flipped them).  Bucketed waiters are evaluated
        only while ``pending``: freshly parked, or some variable in their
        read set was written since they last evaluated false — if neither
        holds, the predicate still has the value the last evaluation saw,
        so skipping it cannot lose a signal (docs/performance.md).
        """
        pred_true = self._search_pred
        for w in self._always:
            if pred_true(w):
                return w
        eligible = self._eligible
        if not eligible and not self._untagged:
            return None
        if self._tracked and config_snapshot().track_dependencies:
            m = self.metrics
            evaluated = 0
            found = None
            while eligible:
                w = eligible.pop()
                if not w.pending:
                    continue  # deregistered, or a stale duplicate entry
                # clear *before* evaluating: a True result leads to a
                # signal (the waiter consumes its own wakeup), and a
                # False result must leave the flag armed for re-marking
                w.pending = False
                evaluated += 1
                if pred_true(w):
                    found = w
                    break
            m.relay_dirty_skips += len(self._untagged) - evaluated
            return found
        # exhaustive fallback (tracking off, or a bare state object with no
        # write instrumentation): evaluate every untagged waiter.  Drain
        # the queue so pending flags stay consistent if tracking turns on.
        while eligible:
            eligible.pop().pending = False
        for w in self._untagged:
            if pred_true(w):
                return w
        return None

    def _search_expr(self, expr_key: Any) -> Any:
        m = self.metrics
        m.tag_checks += 1
        if self._tracked:
            reads = self._expr_reads.get(expr_key)
            if reads is not None and config_snapshot().track_dependencies:
                # memo hit: the expression reads only tracked variables and
                # none of their generations moved since the cached value
                gens = self.var_gens
                stamp = 0
                for name in reads:
                    stamp += gens.get(name, 0)
                memo = self._expr_memo.get(expr_key)
                if memo is not None and memo[0] == stamp:
                    m.gen_skips += 1
                    return memo[1]
                value = self._evaluate_expr_key(expr_key)
                self._expr_memo[expr_key] = [stamp, value]
                return value
        return self._evaluate_expr_key(expr_key)

    def _search_pred(self, waiter: Waiter) -> bool:
        # _safe_evaluate inlined: this runs once per candidate waiter on
        # every relay search, and the extra frame is measurable at scale
        if waiter.signaled:
            return False
        self.metrics.predicate_evals += 1
        try:
            return waiter.eval_fn(self.monitor)
        except BaseException as exc:  # noqa: BLE001 — re-raised by the owner
            waiter.poison = exc
            return True

    def _safe_evaluate(self, waiter: Waiter) -> bool:
        """Evaluate a waiter's predicate on behalf of another thread.

        A predicate that *raises* must not crash the signaling thread (it
        did nothing wrong); instead the waiter is poisoned and woken so the
        exception re-raises in the thread that owns the broken predicate —
        returning True here routes the relay signal to it.
        """
        try:
            return waiter.eval_fn(self.monitor)
        except BaseException as exc:  # noqa: BLE001 — re-raised by the owner
            waiter.poison = exc
            return True

    # ------------------------------------------------------------- internals
    def _obtain_waiter(self, predicate: Predicate) -> Waiter:
        pool = self._waiter_pool
        if pool:
            waiter = pool.pop()
            waiter.reset(predicate)
        else:
            waiter = Waiter(predicate, self.lock)
        self._register(waiter)
        return waiter

    def _register(self, waiter: Waiter) -> None:
        self.waiters.append(waiter)
        if self.mode == "autosynch":
            self._cache_expressions(waiter)
            evalers = self._expr_evalers
            evaler_refs = self._evaler_refs
            compile_ok = config_snapshot().compile_predicates
            for tag in tag_predicate(waiter.predicate.conjunctions):
                if tag.kind is TagKind.NONE:
                    # untagged conjunctions go to the dependency-filtered
                    # structures instead of the index's exhaustive list
                    if not waiter.untagged:
                        self._register_untagged(waiter)
                    continue
                waiter.records.append(self.index.add(tag, waiter))
                expr_key = tag.expr_key
                evaler_refs[expr_key] = evaler_refs.get(expr_key, 0) + 1
                waiter.evaler_keys.append(expr_key)
                if expr_key not in evalers:
                    evalers[expr_key] = (
                        compiled.compile_expr_key(expr_key, self._expr_cache.get)
                        if compile_ok else None
                    )
                    self._expr_reads[expr_key] = self._expr_key_reads(expr_key)
            if self._direct_enabled:
                waiter.aot_direct = True
                pred = waiter.predicate
                if pred.aot_match is None:
                    # stamp the static match metadata with the same engine
                    # monlint runs, so lint and runtime agree (lazy import:
                    # the analysis package never loads on relay-only paths)
                    from repro.analysis.aot import match_predicate
                    pred.aot_match = match_predicate(
                        pred.read_set(), self._aot_plans)
                if not waiter.untagged:
                    # unified registration: tagged waiters join the
                    # dependency buckets too, so a direct exit covers them
                    # without a tag-index probe.  The tag records stay —
                    # generic relays (baton pass, fallbacks) still use them.
                    self._register_untagged(waiter)

    def _register_untagged(self, waiter: Waiter) -> None:
        waiter.untagged = True
        rs = waiter.predicate.read_set()
        waiter.read_set = rs
        if rs is None:
            self._always.append(waiter)
            return
        self._untagged.append(waiter)
        buckets = self._dep_buckets
        for name in rs:
            bucket = buckets.get(name)
            if bucket is None:
                buckets[name] = [waiter]
            else:
                bucket.append(waiter)
        # a freshly parked waiter is always eligible for the next relay
        # search, so filtering cannot disturb relay invariance (Prop. 2)
        waiter.pending = True
        self._eligible.append(waiter)

    def _expr_key_reads(self, expr_key: Any) -> Optional[frozenset]:
        """Read-variable names of a canonical expression key, or None.

        ``("var", name)`` terms read exactly ``name``; other terms resolve
        through the structural node cache and report their own read sets
        (opaque unless a SharedExpr declares ``reads``)."""
        reads: set = set()
        for term_key, _coeff in expr_key:
            if (isinstance(term_key, tuple) and len(term_key) == 2
                    and term_key[0] == "var"):
                reads.add(term_key[1])
                continue
            node = self._expr_cache.get(term_key)
            rs = node.read_set() if node is not None else None
            if rs is None:
                return None
            reads.update(rs)
        return frozenset(reads)

    def _cache_expressions(self, waiter: Waiter) -> None:
        """Record (and refcount) evaluators for every sub-expression in the
        waiter's predicate, keyed by structural key, so the tag search can
        evaluate a canonical shared expression from its key alone."""
        cache = self._expr_cache
        refs = self._expr_refs
        keys = waiter.expr_keys
        for conj in waiter.predicate.conjunctions:
            for atom in conj:
                if not isinstance(atom, Comparison):
                    continue
                for node in atom.shared_subexpressions():
                    try:
                        key = node.key()
                        hash(key)
                    except TypeError:
                        continue  # unhashable constant keys are never looked up
                    cache.setdefault(key, node)
                    refs[key] = refs.get(key, 0) + 1
                    keys.append(key)

    def _deregister(self, waiter: Waiter) -> None:
        try:
            self.waiters.remove(waiter)
        except ValueError:
            pass
        for record in waiter.records:
            self.index.remove(record, waiter)
        waiter.records.clear()
        if waiter.untagged:
            # stale queue entries are skipped on drain via the pending flag
            waiter.untagged = False
            waiter.pending = False
            rs = waiter.read_set
            waiter.read_set = None
            if rs is None:
                try:
                    self._always.remove(waiter)
                except ValueError:
                    pass
            else:
                try:
                    self._untagged.remove(waiter)
                except ValueError:
                    pass
                buckets = self._dep_buckets
                for name in rs:
                    bucket = buckets.get(name)
                    if bucket is None:
                        continue
                    try:
                        bucket.remove(waiter)
                    except ValueError:
                        pass
                    if not bucket:
                        del buckets[name]
        # drop the waiter's pins on the expression caches; the entry (and
        # its compiled evaluator) dies with its last referencing waiter
        if waiter.expr_keys:
            cache, refs = self._expr_cache, self._expr_refs
            for key in waiter.expr_keys:
                n = refs.get(key, 0) - 1
                if n <= 0:
                    refs.pop(key, None)
                    cache.pop(key, None)
                else:
                    refs[key] = n
            waiter.expr_keys.clear()
        if waiter.evaler_keys:
            evalers, refs = self._expr_evalers, self._evaler_refs
            for key in waiter.evaler_keys:
                n = refs.get(key, 0) - 1
                if n <= 0:
                    refs.pop(key, None)
                    evalers.pop(key, None)
                    # the memo and read-set entries die with the evaluator
                    self._expr_memo.pop(key, None)
                    self._expr_reads.pop(key, None)
                else:
                    refs[key] = n
            waiter.evaler_keys.clear()
        # recycle the whole waiter, condition variable included (paper
        # §2.5.1): cap the inactive pool at factor × live waiters, minimum
        # a small constant.  Async waiters are never pooled — they carry no
        # condition variable and their claim flag is single-use.
        if waiter.deliver is not None:
            return
        cfg = config_snapshot()
        cap = max(4, cfg.inactive_predicate_factor * (len(self.waiters) + 1))
        if len(self._waiter_pool) < cap:
            waiter.retire()
            self._waiter_pool.append(waiter)

    def dump_waiters(self) -> list[str]:
        """Human-readable descriptions of every parked predicate — the
        first thing to look at when a program seems wedged.

        Each line carries the predicate's read set and the current write
        generation of every variable it reads (every tracked variable for
        opaque predicates): a waiter whose read variables have generation 0
        is stuck because *nobody ever wrote* what it waits for.
        """
        gens = self.var_gens
        out = []
        for w in self.waiters:
            pred = w.predicate
            rs = pred.read_set() if pred is not None else None
            reads = "{" + ",".join(sorted(rs)) + "}" if rs is not None else "?"
            names = sorted(rs) if rs is not None else sorted(gens)
            shown = {n: gens.get(n, 0) for n in names}
            out.append(f"{w!r} reads={reads} gens={shown}")
        return out

    def obligation_view(self) -> list:
        """Racy snapshot of each parked waiter's signal obligation:
        ``(waiter, read_set, description)`` triples.

        Unlike :attr:`Waiter.read_set` (populated only for untagged
        waiters), the read set here always comes from the predicate, so
        tagged waiters report theirs too; ``None`` means opaque.  Every
        read is a plain attribute load (atomic on GIL and free-threaded
        builds alike) — no lock is taken,
        and a waiter racing out mid-snapshot is simply skipped.  Consumed
        by :class:`repro.resilience.obligations.ObligationTracker`.
        """
        out = []
        for w in list(self.waiters):
            pred = w.predicate
            if pred is None:  # retired under us (pool recycling race)
                continue
            try:
                rs = pred.read_set()
                desc = w.describe()
            except Exception:
                continue  # racy read of a live structure; skip, don't fail
            out.append((w, rs, desc))
        return out

    def _waiting_baseline(self) -> bool:
        # Condition keeps private waiter list; len() of it is an internal
        # detail, so track via the public API instead: notify_all on a CV
        # with no waiters is a cheap no-op — just always report True.
        return True

    def _evaluate_expr_key(self, expr_key: Any) -> Any:
        """Evaluate the canonical shared expression identified by a key.

        Routes through the compiled flat evaluator registered for the key
        when one exists, otherwise interprets the key: keys produced by the
        linear normalizer are tuples of ``(term_key, coeff)``; each term key
        is ``("var", name)`` or ``("expr", name)``.  Non-linear fallback
        keys are 1-tuples of a structural expression key whose first term
        is evaluated directly.
        """
        fn = self._expr_evalers.get(expr_key)
        if fn is not None:
            return fn(self.monitor)
        # Single unit-coefficient term: return the raw term value (this also
        # covers non-numeric equality keys such as object identity).
        if len(expr_key) == 1 and expr_key[0][1] == 1.0:
            return self._evaluate_term(expr_key[0][0])
        total = 0.0
        for term_key, coeff in expr_key:
            total += coeff * self._evaluate_term(term_key)
        return total

    def _evaluate_term(self, term_key: Any) -> Any:
        if isinstance(term_key, tuple) and len(term_key) == 2 and term_key[0] == "var":
            return getattr(self.monitor, term_key[1])
        expr = self._expr_cache.get(term_key)
        if expr is not None:
            return expr.evaluate(self.monitor)
        raise TypeError(f"cannot evaluate term {term_key!r}")

    def waiting_count(self) -> int:
        return len(self.waiters)
